"""IVF-PQ: inverted lists of quantized codes with exact top-R rerank.

The million-vector backend.  Like :class:`repro.index.IVFFlatIndex` a
k-means coarse quantizer routes each vector to one of ``nlist`` cells and
a query scans only the ``nprobe`` nearest cells — but inside a cell the
corpus is stored as *codes* (:mod:`repro.index.quant`), not floats:

* ``coding="pq"`` (default) — :class:`ProductQuantizer` codes, ``m``
  bytes per vector.  Candidates are scored by asymmetric distance: one
  lookup-table build per probed cell, then ``m`` table reads per
  candidate.
* ``coding="sq"`` — :class:`ScalarQuantizer` codes, ``d`` bytes per
  vector, scored against the int8 reconstructions.

Codes quantize *residuals* (``x - centroid(cell)``), IVFADC-style: every
member of a cell shares the coarse term, so spending the code budget on
it would leave within-cell structure unresolved and the shortlist would
rank near-randomly exactly where it matters.  The identity
``||q - x||^2 = ||(q - c) - (x - c)||^2`` keeps residual scores true
squared distances to each candidate's reconstruction.

Approximate scores only *shortlist*: the top ``rerank`` candidates are
re-scored against the exact float32 vectors kept per cell, so the
returned distances are true metric distances and recall recovers from
quantization error without widening ``nprobe``.  ``nprobe`` and
``rerank`` are per-request tunables (:meth:`VectorIndex.query`).

Both metrics run on one score: vectors are unit-normalised at insert for
``metric="cosine"`` and squared Euclidean ordering on the unit sphere is
exactly cosine ordering, so a single squared-distance ADC serves both.

Checkpoints are where this backend departs from its siblings.  It opts
out of NPZ deflate (``checkpoint_compressed = False``) and stores every
cell's codes and exact vectors as separate members
(``cell.NNNNNN.codes`` / ``cell.NNNNNN.vecs``) marked lazy
(``lazy_array_prefix``): :func:`repro.serialize.load_checkpoint` skips
them and re-attaches the file through
:class:`repro.index.storage.MappedArrays` instead.  A loaded index keeps
only ids, assignments and the quantizers resident — cell data is paged
in by the OS when a query probes the cell — so corpora larger than RAM
load in milliseconds and serve within it.  Cell membership is *derived*,
not stored: a stable argsort of the eagerly-loaded assignments yields
the per-cell member lists, so attachment touches zero lazy members.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError, VectorIndexError
from ..utils.metrics_dispatch import squared_euclidean_distances
from .base import INDEX_DTYPE, VectorIndex
from .ivf import _TRAIN_ITER, _TRAIN_MIN, _TRAIN_PER_LIST, nearest_cells
from .quant import ProductQuantizer, ScalarQuantizer
from .storage import MappedArrays

__all__ = ["IVFPQIndex"]

#: Quantizer-training sample cap: codebooks (and scalar ranges) converge
#: on tens of thousands of rows; training on a full million-row corpus
#: would dominate build time for no recall gain.
_QUANT_TRAIN_MAX = 16384

_CODINGS = ("pq", "sq")

#: Checkpoint member names of one cell's payload.  The ``array.`` prefix
#: is repro.serialize's member namespace — the lazy store reads the same
#: zip members the eager loader would have.
_CODES_MEMBER = "array.cell.{:06d}.codes"
_VECS_MEMBER = "array.cell.{:06d}.vecs"


class IVFPQIndex(VectorIndex):
    """Inverted-file index over quantized codes with exact reranking.

    Parameters
    ----------
    nlist:
        Number of coarse cells; ``None`` picks ``~sqrt(n)`` at build time.
    nprobe:
        Cells scanned per query (per-request tunable ``nprobe``).
    m:
        Product-quantizer sub-spaces (bytes per stored code).  Clamped at
        build time to the largest divisor of the dimensionality.  Ignored
        for ``coding="sq"``.
    rerank:
        Shortlist size re-scored against exact vectors per query
        (per-request tunable ``rerank``; ``0`` returns raw approximate
        distances).
    coding:
        ``"pq"`` (product quantizer) or ``"sq"`` (scalar int8).
    seed:
        Seed for the coarse and product quantizer training.
    """

    backend = "ivfpq"

    _QUERY_TUNABLES = {"nprobe": 1, "rerank": 0}

    #: Checkpoints stay uncompressed so cell members can be memory-mapped
    #: in place (see repro.index.storage).
    checkpoint_compressed = False

    #: Members under this prefix are skipped at load time and served
    #: lazily from the file via attach_store().
    lazy_array_prefix = "cell."

    def __init__(self, *, metric: str = "cosine", nlist: int | None = None,
                 nprobe: int = 8, m: int = 8, rerank: int = 64,
                 coding: str = "pq", seed: int | None = 0) -> None:
        super().__init__(metric=metric)
        if nlist is not None and nlist < 1:
            raise ConfigurationError("nlist must be >= 1 (or None for sqrt(n))")
        if nprobe < 1:
            raise ConfigurationError("nprobe must be >= 1")
        if m < 1:
            raise ConfigurationError("m must be >= 1")
        if rerank < 0:
            raise ConfigurationError("rerank must be >= 0")
        if coding not in _CODINGS:
            raise ConfigurationError(
                f"unknown coding {coding!r}; expected one of {_CODINGS}")
        self.nlist = nlist
        self.nprobe = int(nprobe)
        self.m = int(m)
        self.rerank = int(rerank)
        self.coding = coding
        self.seed = seed
        self.centroids_: np.ndarray | None = None
        self.assignments_: np.ndarray | None = None
        self.quantizer_ = None
        # Derived layout (all resident, all computed from assignments_):
        # _order[starts[c]:starts[c+1]] lists cell c's member positions;
        # _local_of maps a global position to its offset inside its cell.
        self._order: np.ndarray | None = None
        self._starts: np.ndarray | None = None
        self._local_of: np.ndarray | None = None
        # In-memory cell storage (build/add path) ...
        self._cell_codes: list[np.ndarray] | None = None
        self._cell_vecs: list[np.ndarray] | None = None
        # ... or the mmap-backed store (load path); exactly one is set on
        # a built index.
        self._store: MappedArrays | None = None

    # ------------------------------------------------------------------
    # introspection (an attached index has no resident vectors_)
    @property
    def size(self) -> int:
        if self.vectors_ is not None:
            return int(self.vectors_.shape[0])
        return (0 if self.assignments_ is None
                else int(self.assignments_.shape[0]))

    @property
    def dim(self) -> int:
        return (0 if self.centroids_ is None
                else int(self.centroids_.shape[1]))

    @property
    def attached(self) -> bool:
        """Is cell data served lazily from an mmap-backed checkpoint?"""
        return self._store is not None

    def _require_built(self) -> None:
        if self.assignments_ is None:
            raise VectorIndexError(
                f"{type(self).__name__} is empty; call build() first")

    def memory_bytes(self) -> int:
        """Resident bytes of the index structure.

        For an attached index this excludes the mmap-backed cell members
        (the OS pages those in and out on demand) — it is the number the
        memory-reduction benchmark reports.
        """
        self._require_built()
        resident = [self.ids_, self.assignments_, self.centroids_,
                    self._order, self._starts, self._local_of]
        if self.quantizer_ is not None:
            resident.extend(self.quantizer_.state_arrays().values())
        total = sum(a.nbytes for a in resident if a is not None)
        if not self.attached:
            if self.vectors_ is not None:
                total += self.vectors_.nbytes
            if self._search_vectors is not None \
                    and self._search_vectors is not self.vectors_:
                total += self._search_vectors.nbytes
            total += sum(b.nbytes for b in self._cell_codes or ())
            total += sum(b.nbytes for b in self._cell_vecs or ())
        return total

    # ------------------------------------------------------------------
    # layout
    def _effective_nlist(self, n: int) -> int:
        if self.nlist is not None:
            return min(self.nlist, n)
        return max(1, min(n, int(round(np.sqrt(n)))))

    def _effective_m(self, d: int) -> int:
        """Largest divisor of ``d`` no greater than the requested ``m``."""
        m = min(self.m, d)
        while d % m != 0:
            m -= 1
        return m

    def _derive_layout(self) -> None:
        """CSR cell membership from assignments — resident math only.

        Stable argsort orders members by global position within each
        cell, which is exactly the order cells are encoded and saved in,
        so derived membership and stored cell blocks always agree.
        """
        nlist = self.centroids_.shape[0]
        n = self.assignments_.shape[0]
        order = np.argsort(self.assignments_, kind="stable")
        counts = np.bincount(self.assignments_, minlength=nlist)
        starts = np.zeros(nlist + 1, dtype=np.int64)
        np.cumsum(counts, out=starts[1:])
        local = np.empty(n, dtype=np.int64)
        local[order] = (np.arange(n, dtype=np.int64)
                        - starts[self.assignments_[order]])
        self._order, self._starts, self._local_of = order, starts, local

    def _members(self, cell: int) -> np.ndarray:
        return self._order[self._starts[cell]:self._starts[cell + 1]]

    def _codes(self, cell: int) -> np.ndarray:
        if self._store is not None:
            return self._store[_CODES_MEMBER.format(cell)]
        return self._cell_codes[cell]

    def _vecs(self, cell: int) -> np.ndarray:
        if self._store is not None:
            return self._store[_VECS_MEMBER.format(cell)]
        return self._cell_vecs[cell]

    # ------------------------------------------------------------------
    # build / add
    def _train_sample(self, X: np.ndarray, cap: int) -> np.ndarray:
        n = X.shape[0]
        if n <= cap:
            return X
        rng = np.random.default_rng(self.seed)
        return X[rng.choice(n, size=cap, replace=False)]

    def _residual_sample(self, X: np.ndarray) -> np.ndarray:
        """Bounded sample of residuals ``x - centroid(cell(x))``."""
        n = X.shape[0]
        if n > _QUANT_TRAIN_MAX:
            rng = np.random.default_rng(self.seed)
            pick = rng.choice(n, size=_QUANT_TRAIN_MAX, replace=False)
        else:
            pick = np.arange(n)
        return X[pick] - self.centroids_[self.assignments_[pick]]

    def _code_width(self) -> int:
        return self.quantizer_.m if self.coding == "pq" else self.dim

    def _encode_cell(self, vecs: np.ndarray, cell: int) -> np.ndarray:
        if vecs.shape[0] == 0:
            return np.empty((0, self._code_width()), dtype=np.uint8)
        return self.quantizer_.encode(vecs - self.centroids_[cell])

    def _rebuild(self) -> None:
        from ..clustering import KMeans

        X = self._search_vectors
        n, d = X.shape
        nlist = self._effective_nlist(n)
        sample = self._train_sample(
            X, max(_TRAIN_MIN, _TRAIN_PER_LIST * nlist))
        quantizer = KMeans(nlist, n_init=1, max_iter=_TRAIN_ITER,
                           seed=self.seed, init="random")
        quantizer.fit(sample)
        self.centroids_ = np.asarray(quantizer.cluster_centers_,
                                     dtype=INDEX_DTYPE)
        self.assignments_ = nearest_cells(X, self.centroids_, 1)[:, 0]
        self._derive_layout()
        code_sample = self._residual_sample(X)
        if self.coding == "pq":
            self.quantizer_ = ProductQuantizer(
                self._effective_m(d), seed=self.seed).train(code_sample)
        else:
            self.quantizer_ = ScalarQuantizer().train(code_sample)
        self._cell_codes, self._cell_vecs = [], []
        for cell in range(nlist):
            vecs = np.ascontiguousarray(X[self._members(cell)])
            self._cell_vecs.append(vecs)
            self._cell_codes.append(self._encode_cell(vecs, cell))
        self._store = None

    def add(self, X, ids=None) -> "IVFPQIndex":
        if self.attached:
            raise VectorIndexError(
                "an mmap-attached IVFPQIndex is read-only; rebuild the "
                "index to add vectors")
        return super().add(X, ids=ids)

    def _append(self, start: int) -> None:
        fresh = self._search_vectors[start:]
        cells = nearest_cells(fresh, self.centroids_, 1)[:, 0]
        self.assignments_ = np.concatenate([self.assignments_, cells])
        for cell in np.unique(cells):
            joined = cells == cell
            block = np.ascontiguousarray(fresh[joined])
            self._cell_codes[cell] = np.vstack(
                [self._cell_codes[cell], self._encode_cell(block, cell)])
            self._cell_vecs[cell] = np.vstack(
                [self._cell_vecs[cell], block])
        # Appended rows have the largest global positions, so the stable
        # re-derivation lands them at the tail of each cell segment —
        # matching the vstack order above.
        self._derive_layout()

    # ------------------------------------------------------------------
    # search
    @staticmethod
    def _adc_row(lut: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """ADC accumulation for one (query, cell) pair: ``m`` gathers."""
        scores = lut[0, codes[:, 0]].copy()
        for j in range(1, codes.shape[1]):
            scores += lut[j, codes[:, j]]
        return scores

    def _approx_to_metric(self, scores: np.ndarray) -> np.ndarray:
        """Squared-Euclidean scores as (approximate) metric distances."""
        if self.metric == "cosine":
            # Unit sphere: ||q - x||^2 = 2 (1 - cos), so halving recovers
            # the cosine distance (up to quantization error).
            return np.maximum(scores / 2.0, 0.0)
        return np.sqrt(scores)

    def _exact_rows(self, positions: np.ndarray) -> np.ndarray:
        """Exact (metric-transformed) vectors at arbitrary positions."""
        if self._search_vectors is not None:
            return self._search_vectors[positions]
        out = np.empty((positions.shape[0], self.dim), dtype=INDEX_DTYPE)
        cells = self.assignments_[positions]
        local = self._local_of[positions]
        for cell in np.unique(cells):
            mask = cells == cell
            out[mask] = self._vecs(cell)[local[mask]]
        return out

    def _exact_distances(self, query: np.ndarray,
                         positions: np.ndarray) -> np.ndarray:
        block = self._exact_rows(positions)
        if self.metric == "cosine":
            distances = 1.0 - query @ block.T
            np.maximum(distances, 0.0, out=distances)
            return distances[0]
        return np.sqrt(squared_euclidean_distances(query, block))[0]

    def _pad_pool(self, pool: np.ndarray, k: int) -> np.ndarray:
        """Ensure at least ``k`` candidates (probed cells can under-fill)."""
        pool = np.unique(pool)
        if pool.size >= k:
            return pool
        missing = np.setdiff1d(np.arange(self.size, dtype=np.int64), pool,
                               assume_unique=True)[:k - pool.size]
        return np.concatenate([pool, missing])

    def _search(self, Q: np.ndarray, k: int,
                tunables: dict) -> tuple[np.ndarray, np.ndarray]:
        nlist = self.centroids_.shape[0]
        nprobe = min(tunables.get("nprobe", self.nprobe), nlist)
        rerank = tunables.get("rerank", self.rerank)
        probes = nearest_cells(Q, self.centroids_, nprobe)
        q = Q.shape[0]
        indices = np.empty((q, k), dtype=np.int64)
        distances = np.empty((q, k), dtype=Q.dtype)
        for row in range(q):
            query = Q[row:row + 1]
            # Residual queries, one per probed cell: scores stay squared
            # distances to the candidates' reconstructions.
            residuals = query - self.centroids_[probes[row]]
            luts = (self.quantizer_.lookup_tables(residuals)
                    if self.coding == "pq" else None)
            pools, chunks = [], []
            for rank, cell in enumerate(probes[row]):
                start, stop = self._starts[cell], self._starts[cell + 1]
                if start == stop:
                    continue
                codes = self._codes(cell)
                if luts is not None:
                    chunk = self._adc_row(luts[rank], codes)
                else:
                    chunk = squared_euclidean_distances(
                        residuals[rank:rank + 1],
                        self.quantizer_.decode(codes))[0]
                pools.append(self._order[start:stop])
                chunks.append(chunk)
            pool = (np.concatenate(pools) if pools
                    else np.empty(0, dtype=np.int64))
            if pool.size < k:
                # Under-filled probes (tiny corpora): back-fill and score
                # the whole pool exactly — correctness over speed on a
                # path only small inputs hit.
                pool = self._pad_pool(pool, k)
                d = self._exact_distances(query, pool)
                indices[row], distances[row] = self._top_k(d, pool, k)
                continue
            scores = (np.concatenate(chunks) if len(chunks) > 1
                      else chunks[0])
            if rerank == 0:
                indices[row], distances[row] = self._top_k(
                    self._approx_to_metric(scores), pool, k)
                continue
            shortlist = min(max(rerank, k), pool.size)
            if pool.size > shortlist:
                keep = np.argpartition(scores, kth=shortlist - 1)[:shortlist]
                pool = pool[keep]
            d = self._exact_distances(query, pool)
            indices[row], distances[row] = self._top_k(d, pool, k)
        return indices, distances

    # ------------------------------------------------------------------
    # checkpoint protocol
    def _state_params(self) -> dict:
        return {"nlist": self.nlist, "nprobe": self.nprobe, "m": self.m,
                "rerank": self.rerank, "coding": self.coding,
                "seed": self.seed}

    @classmethod
    def _init_kwargs(cls, params: dict) -> dict:
        return {"nlist": params["nlist"], "nprobe": params["nprobe"],
                "m": params["m"], "rerank": params["rerank"],
                "coding": params["coding"], "seed": params["seed"]}

    def checkpoint_arrays(self) -> dict[str, np.ndarray]:
        # Deliberately no flat "vectors" array: exact vectors live only in
        # the per-cell members, which loaders map lazily.
        self._require_built()
        arrays = {"ids": self.ids_, "centroids": self.centroids_,
                  "assignments": self.assignments_,
                  **self.quantizer_.state_arrays()}
        for cell in range(self.centroids_.shape[0]):
            arrays[f"cell.{cell:06d}.codes"] = self._codes(cell)
            arrays[f"cell.{cell:06d}.vecs"] = self._vecs(cell)
        return arrays

    @classmethod
    def from_checkpoint(cls, params: dict, arrays: dict) -> "IVFPQIndex":
        index = cls(metric=params["metric"], **cls._init_kwargs(params))
        ids = np.asarray(arrays["ids"])
        index.ids_ = ids if ids.dtype.kind in "US" else ids.astype(np.int64)
        index.centroids_ = np.asarray(arrays["centroids"], dtype=INDEX_DTYPE)
        index.assignments_ = np.asarray(arrays["assignments"],
                                        dtype=np.int64)
        if "pq_codebooks" in arrays:
            codebooks = np.asarray(arrays["pq_codebooks"])
            index.quantizer_ = ProductQuantizer.from_state_arrays(
                arrays, m=int(codebooks.shape[0]), seed=params.get("seed"))
        elif "sq_min" in arrays:
            index.quantizer_ = ScalarQuantizer.from_state_arrays(arrays)
        index._derive_layout()
        cell_names = sorted(name for name in arrays
                            if name.startswith("cell."))
        if cell_names:
            # Eagerly materialised cells (a caller that chose not to mmap):
            # fully resident, behaves like a freshly built index.
            nlist = index.centroids_.shape[0]
            index._cell_codes = [np.asarray(arrays[f"cell.{c:06d}.codes"])
                                 for c in range(nlist)]
            index._cell_vecs = [np.asarray(arrays[f"cell.{c:06d}.vecs"],
                                           dtype=INDEX_DTYPE)
                                for c in range(nlist)]
        return index

    def attach_store(self, path) -> None:
        """Serve cell members lazily from the checkpoint at ``path``.

        Called by :mod:`repro.serialize` after the eager (non-lazy)
        arrays are restored.  The mapping holds its own file descriptor,
        so hot rotation replacing ``path`` on disk never invalidates an
        attached index — it keeps reading its own generation.
        """
        store = MappedArrays(path)
        expected = _CODES_MEMBER.format(0)
        if self.centroids_.shape[0] > 0 and expected not in store:
            store.close()
            raise VectorIndexError(
                f"{path} holds no cell members; not an IVF-PQ checkpoint")
        self._store = store
        self._cell_codes = None
        self._cell_vecs = None

    def _quantizer_metadata(self) -> dict | None:
        if self.quantizer_ is None:
            return None
        if self.coding == "pq":
            codebooks = self.quantizer_.codebooks_
            return {"coding": "pq", "m": int(codebooks.shape[0]),
                    "n_codes": int(codebooks.shape[1]),
                    "bytes_per_vector": int(codebooks.shape[0])}
        return {"coding": "sq", "bits": 8, "bytes_per_vector": self.dim}
