"""Vector quantizers: scalar int8 calibration and product quantization.

Two compressed corpus representations behind the same train/encode/decode
surface, the classic hardware-conscious layout move — shrink what every
query has to touch so the hot set stays in fast memory:

* :class:`ScalarQuantizer` — per-dimension affine int8: calibrate
  ``[min, max]`` per dimension, map it onto the 256 codes.  8x smaller
  than float64 with an *exact* round-trip bound (half a quantization
  step per dimension, :attr:`ScalarQuantizer.max_round_trip_error`).
* :class:`ProductQuantizer` — split the ``d`` dimensions into ``m``
  sub-spaces and vector-quantize each against its own 256-centroid
  codebook (trained with the existing :class:`repro.clustering.KMeans`,
  ``init="random"`` on a bounded sample).  One byte per sub-space —
  ``m`` bytes per vector regardless of ``d`` — and distances are
  computed *asymmetrically*: the query stays float, only the corpus is
  compressed, so each query pays one small lookup-table build
  (:meth:`ProductQuantizer.lookup_tables`) and every candidate
  afterwards costs ``m`` table reads instead of ``d`` multiplies.

Both quantizers are deterministic given their seed/training data and
round-trip their state through plain arrays (``state_arrays`` /
``from_state_arrays``) so :class:`repro.index.IVFPQIndex` can persist
them inside the versioned checkpoint format.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError, VectorIndexError
from ..utils.metrics_dispatch import squared_euclidean_distances
from ..utils.validation import check_matrix
from .base import INDEX_DTYPE

__all__ = ["ScalarQuantizer", "ProductQuantizer"]

#: Codes per dimension/sub-space: one byte.
_N_CODES = 256

#: Rows PQ encoding processes per block: bounds the ``(rows, 256)``
#: distance temporary while encoding million-row corpora.
_ENCODE_BLOCK = 65536

#: Lloyd iterations per sub-space codebook (matches the IVF coarse
#: quantizer's budget: codebooks converge fast on low-dim sub-vectors).
_TRAIN_ITER = 12


class ScalarQuantizer:
    """Per-dimension affine int8 quantizer with min/max calibration.

    ``train`` records each dimension's ``[min, max]`` over the calibration
    sample; ``encode`` maps values affinely onto ``{0..255}`` (clipping
    out-of-calibration values to the range ends); ``decode`` inverts the
    map.  For any value inside its dimension's calibrated range the
    round-trip error is at most half a step —
    ``(max - min) / 255 / 2`` — which the property tests pin exactly.
    """

    def __init__(self) -> None:
        self.min_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    @property
    def trained(self) -> bool:
        return self.min_ is not None

    def _require_trained(self) -> None:
        if not self.trained:
            raise VectorIndexError(
                f"{type(self).__name__} is untrained; call train() first")

    def train(self, X) -> "ScalarQuantizer":
        """Calibrate per-dimension ranges from the rows of ``X``."""
        X = check_matrix(X, name="X", dtype=INDEX_DTYPE)
        self.min_ = X.min(axis=0)
        span = X.max(axis=0) - self.min_
        # A constant dimension quantizes to code 0 and decodes exactly;
        # scale 1 keeps the affine map invertible without special cases.
        self.scale_ = np.where(span > 0, span / float(_N_CODES - 1),
                               np.float32(1.0)).astype(INDEX_DTYPE)
        return self

    @property
    def max_round_trip_error(self) -> np.ndarray:
        """Per-dimension worst-case ``|decode(encode(x)) - x|`` bound.

        Exact for values inside the calibrated range: half a quantization
        step.  (Values outside the range clip to the range ends first.)
        """
        self._require_trained()
        return self.scale_ / 2.0

    def encode(self, X) -> np.ndarray:
        """Rows of ``X`` as ``(n, d)`` uint8 codes."""
        self._require_trained()
        X = check_matrix(X, name="X", dtype=INDEX_DTYPE)
        if X.shape[1] != self.min_.shape[0]:
            raise VectorIndexError(
                f"encode input has {X.shape[1]} dims; quantizer was "
                f"calibrated for {self.min_.shape[0]}")
        steps = (X - self.min_) / self.scale_
        return np.clip(np.rint(steps), 0, _N_CODES - 1).astype(np.uint8)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct ``(n, d)`` float32 vectors from uint8 codes."""
        self._require_trained()
        codes = np.asarray(codes)
        return codes.astype(INDEX_DTYPE) * self.scale_ + self.min_

    # persistence -------------------------------------------------------
    def state_arrays(self) -> dict[str, np.ndarray]:
        self._require_trained()
        return {"sq_min": self.min_, "sq_scale": self.scale_}

    @classmethod
    def from_state_arrays(cls, arrays: dict) -> "ScalarQuantizer":
        quantizer = cls()
        quantizer.min_ = np.asarray(arrays["sq_min"], dtype=INDEX_DTYPE)
        quantizer.scale_ = np.asarray(arrays["sq_scale"], dtype=INDEX_DTYPE)
        return quantizer


class ProductQuantizer:
    """``m`` sub-space codebooks of 256 centroids, asymmetric distances.

    Parameters
    ----------
    m:
        Number of sub-spaces; must divide the trained dimensionality.
        Each vector compresses to ``m`` bytes.
    seed:
        Seed for the per-sub-space k-means (deterministic training).
    """

    def __init__(self, m: int = 8, *, seed: int | None = 0) -> None:
        if m < 1:
            raise ConfigurationError("m must be >= 1")
        self.m = int(m)
        self.seed = seed
        self.codebooks_: np.ndarray | None = None   # (m, n_codes, ds)

    @property
    def trained(self) -> bool:
        return self.codebooks_ is not None

    @property
    def dim(self) -> int:
        """Dimensionality the codebooks were trained for (0 untrained)."""
        return 0 if self.codebooks_ is None else \
            self.m * self.codebooks_.shape[2]

    def _require_trained(self) -> None:
        if not self.trained:
            raise VectorIndexError(
                f"{type(self).__name__} is untrained; call train() first")

    def _split(self, X: np.ndarray) -> np.ndarray:
        """View ``(n, d)`` as ``(n, m, ds)`` sub-vectors."""
        n, d = X.shape
        return np.ascontiguousarray(X).reshape(n, self.m, d // self.m)

    def train(self, X) -> "ProductQuantizer":
        """Fit one 256-centroid codebook per sub-space on the rows of ``X``.

        Callers bound the sample (PQ codebooks need thousands of rows,
        not the corpus) — that cap is what keeps a million-vector build
        inside its time budget.
        """
        from ..clustering import KMeans

        X = check_matrix(X, name="X", dtype=INDEX_DTYPE)
        n, d = X.shape
        if d % self.m != 0:
            raise ConfigurationError(
                f"m={self.m} must divide the dimensionality {d}")
        n_codes = min(_N_CODES, n)
        parts = self._split(X)
        codebooks = np.empty((self.m, n_codes, d // self.m),
                             dtype=INDEX_DTYPE)
        for j in range(self.m):
            seed = None if self.seed is None else self.seed + j
            kmeans = KMeans(n_codes, n_init=1, max_iter=_TRAIN_ITER,
                            seed=seed, init="random")
            kmeans.fit(parts[:, j, :])
            codebooks[j] = kmeans.cluster_centers_.astype(INDEX_DTYPE)
        self.codebooks_ = codebooks
        return self

    def encode(self, X) -> np.ndarray:
        """Rows of ``X`` as ``(n, m)`` uint8 codes (nearest centroid each)."""
        self._require_trained()
        X = check_matrix(X, name="X", dtype=INDEX_DTYPE)
        if X.shape[1] != self.dim:
            raise VectorIndexError(
                f"encode input has {X.shape[1]} dims; quantizer was "
                f"trained for {self.dim}")
        codes = np.empty((X.shape[0], self.m), dtype=np.uint8)
        for start in range(0, X.shape[0], _ENCODE_BLOCK):
            stop = min(start + _ENCODE_BLOCK, X.shape[0])
            parts = self._split(X[start:stop])
            for j in range(self.m):
                d2 = squared_euclidean_distances(parts[:, j, :],
                                                 self.codebooks_[j])
                codes[start:stop, j] = np.argmin(d2, axis=1).astype(np.uint8)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct ``(n, d)`` float32 vectors (per-sub-space centroids)."""
        self._require_trained()
        codes = np.asarray(codes)
        n = codes.shape[0]
        out = np.empty((n, self.dim), dtype=INDEX_DTYPE)
        ds = self.codebooks_.shape[2]
        for j in range(self.m):
            out[:, j * ds:(j + 1) * ds] = self.codebooks_[j][codes[:, j]]
        return out

    # asymmetric distance -----------------------------------------------
    def lookup_tables(self, Q: np.ndarray) -> np.ndarray:
        """Per-query ADC tables: ``(q, m, n_codes)`` squared sub-distances.

        ``adc(luts, codes)`` then scores any code block without touching
        floats — the query-side half of asymmetric distance computation:
        queries stay exact, only the corpus is compressed.
        """
        self._require_trained()
        Q = np.asarray(Q, dtype=INDEX_DTYPE)
        parts = self._split(Q)
        luts = np.empty((Q.shape[0], self.m, self.codebooks_.shape[1]),
                        dtype=INDEX_DTYPE)
        for j in range(self.m):
            luts[:, j, :] = squared_euclidean_distances(parts[:, j, :],
                                                        self.codebooks_[j])
        return luts

    def adc(self, luts: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Approximate squared distances ``(q, n)`` from ADC tables.

        Exactly the squared Euclidean distance from each query to each
        code's *reconstruction* (``decode``), summed from the per-sub-space
        tables — ``m`` gathers per candidate block instead of ``d``
        multiplies.
        """
        scores = luts[:, 0, :][:, codes[:, 0]].copy()
        for j in range(1, self.m):
            scores += luts[:, j, :][:, codes[:, j]]
        return scores

    # persistence -------------------------------------------------------
    def state_arrays(self) -> dict[str, np.ndarray]:
        self._require_trained()
        return {"pq_codebooks": self.codebooks_}

    @classmethod
    def from_state_arrays(cls, arrays: dict, *, m: int,
                          seed: int | None = 0) -> "ProductQuantizer":
        quantizer = cls(m, seed=seed)
        quantizer.codebooks_ = np.asarray(arrays["pq_codebooks"],
                                          dtype=INDEX_DTYPE)
        return quantizer
