"""IVF-Flat: k-means coarse quantizer + inverted lists, ``nprobe`` recall.

The classic database ANN layout (FAISS's ``IndexIVFFlat``): a k-means
quantizer — :class:`repro.clustering.KMeans`, trained on a bounded sample —
partitions the corpus into ``nlist`` cells, each holding the exact vectors
assigned to it.  A query is compared against the ``nprobe`` nearest cell
centroids only, then scanned exactly within those cells, so work per query
drops from ``O(n*d)`` to roughly ``O((nlist + n*nprobe/nlist) * d)``.
``nprobe`` trades recall for speed at query time without rebuilding.

Incremental :meth:`IVFFlatIndex.add` assigns new vectors to their nearest
existing cell — the streaming write path; the quantizer itself is only
retrained by a fresh :meth:`IVFFlatIndex.build`.

For ``metric="cosine"`` vectors are unit-normalised once at insert time;
on the unit sphere the Euclidean and cosine orderings coincide, so the
same Euclidean quantizer serves both metrics.
"""

from __future__ import annotations

import numpy as np

from ..utils.metrics_dispatch import squared_euclidean_distances
from .base import INDEX_DTYPE, VectorIndex

__all__ = ["IVFFlatIndex"]

#: Row block for coarse-quantizer assignment: bounds the ``(rows, nlist)``
#: distance temporary regardless of corpus size (the 1M-vector builds).
_ASSIGN_BLOCK = 16384


def nearest_cells(Q: np.ndarray, centroids: np.ndarray,
                  k: int) -> np.ndarray:
    """Indices of the ``k`` nearest centroids per query row (blocked).

    Shared by the IVF family (flat and PQ): assignment at build time and
    probe selection at query time are the same computation, blocked over
    query rows so a million-row corpus never materialises an
    ``(n, nlist)`` distance matrix at once.
    """
    out = np.empty((Q.shape[0], min(k, centroids.shape[0])), dtype=np.int64)
    for start in range(0, Q.shape[0], _ASSIGN_BLOCK):
        stop = min(start + _ASSIGN_BLOCK, Q.shape[0])
        d2 = squared_euclidean_distances(Q[start:stop], centroids)
        if k >= d2.shape[1]:
            out[start:stop] = np.argsort(d2, axis=1, kind="stable")
            continue
        cells = np.argpartition(d2, kth=k - 1, axis=1)[:, :k]
        order = np.argsort(np.take_along_axis(d2, cells, axis=1), axis=1,
                           kind="stable")
        out[start:stop] = np.take_along_axis(cells, order, axis=1)
    return out

#: Quantizer k-means training sample: ``max(_TRAIN_MIN, _TRAIN_PER_LIST *
#: nlist)`` rows, capped at n — centroid quality needs O(points-per-list)
#: examples, not the whole corpus, and the cap is what keeps build cost
#: bounded at large n (and large d).
_TRAIN_PER_LIST = 16
_TRAIN_MIN = 2048
#: Lloyd iterations for the quantizer (FAISS-style: coarse cells converge
#: in a few iterations; more buys nothing measurable).
_TRAIN_ITER = 12


class IVFFlatIndex(VectorIndex):
    """Inverted-file index with exact residual scan inside probed cells.

    Parameters
    ----------
    nlist:
        Number of k-means cells; ``None`` picks ``~sqrt(n)`` at build time
        (re-derived on every :meth:`build`).
    nprobe:
        Cells scanned per query.  Raising it monotonically raises recall
        towards the exact result (``nprobe=nlist`` *is* an exact scan).
    seed:
        Seed for the quantizer's k-means (deterministic builds).
    """

    backend = "ivf"

    _QUERY_TUNABLES = {"nprobe": 1}

    def __init__(self, *, metric: str = "cosine", nlist: int | None = None,
                 nprobe: int = 8, seed: int | None = 0) -> None:
        super().__init__(metric=metric)
        if nlist is not None and nlist < 1:
            raise ValueError("nlist must be >= 1 (or None for sqrt(n))")
        if nprobe < 1:
            raise ValueError("nprobe must be >= 1")
        self.nlist = nlist
        self.nprobe = int(nprobe)
        self.seed = seed
        self.centroids_: np.ndarray | None = None
        self.assignments_: np.ndarray | None = None
        self._lists: list[np.ndarray] = []
        # Contiguous per-cell copies of the (metric-transformed) vectors,
        # plus their squared norms: a probed cell is scanned with a direct
        # matmul instead of a fancy-indexed gather across the whole corpus
        # — the gather's memcpy, not the arithmetic, dominates query cost.
        self._cell_vectors: list[np.ndarray] = []
        self._cell_sq: list[np.ndarray] = []

    # ------------------------------------------------------------------
    def _effective_nlist(self, n: int) -> int:
        if self.nlist is not None:
            return min(self.nlist, n)
        return max(1, min(n, int(round(np.sqrt(n)))))

    def _nearest_cells(self, Q: np.ndarray, k: int) -> np.ndarray:
        """Indices of the ``k`` nearest centroids per query row."""
        return nearest_cells(Q, self.centroids_, k)

    def _rebuild(self) -> None:
        from ..clustering import KMeans

        X = self._search_vectors
        n = X.shape[0]
        nlist = self._effective_nlist(n)
        sample_size = min(n, max(_TRAIN_MIN, _TRAIN_PER_LIST * nlist))
        if sample_size < n:
            rng = np.random.default_rng(self.seed)
            sample = X[rng.choice(n, size=sample_size, replace=False)]
        else:
            sample = X
        quantizer = KMeans(nlist, n_init=1, max_iter=_TRAIN_ITER,
                           seed=self.seed, init="random")
        quantizer.fit(sample)
        self.centroids_ = np.asarray(quantizer.cluster_centers_,
                                     dtype=INDEX_DTYPE)
        self.assignments_ = self._nearest_cells(X, 1)[:, 0].astype(np.int64)
        self._build_cells()

    def _build_cells(self) -> None:
        """Derive inverted lists + contiguous cell storage from assignments."""
        X = self._search_vectors
        self._lists = [np.flatnonzero(self.assignments_ == cell)
                       for cell in range(self.centroids_.shape[0])]
        self._cell_vectors = [np.ascontiguousarray(X[members])
                              for members in self._lists]
        self._cell_sq = [np.sum(block ** 2, axis=1)
                         for block in self._cell_vectors]

    def _append(self, start: int) -> None:
        fresh = self._search_vectors[start:]
        cells = self._nearest_cells(fresh, 1)[:, 0].astype(np.int64)
        self.assignments_ = np.concatenate([self.assignments_, cells])
        positions = np.arange(start, start + fresh.shape[0], dtype=np.int64)
        for cell in np.unique(cells):
            joined = cells == cell
            members = positions[joined]
            block = fresh[joined]
            self._lists[cell] = np.concatenate([self._lists[cell], members])
            self._cell_vectors[cell] = np.vstack(
                [self._cell_vectors[cell], block])
            self._cell_sq[cell] = np.concatenate(
                [self._cell_sq[cell], np.sum(block ** 2, axis=1)])

    # ------------------------------------------------------------------
    def _candidate_distances(self, Q: np.ndarray,
                             candidates: np.ndarray) -> np.ndarray:
        """Exact distances from the rows of ``Q`` to arbitrary positions.

        Gathers across the corpus — only the rare pad/back-fill paths pay
        this; hot paths scan the contiguous cell storage instead.
        """
        block = self._search_vectors[candidates]
        if self.metric == "cosine":
            distances = 1.0 - Q @ block.T
            np.maximum(distances, 0.0, out=distances)
            return distances
        return np.sqrt(squared_euclidean_distances(Q, block))

    def _cell_distances(self, Q: np.ndarray, q_sq: np.ndarray,
                        cell: int) -> np.ndarray:
        """Distances from the rows of ``Q`` to one cell's members."""
        block = self._cell_vectors[cell]
        if self.metric == "cosine":
            distances = 1.0 - Q @ block.T
            np.maximum(distances, 0.0, out=distances)
            return distances
        d2 = q_sq[:, None] + self._cell_sq[cell][None, :] - 2.0 * (Q @ block.T)
        return np.sqrt(np.maximum(d2, 0.0))

    def _search(self, Q: np.ndarray, k: int,
                tunables: dict) -> tuple[np.ndarray, np.ndarray]:
        nlist = self.centroids_.shape[0]
        nprobe = min(tunables.get("nprobe", self.nprobe), nlist)
        probes = self._nearest_cells(Q, nprobe)
        q = Q.shape[0]
        indices = np.empty((q, k), dtype=np.int64)
        distances = np.empty((q, k), dtype=Q.dtype)
        q_sq = None if self.metric == "cosine" else np.sum(Q ** 2, axis=1)
        if q < nlist:
            # Few queries: scan each probed cell's contiguous block, one
            # small matmul per cell (disjoint cells, so no dedup needed).
            for row in range(q):
                query = Q[row:row + 1]
                row_sq = None if q_sq is None else q_sq[row:row + 1]
                pools, dists = [], []
                for cell in probes[row]:
                    if self._lists[cell].size == 0:
                        continue
                    pools.append(self._lists[cell])
                    dists.append(self._cell_distances(query, row_sq, cell)[0])
                pool = (np.concatenate(pools) if pools
                        else np.empty(0, dtype=np.int64))
                if pool.size < k:
                    pool = self._pad_pool(pool, k)
                    d = self._candidate_distances(query, pool)[0]
                else:
                    d = np.concatenate(dists)
                indices[row], distances[row] = self._top_k(d, pool, k)
            return indices, distances
        # Many queries (e.g. KNN-graph construction: the corpus queries
        # itself): loop over *cells* instead — nlist well-shaped matmuls
        # regardless of query count, each scanning one cell against every
        # query that probes it (at whatever probe rank).
        pool_d = np.full((q, nprobe * k), np.inf, dtype=Q.dtype)
        pool_i = np.zeros((q, nprobe * k), dtype=np.int64)
        for cell in range(nlist):
            members = self._lists[cell]
            if members.size == 0:
                continue
            rows, ranks = np.nonzero(probes == cell)
            if rows.size == 0:
                continue
            row_sq = None if q_sq is None else q_sq[rows]
            d = self._cell_distances(Q[rows], row_sq, cell)
            take = min(k, members.size)
            if members.size > take:
                keep = np.argpartition(d, kth=take - 1, axis=1)[:, :take]
                block_d = np.take_along_axis(d, keep, axis=1)
                block_i = members[keep]
            else:
                block_d = d
                block_i = np.broadcast_to(members, d.shape)
            # Each (query, cell) pair owns the rank-th k-wide pool slot.
            cols = ranks[:, None] * k + np.arange(take)[None, :]
            pool_d[rows[:, None], cols] = block_d
            pool_i[rows[:, None], cols] = block_i
        # Vectorised finalise: top-k of each pool row, ties broken by
        # position (lexsort) for determinism.
        filled = np.isfinite(pool_d).sum(axis=1)
        keep = np.argpartition(pool_d, kth=k - 1, axis=1)[:, :k]
        cand_d = np.take_along_axis(pool_d, keep, axis=1)
        cand_i = np.take_along_axis(pool_i, keep, axis=1)
        order = np.lexsort((cand_i, cand_d))
        indices = np.take_along_axis(cand_i, order, axis=1)
        distances = np.take_along_axis(cand_d, order, axis=1)
        # Rows whose probed cells under-filled the pool (rare): back-fill
        # candidates and redo that row exactly.
        for row in np.flatnonzero(filled < k):
            pool = pool_i[row][np.isfinite(pool_d[row])]
            cand = self._pad_pool(pool, k)
            d = self._candidate_distances(Q[row:row + 1], cand)[0]
            indices[row], distances[row] = self._top_k(d, cand, k)
        return indices, distances

    def _pad_pool(self, pool: np.ndarray, k: int) -> np.ndarray:
        """Ensure at least ``k`` candidates (probed cells can under-fill).

        Falls back to the first corpus positions not already pooled — the
        result stays a valid (if lower-recall) top-k whose width always
        matches the exact baseline's.
        """
        pool = np.unique(pool)
        if pool.size >= k:
            return pool
        missing = np.setdiff1d(np.arange(self.size, dtype=np.int64), pool,
                               assume_unique=True)[:k - pool.size]
        return np.concatenate([pool, missing])

    # ------------------------------------------------------------------
    # checkpoint protocol extensions
    def _state_params(self) -> dict:
        return {"nlist": self.nlist, "nprobe": self.nprobe, "seed": self.seed}

    def _state_arrays(self) -> dict[str, np.ndarray]:
        return {"centroids": self.centroids_,
                "assignments": self.assignments_}

    @classmethod
    def _init_kwargs(cls, params: dict) -> dict:
        return {"nlist": params["nlist"], "nprobe": params["nprobe"],
                "seed": params["seed"]}

    def _restore(self, params: dict, arrays: dict) -> None:
        # The stored assignments rebuild the inverted lists exactly; the
        # quantizer is NOT retrained, so a reloaded index answers queries
        # bit-identically to the instance that was saved.
        self.centroids_ = np.asarray(arrays["centroids"], dtype=INDEX_DTYPE)
        self.assignments_ = np.asarray(arrays["assignments"], dtype=np.int64)
        self._build_cells()
