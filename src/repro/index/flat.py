"""Exact brute-force index: the recall baseline and the small-n default.

``FlatIndex`` stores the vectors and answers every query with a blocked
exact scan — the same blocked-slab technique as
:func:`repro.graphs.knn.blocked_topk_neighbors`, so peak memory stays at
``O(query_rows * block_size)`` instead of ``O(query_rows * n)``.  Recall is
1.0 by construction, which is why the benchmarks and the property tests
use it as ground truth for the approximate backends.
"""

from __future__ import annotations

import numpy as np

from ..utils.metrics_dispatch import squared_euclidean_distances
from .base import VectorIndex

__all__ = ["FlatIndex"]

#: Corpus rows per distance slab: bounds the largest temporary at
#: ``query_rows * _SCAN_BLOCK`` floats.
_SCAN_BLOCK = 4096


class FlatIndex(VectorIndex):
    """Exact nearest-neighbour search by blocked linear scan."""

    backend = "flat"

    def _rebuild(self) -> None:
        """Nothing to organise: the scan works off the raw vector store."""

    def _append(self, start: int) -> None:
        """Nothing to organise: new rows join the scan automatically."""

    def _block_distances(self, Q: np.ndarray, start: int,
                         stop: int) -> np.ndarray:
        """Distances from every query row to corpus rows ``start:stop``."""
        block = self._search_vectors[start:stop]
        if self.metric == "cosine":
            distances = 1.0 - Q @ block.T
        else:
            distances = np.sqrt(squared_euclidean_distances(Q, block))
        np.maximum(distances, 0.0, out=distances)
        return distances

    def _search(self, Q: np.ndarray, k: int,
                tunables: dict) -> tuple[np.ndarray, np.ndarray]:
        n, q = self.size, Q.shape[0]
        best_d = np.empty((q, 0), dtype=Q.dtype)
        best_i = np.empty((q, 0), dtype=np.int64)
        for start in range(0, n, _SCAN_BLOCK):
            stop = min(start + _SCAN_BLOCK, n)
            distances = self._block_distances(Q, start, stop)
            positions = np.broadcast_to(
                np.arange(start, stop, dtype=np.int64), distances.shape)
            # Fold this slab into the running top-k (keeps the candidate
            # pool at 2k per query row regardless of corpus size).
            pool_d = np.concatenate([best_d, distances], axis=1)
            pool_i = np.concatenate([best_i, positions], axis=1)
            if pool_d.shape[1] > k:
                keep = np.argpartition(pool_d, kth=k - 1, axis=1)[:, :k]
                pool_d = np.take_along_axis(pool_d, keep, axis=1)
                pool_i = np.take_along_axis(pool_i, keep, axis=1)
            best_d, best_i = pool_d, pool_i
        # Order each row by (distance, position) for deterministic output.
        order = np.lexsort((best_i, best_d), axis=1)
        return (np.take_along_axis(best_i, order, axis=1),
                np.take_along_axis(best_d, order, axis=1))
