"""Common machinery for the vector-index backends.

:class:`VectorIndex` owns everything the three backends share — metric
dispatch (through :mod:`repro.utils.metrics_dispatch`), the external-id
mapping, the raw-vector store, input validation, the
``build/add/query/save/load`` surface and the :mod:`repro.serialize`
checkpoint protocol — so each backend only implements how it organises
vectors for search (:meth:`VectorIndex._rebuild`,
:meth:`VectorIndex._append`) and how it answers a query
(:meth:`VectorIndex._search`).

Distances returned by :meth:`VectorIndex.query` are true metric
dissimilarities: Euclidean distance for ``metric="euclidean"`` and the
cosine distance ``1 - cos`` for ``metric="cosine"`` — smaller is closer
under both, which is what lets DBSCAN compare them against ``eps`` and the
serving API report them uniformly.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..exceptions import (
    ConfigurationError,
    IndexMismatchError,
    VectorIndexError,
)
from ..utils.metrics_dispatch import unit_rows, validate_metric
from ..utils.validation import check_matrix

__all__ = ["VectorIndex", "create_index", "INDEX_BACKENDS", "INDEX_DTYPE"]

#: Storage/compute dtype of the index hot path.  Inputs arrive as float64
#: (the training precision) and are narrowed once at the ``build``/``add``/
#: ``query`` boundary: float32 halves the memory footprint and bandwidth of
#: every scan without changing neighbour orderings at embedding scale.
INDEX_DTYPE = np.float32


class VectorIndex:
    """Base class of the approximate/exact nearest-neighbour indexes.

    Parameters
    ----------
    metric:
        ``"cosine"`` (the embedding-space default throughout the library)
        or ``"euclidean"`` (what DBSCAN's ``eps`` is defined over).

    Subclasses set :attr:`backend` and implement ``_rebuild`` (organise
    ``self._search_vectors`` from scratch), ``_append`` (absorb the rows
    just appended by :meth:`add`) and ``_search`` (answer a validated
    query batch with ``(positions, distances)``).
    """

    #: Registry key of the backend (``"flat"``, ``"ivf"``, ``"hnsw"``,
    #: ``"ivfpq"``).
    backend: str = ""

    #: Query-time tunables the backend accepts (name -> minimum value).
    #: These ride on :meth:`query` as keyword arguments — per-request
    #: recall/latency trade-offs that never mutate the index (thread-safe
    #: under the serving layer's concurrent queries).
    _QUERY_TUNABLES: dict[str, int] = {}

    def __init__(self, *, metric: str = "cosine") -> None:
        validate_metric(metric)
        self.metric = metric
        self.vectors_: np.ndarray | None = None
        self.ids_: np.ndarray | None = None
        self._search_vectors: np.ndarray | None = None

    # ------------------------------------------------------------------
    # introspection
    @property
    def size(self) -> int:
        """Number of indexed vectors."""
        return 0 if self.vectors_ is None else int(self.vectors_.shape[0])

    @property
    def dim(self) -> int:
        """Dimensionality of the indexed vectors (0 before ``build``)."""
        return 0 if self.vectors_ is None else int(self.vectors_.shape[1])

    @property
    def ids(self) -> np.ndarray:
        """External ids aligned with vector positions (default: positions)."""
        self._require_built()
        return self.ids_

    def _require_built(self) -> None:
        if self.vectors_ is None:
            raise VectorIndexError(
                f"{type(self).__name__} is empty; call build() first")

    def _as_search(self, X: np.ndarray) -> np.ndarray:
        """The representation distances are computed in (unit rows for cosine)."""
        return unit_rows(X) if self.metric == "cosine" else X

    @staticmethod
    def _check_ids(ids, n: int) -> np.ndarray:
        array = np.asarray(ids)
        if array.ndim != 1 or array.shape[0] != n:
            raise VectorIndexError(
                f"ids must be a 1-D sequence of length {n}, got shape "
                f"{array.shape}")
        if array.dtype == object:
            array = array.astype(str)
        return array

    # ------------------------------------------------------------------
    # build / add / query
    def build(self, X, ids=None) -> "VectorIndex":
        """Index the rows of ``X`` from scratch, replacing any prior state.

        ``ids`` optionally attaches one external id per row (integers or
        strings); they default to the row positions and are what the
        serving API reports back to clients.
        """
        X = check_matrix(X, name="X", dtype=INDEX_DTYPE)
        self.vectors_ = X
        self.ids_ = (np.arange(X.shape[0], dtype=np.int64) if ids is None
                     else self._check_ids(ids, X.shape[0]))
        self._search_vectors = self._as_search(X)
        self._rebuild()
        return self

    def add(self, X, ids=None) -> "VectorIndex":
        """Append new rows incrementally (the streaming write path).

        On an empty index this is :meth:`build`.  Default ids continue the
        position numbering, so positions and default ids stay aligned.
        """
        if self.vectors_ is None:
            return self.build(X, ids=ids)
        X = check_matrix(X, name="X", dtype=INDEX_DTYPE)
        if X.shape[1] != self.dim:
            raise IndexMismatchError(
                f"add batch has {X.shape[1]} features; the index holds "
                f"{self.dim}-dimensional vectors")
        start = self.size
        if ids is None:
            fresh = np.arange(start, start + X.shape[0], dtype=np.int64)
        else:
            fresh = self._check_ids(ids, X.shape[0])
        if fresh.dtype.kind != self.ids_.dtype.kind:
            # Mixed kinds (e.g. auto-numbered adds onto string ids):
            # render the new ids as strings.  astype(str) sizes the
            # unicode width to the values — never a fixed-width cast,
            # which would silently truncate ('201' -> '20').
            fresh = fresh.astype(str)
        self.vectors_ = np.vstack([self.vectors_, X])
        # np.concatenate promotes to the wider dtype, so existing ids and
        # new ids both survive verbatim.
        self.ids_ = np.concatenate([self.ids_, fresh])
        self._search_vectors = np.vstack([self._search_vectors,
                                          self._as_search(X)])
        self._append(start)
        return self

    def query(self, Q, k: int = 10,
              **tunables) -> tuple[np.ndarray, np.ndarray]:
        """Top-``k`` nearest indexed vectors for every row of ``Q``.

        Returns ``(positions, distances)``, both ``(len(Q), k_eff)`` with
        ``k_eff = min(k, size)`` and each row ordered by increasing
        distance.  Positions index :attr:`ids` / the build order; map them
        through :attr:`ids` for external ids.

        ``tunables`` are per-request recall/latency knobs — ``nprobe`` and
        ``rerank`` for the IVF family, ``ef_search`` for HNSW (see
        :attr:`query_tunables`).  They override the build-time defaults
        for this call only and never mutate the index, so concurrent
        queries with different settings are safe.
        """
        self._require_built()
        if k < 1:
            raise VectorIndexError("k must be >= 1")
        params = self._check_tunables(tunables)
        Q = check_matrix(Q, name="Q", dtype=INDEX_DTYPE)
        if Q.shape[1] != self.dim:
            raise IndexMismatchError(
                f"query has {Q.shape[1]} features; the index holds "
                f"{self.dim}-dimensional vectors")
        k = min(int(k), self.size)
        return self._search(self._as_search(Q), k, params)

    @property
    def query_tunables(self) -> dict[str, int]:
        """Query-time tunables this backend accepts (name -> minimum)."""
        return dict(self._QUERY_TUNABLES)

    def _check_tunables(self, tunables: dict) -> dict:
        """Validate per-request tunables against the backend's contract."""
        params: dict[str, int] = {}
        for name, value in tunables.items():
            minimum = self._QUERY_TUNABLES.get(name)
            if minimum is None:
                supported = sorted(self._QUERY_TUNABLES) or "none"
                raise VectorIndexError(
                    f"{type(self).__name__} accepts no query tunable "
                    f"{name!r}; supported: {supported}")
            if value is None:
                continue
            if isinstance(value, bool) or \
                    not isinstance(value, (int, np.integer)):
                raise VectorIndexError(
                    f"{name} must be an integer, got {value!r}")
            if value < minimum:
                raise VectorIndexError(
                    f"{name} must be >= {minimum}, got {value}")
            params[name] = int(value)
        return params

    # ------------------------------------------------------------------
    # backend hooks
    def _rebuild(self) -> None:
        """Organise ``self._search_vectors`` for search (from scratch)."""
        raise NotImplementedError

    def _append(self, start: int) -> None:
        """Absorb rows ``start:`` of ``self._search_vectors`` incrementally."""
        raise NotImplementedError

    def _search(self, Q: np.ndarray, k: int,
                tunables: dict) -> tuple[np.ndarray, np.ndarray]:
        """Answer a validated, metric-transformed query batch.

        ``tunables`` holds the validated per-request overrides (possibly
        empty); backends fall back to their build-time defaults.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # ordering helper shared by the backends
    @staticmethod
    def _top_k(distances: np.ndarray, candidates: np.ndarray,
               k: int) -> tuple[np.ndarray, np.ndarray]:
        """Select the ``k`` smallest of one row's candidate distances.

        Ties break towards the lower candidate position so results are
        deterministic regardless of how candidates were gathered.
        """
        if candidates.size > k:
            keep = np.argpartition(distances, kth=k - 1)[:k]
            distances, candidates = distances[keep], candidates[keep]
        order = np.lexsort((candidates, distances))
        return candidates[order], distances[order]

    # ------------------------------------------------------------------
    # checkpoint protocol (see repro.serialize)
    def checkpoint_params(self) -> dict:
        """JSON-able constructor and structural state."""
        self._require_built()
        return {"metric": self.metric, "backend": self.backend,
                **self._state_params()}

    def checkpoint_arrays(self) -> dict[str, np.ndarray]:
        """Numeric state: raw vectors, ids and backend structure."""
        self._require_built()
        return {"vectors": self.vectors_, "ids": self.ids_,
                **self._state_arrays()}

    @classmethod
    def from_checkpoint(cls, params: dict, arrays: dict) -> "VectorIndex":
        """Rebuild an index from :mod:`repro.serialize` state."""
        index = cls(metric=params["metric"], **cls._init_kwargs(params))
        index.vectors_ = np.asarray(arrays["vectors"], dtype=INDEX_DTYPE)
        ids = np.asarray(arrays["ids"])
        index.ids_ = ids if ids.dtype.kind in "US" else ids.astype(np.int64)
        index._search_vectors = index._as_search(index.vectors_)
        index._restore(params, arrays)
        return index

    def _state_params(self) -> dict:
        """Backend-specific JSON-able state merged into the header params."""
        return {}

    def _state_arrays(self) -> dict[str, np.ndarray]:
        """Backend-specific arrays merged into the checkpoint payload."""
        return {}

    @classmethod
    def _init_kwargs(cls, params: dict) -> dict:
        """Constructor kwargs recovered from checkpoint params."""
        return {}

    def _restore(self, params: dict, arrays: dict) -> None:
        """Restore backend structure (default: rebuild it from the vectors)."""
        self._rebuild()

    # ------------------------------------------------------------------
    # save / load convenience over repro.serialize
    def _quantizer_metadata(self) -> dict | None:
        """Quantizer configuration stamped into saved headers (or None)."""
        return None

    def save(self, path: str | Path, *, metadata: dict | None = None) -> Path:
        """Persist as a versioned NPZ checkpoint (atomic write).

        The header metadata stamps the index contract — ``metric``,
        ``dtype``, ``dim`` and (for quantized backends) the quantizer
        configuration — alongside whatever the caller provides (the CLI
        adds encoder name/seed via ``task``/``embedding``/``seed``), so a
        loader can reject mismatched queries before computing garbage.
        """
        from ..serialize import save_checkpoint

        stamped = {"kind": "vector-index", "backend": self.backend,
                   "n_vectors": self.size, "n_features": self.dim,
                   "dim": self.dim, "metric": self.metric,
                   "dtype": np.dtype(INDEX_DTYPE).name,
                   **(metadata or {})}
        quantizer = self._quantizer_metadata()
        if quantizer is not None:
            stamped.setdefault("quantizer", quantizer)
        return save_checkpoint(path, self, metadata=stamped)

    @classmethod
    def load(cls, path: str | Path) -> "VectorIndex":
        """Load any checkpointed index (class resolved from the header).

        The stamped contract is verified against the reconstructed index:
        a header claiming a different ``dim`` or ``metric`` than the
        arrays produce (a corrupted or hand-edited checkpoint) raises
        :class:`~repro.exceptions.IndexMismatchError` here, at load time,
        instead of surfacing as wrong distances at query time.
        """
        from ..serialize import load_checkpoint

        index = load_checkpoint(path)
        if not isinstance(index, VectorIndex):
            raise VectorIndexError(
                f"{path} stores a {type(index).__name__}, not a vector index")
        metadata = getattr(index, "checkpoint_header_", {}).get("metadata", {})
        stamped_dim = metadata.get("dim", metadata.get("n_features"))
        if stamped_dim is not None and int(stamped_dim) != index.dim:
            raise IndexMismatchError(
                f"{path} header stamps dim={stamped_dim} but its arrays "
                f"are {index.dim}-dimensional")
        stamped_metric = metadata.get("metric")
        if stamped_metric is not None and stamped_metric != index.metric:
            raise IndexMismatchError(
                f"{path} header stamps metric={stamped_metric!r} but the "
                f"index was built with metric={index.metric!r}")
        return index


def _backends() -> dict[str, type]:
    """Backend name -> index class (import-light: resolved lazily)."""
    from .flat import FlatIndex
    from .hnsw import HNSWIndex
    from .ivf import IVFFlatIndex
    from .ivfpq import IVFPQIndex

    return {FlatIndex.backend: FlatIndex,
            IVFFlatIndex.backend: IVFFlatIndex,
            HNSWIndex.backend: HNSWIndex,
            IVFPQIndex.backend: IVFPQIndex}


#: Names accepted by :func:`create_index` (and the CLI/graph backends).
INDEX_BACKENDS = ("flat", "ivf", "hnsw", "ivfpq")


def create_index(backend: str, *, metric: str = "cosine",
                 **params) -> VectorIndex:
    """Instantiate an index backend by name.

    Extra keyword arguments are passed to the backend constructor
    (``nlist``/``nprobe`` for IVF, ``m``/``ef_construction``/``ef_search``
    for HNSW, ``nlist``/``nprobe``/``m``/``rerank``/``coding`` for
    IVF-PQ); unknown backends raise
    :class:`~repro.exceptions.ConfigurationError`.
    """
    classes = _backends()
    cls = classes.get(backend)
    if cls is None:
        raise ConfigurationError(
            f"unknown index backend {backend!r}; expected one of "
            f"{sorted(classes)}")
    return cls(metric=metric, **params)
