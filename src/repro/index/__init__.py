"""Vector indexes: exact and approximate nearest-neighbour search.

The paper's pipeline is nearest-neighbour-bound end to end — SDCN's
structural input is a KNN graph, DBSCAN is defined by
epsilon-neighbourhood queries, and serving predicts by distance to stored
points.  This package supplies the standard database answer, an ANN index,
behind one protocol:

* :class:`FlatIndex` — exact blocked scan; recall 1.0, the baseline;
* :class:`IVFFlatIndex` — k-means coarse quantizer + inverted lists with
  ``nprobe``-tunable recall and a fully vectorised build;
* :class:`HNSWIndex` — navigable small-world graph with ``ef``-tunable
  recall and sub-linear queries;
* :class:`IVFPQIndex` — inverted lists of quantized codes
  (:class:`ProductQuantizer` / :class:`ScalarQuantizer` from
  :mod:`repro.index.quant`) with exact top-``rerank`` re-scoring and
  memory-mapped, lazily loaded cells — the million-vector,
  larger-than-RAM backend.

All backends support cosine and Euclidean metrics, incremental
:meth:`add` for streaming (IVF-PQ: in-memory instances only), and
round-trip through the versioned :mod:`repro.serialize` checkpoint
format — so indexes persist, hot-reload and rotate alongside model
generations.  Integration points:
``repro.graphs.knn.sparse_knn_graph(..., backend=...)`` for graph
construction, ``DBSCAN(index=...)`` for out-of-sample density queries,
and the serving API's ``POST /models/{name}/neighbors`` / ``POST
/search`` routes for similarity search over tables.
"""

from .base import INDEX_BACKENDS, INDEX_DTYPE, VectorIndex, create_index
from .flat import FlatIndex
from .hnsw import HNSWIndex
from .ivf import IVFFlatIndex
from .ivfpq import IVFPQIndex
from .quant import ProductQuantizer, ScalarQuantizer
from .storage import MappedArrays

__all__ = [
    "INDEX_BACKENDS",
    "INDEX_DTYPE",
    "VectorIndex",
    "create_index",
    "FlatIndex",
    "IVFFlatIndex",
    "HNSWIndex",
    "IVFPQIndex",
    "ProductQuantizer",
    "ScalarQuantizer",
    "MappedArrays",
]
