"""Memory-mapped access to arrays inside an uncompressed checkpoint.

A repro checkpoint is an NPZ file — a zip archive of ``.npy`` members.
When the archive is *stored* rather than deflated (see
``checkpoint_compressed`` in :mod:`repro.serialize`), every member's
array data sits as a contiguous, aligned byte run inside the file, which
means the kernel's page cache can serve it directly: map the whole file
once, expose each member as a zero-copy :func:`numpy.frombuffer` view,
and touch pages only when a query actually reads them.

:class:`MappedArrays` is that map.  :class:`repro.index.IVFPQIndex` uses
it for its inverted lists — a million-vector corpus attaches in
milliseconds and only the probed cells' pages are ever faulted in, so
corpora larger than RAM serve fine.  The ``touched`` set records which
members have been materialised; the lazy-loading tests assert unprobed
cells never appear in it.

The member offsets come from the zip's own metadata (central directory
for the member list, each local file header for the exact data start) and
the array geometry from the standard ``.npy`` header, so any
numpy-written uncompressed NPZ works — no private format.
"""

from __future__ import annotations

import mmap
import struct
import zipfile
from pathlib import Path

import numpy as np
from numpy.lib import format as npy_format

from ..exceptions import VectorIndexError

__all__ = ["MappedArrays"]

#: Fixed portion of a zip local file header; the variable-length name and
#: extra field follow it, then the member's data.
_LOCAL_HEADER_SIZE = 30


class MappedArrays:
    """Read-only, lazily materialised views of an uncompressed NPZ's arrays.

    Opening parses only the zip directory and each member's ``.npy``
    header — no array data is read.  ``arrays[name]`` returns a cached
    zero-copy view backed by one shared file mapping; the OS pages data
    in on first access and may drop it again under memory pressure.

    The mapping holds an open file descriptor, so views stay valid even
    after the path is atomically replaced by a newer checkpoint
    generation (the descriptor pins the old inode) — exactly the
    guarantee hot rotation relies on.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        #: Member names whose views have been materialised (test hook for
        #: the lazy-loading guarantee).
        self.touched: set[str] = set()
        self._views: dict[str, np.ndarray] = {}
        self._members: dict[str, tuple[int, np.dtype, tuple[int, ...]]] = {}
        self._file = open(self.path, "rb")
        try:
            self._index_members()
            self._mmap = mmap.mmap(self._file.fileno(), 0,
                                   access=mmap.ACCESS_READ)
        except Exception:
            self._file.close()
            raise

    def _index_members(self) -> None:
        """Record ``(data_offset, dtype, shape)`` for every stored member."""
        with zipfile.ZipFile(self._file) as archive:
            for info in archive.infolist():
                if info.compress_type != zipfile.ZIP_STORED:
                    raise VectorIndexError(
                        f"{self.path.name}: member {info.filename!r} is "
                        "compressed; mmap-backed indexes need an "
                        "uncompressed checkpoint")
                # The central directory does not give the data offset
                # directly: skip the member's local header, whose
                # name/extra lengths can differ from the central copy.
                self._file.seek(info.header_offset)
                local = self._file.read(_LOCAL_HEADER_SIZE)
                name_len, extra_len = struct.unpack("<HH", local[26:30])
                data_start = (info.header_offset + _LOCAL_HEADER_SIZE
                              + name_len + extra_len)
                self._file.seek(data_start)
                version = npy_format.read_magic(self._file)
                if version == (1, 0):
                    shape, fortran, dtype = \
                        npy_format.read_array_header_1_0(self._file)
                else:
                    shape, fortran, dtype = \
                        npy_format.read_array_header_2_0(self._file)
                if fortran:
                    raise VectorIndexError(
                        f"{self.path.name}: member {info.filename!r} is "
                        "Fortran-ordered; checkpoints are C-ordered")
                name = info.filename
                if name.endswith(".npy"):
                    name = name[:-4]
                self._members[name] = (self._file.tell(), dtype, shape)

    def __contains__(self, name: str) -> bool:
        return name in self._members

    def names(self) -> list[str]:
        return list(self._members)

    def __getitem__(self, name: str) -> np.ndarray:
        view = self._views.get(name)
        if view is None:
            try:
                offset, dtype, shape = self._members[name]
            except KeyError:
                raise VectorIndexError(
                    f"{self.path.name} has no array {name!r}") from None
            count = int(np.prod(shape, dtype=np.int64))
            view = np.frombuffer(self._mmap, dtype=dtype, count=count,
                                 offset=offset).reshape(shape)
            self._views[name] = view
            self.touched.add(name)
        return view

    def close(self) -> None:
        """Release the mapping once no views reference it.

        If views handed out earlier are still alive the mapping cannot be
        torn down (``mmap`` refuses while buffers are exported); the file
        descriptor is released regardless and the mapping itself falls to
        garbage collection with the last view.
        """
        self._views.clear()
        if getattr(self, "_mmap", None) is not None:
            try:
                self._mmap.close()
            except BufferError:
                pass
            self._mmap = None
        if getattr(self, "_file", None) is not None:
            self._file.close()
            self._file = None

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass
