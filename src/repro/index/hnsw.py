"""Hierarchical navigable small-world graph index (Malkov & Yashunin, 2018).

A numpy-only HNSW: every vector becomes a node in a stack of proximity
graphs.  Layer 0 contains all nodes; each higher layer keeps an
exponentially thinning subset (a node's top layer is drawn geometrically
with multiplier ``1/ln(m)``), so a search greedily descends coarse layers
in a few hops and only runs the beam search (width ``ef``) on the bottom
layer.  Queries cost ``O(ef * m * log n)`` distance evaluations instead of
the flat scan's ``O(n)``; construction inserts nodes one at a time with
the same beam search, which also makes :meth:`HNSWIndex.add` naturally
incremental — streaming inserts are just more of the build loop.

Neighbour distance evaluations are batched through numpy (one gather +
matmul per hop), which is what keeps the pure-python control loop viable;
for corpus sizes where the build loop itself dominates, prefer
:class:`repro.index.IVFFlatIndex`, whose build is fully vectorised.
"""

from __future__ import annotations

import heapq

import numpy as np

from .base import VectorIndex

__all__ = ["HNSWIndex"]


class HNSWIndex(VectorIndex):
    """Navigable small-world graph over the indexed vectors.

    Parameters
    ----------
    m:
        Out-degree target: layers above 0 keep at most ``m`` links per
        node, layer 0 keeps ``2 * m``.
    ef_construction:
        Beam width while inserting — bigger builds a better graph, slower.
    ef_search:
        Default beam width while querying (raised to ``k`` when smaller).
        Tunable after construction: recall/speed without rebuilding.
    seed:
        Seed for the geometric layer draws (deterministic builds).
    """

    backend = "hnsw"

    _QUERY_TUNABLES = {"ef_search": 1}

    def __init__(self, *, metric: str = "cosine", m: int = 16,
                 ef_construction: int = 100, ef_search: int = 64,
                 seed: int | None = 0) -> None:
        super().__init__(metric=metric)
        if m < 2:
            raise ValueError("m must be >= 2")
        if ef_construction < 1 or ef_search < 1:
            raise ValueError("ef_construction and ef_search must be >= 1")
        self.m = int(m)
        self.ef_construction = int(ef_construction)
        self.ef_search = int(ef_search)
        self.seed = seed
        self._level_mult = 1.0 / np.log(self.m)
        self.entry_point_: int = -1
        self.max_level_: int = -1
        self.levels_: list[int] = []
        #: ``_graphs[level][node]`` -> list of neighbour positions.
        self._graphs: list[list[list[int] | None]] = []
        self._rng = np.random.default_rng(seed)
        # Stamped visited marks, reused across searches (no per-call zeros).
        self._visited = np.zeros(0, dtype=np.int64)
        self._stamp = 0
        # Cached squared norms of the search vectors (euclidean hot path).
        self._sq = np.zeros(0)

    # ------------------------------------------------------------------
    # distances
    def _dist_to(self, q: np.ndarray, nodes: list[int] | np.ndarray
                 ) -> np.ndarray:
        """Distances from ``q`` to the given nodes (one gather + matmul).

        Hot path of every insert and search hop: norms are cached, and the
        tiny negative values cancellation can produce are tolerated here —
        ordering is unaffected; user-facing distances are clamped once in
        :meth:`_search`.
        """
        ids = np.asarray(nodes, dtype=np.int64)
        block = self._search_vectors[ids]
        if self.metric == "cosine":
            return 1.0 - block @ q
        d2 = self._sq[ids] - 2.0 * (block @ q) + q @ q
        return np.sqrt(np.maximum(d2, 0.0))

    # ------------------------------------------------------------------
    # construction
    def _rebuild(self) -> None:
        self.entry_point_ = -1
        self.max_level_ = -1
        self.levels_ = []
        self._graphs = []
        self._rng = np.random.default_rng(self.seed)
        self._visited = np.zeros(self._search_vectors.shape[0],
                                 dtype=np.int64)
        self._stamp = 0
        self._sq = np.sum(self._search_vectors ** 2, axis=1)
        for pos in range(self._search_vectors.shape[0]):
            self._insert(pos)

    def _append(self, start: int) -> None:
        grow = self._search_vectors.shape[0] - self._visited.shape[0]
        if grow > 0:
            self._visited = np.concatenate(
                [self._visited, np.zeros(grow, dtype=np.int64)])
        self._sq = np.sum(self._search_vectors ** 2, axis=1)
        for level_graph in self._graphs:
            level_graph.extend([None] * grow)
        for pos in range(start, self._search_vectors.shape[0]):
            self._insert(pos)

    def _draw_level(self) -> int:
        return int(-np.log(1.0 - self._rng.random()) * self._level_mult)

    def _insert(self, pos: int) -> None:
        level = self._draw_level()
        self.levels_.append(level)
        n_total = len(self._graphs[0]) if self._graphs else \
            self._search_vectors.shape[0]
        while len(self._graphs) <= level:
            self._graphs.append([None] * n_total)
        for lay in range(level + 1):
            self._graphs[lay][pos] = []
        if self.entry_point_ < 0:
            self.entry_point_ = pos
            self.max_level_ = level
            return
        q = self._search_vectors[pos]
        ep = self.entry_point_
        # Coarse descent: greedy hops through the layers above the new
        # node's top level.
        for lay in range(self.max_level_, level, -1):
            ep = self._greedy(q, ep, lay)
        # Beam-search insertion on each layer the node joins.
        for lay in range(min(level, self.max_level_), -1, -1):
            found = self._search_layer(q, ep, self.ef_construction, lay)
            limit = self.m if lay > 0 else 2 * self.m
            chosen = self._select_neighbors(found, self.m)
            self._graphs[lay][pos] = list(chosen)
            for node in chosen:
                links = self._graphs[lay][node]
                links.append(pos)
                if len(links) > limit:
                    d = self._dist_to(self._search_vectors[node], links)
                    ranked = sorted(zip(d, links))
                    self._graphs[lay][node] = self._select_neighbors(
                        ranked, limit)
            ep = found[0][1]
        if level > self.max_level_:
            self.entry_point_ = pos
            self.max_level_ = level

    def _select_neighbors(self, ranked: list[tuple[float, int]],
                          m: int) -> list[int]:
        """Diversity-pruned neighbour selection (the paper's heuristic).

        A candidate is linked only if it is closer to the query than to any
        already-linked neighbour; on clustered data plain closest-``m``
        selection degenerates into intra-cluster cliques with no navigable
        long-range links, which silently caps recall.  Pruned candidates
        backfill remaining slots (``keepPrunedConnections``) so degree
        never starves.
        """
        if len(ranked) <= m:
            # Every candidate ends up linked anyway (pruned ones backfill).
            return [int(node) for _, node in ranked]
        nodes = np.fromiter((node for _, node in ranked), dtype=np.int64,
                            count=len(ranked))
        d_query = np.fromiter((d for d, _ in ranked), dtype=np.float64,
                              count=len(ranked))
        block = self._search_vectors[nodes]
        if self.metric == "cosine":
            between = 1.0 - block @ block.T
        else:
            sq = self._sq[nodes]
            between = np.sqrt(np.maximum(
                sq[:, None] + sq[None, :] - 2.0 * (block @ block.T), 0.0))
        # Running minimum distance from every candidate to the chosen set,
        # updated with one vector op per acceptance (no per-candidate
        # fancy-indexed min).
        to_chosen = np.full(nodes.shape[0], np.inf)
        d_list = d_query.tolist()
        chosen: list[int] = []
        pruned: list[int] = []
        for i in range(nodes.shape[0]):
            if len(chosen) == m:
                break
            if to_chosen[i] < d_list[i]:
                pruned.append(i)
                continue
            chosen.append(i)
            np.minimum(to_chosen, between[i], out=to_chosen)
        for i in pruned:
            if len(chosen) == m:
                break
            chosen.append(i)
        return [int(nodes[i]) for i in chosen]

    # ------------------------------------------------------------------
    # search primitives
    def _greedy(self, q: np.ndarray, ep: int, level: int) -> int:
        """Hill-climb to the locally nearest node of one layer."""
        best = ep
        best_d = float(self._dist_to(q, [ep])[0])
        improved = True
        while improved:
            improved = False
            links = self._graphs[level][best]
            if not links:
                break
            d = self._dist_to(q, links)
            j = int(np.argmin(d))
            if d[j] < best_d:
                best, best_d = links[j], float(d[j])
                improved = True
        return best

    def _search_layer(self, q: np.ndarray, ep: int, ef: int,
                      level: int) -> list[tuple[float, int]]:
        """Beam search of width ``ef``; returns (distance, node) ascending."""
        self._stamp += 1
        stamp = self._stamp
        visited = self._visited
        visited[ep] = stamp
        d0 = float(self._dist_to(q, [ep])[0])
        candidates = [(d0, ep)]            # min-heap: closest frontier first
        results = [(-d0, ep)]              # max-heap: worst kept result on top
        while candidates:
            d, node = heapq.heappop(candidates)
            if d > -results[0][0] and len(results) >= ef:
                break
            fresh = [x for x in self._graphs[level][node]
                     if visited[x] != stamp]
            if not fresh:
                continue
            for x in fresh:
                visited[x] = stamp
            dists = self._dist_to(q, fresh).tolist()
            worst = -results[0][0]
            for dx, x in zip(dists, fresh):
                if len(results) < ef or dx < worst:
                    heapq.heappush(candidates, (dx, x))
                    heapq.heappush(results, (-dx, x))
                    if len(results) > ef:
                        heapq.heappop(results)
                    worst = -results[0][0]
        return sorted((-d, node) for d, node in results)

    def _search(self, Q: np.ndarray, k: int,
                tunables: dict) -> tuple[np.ndarray, np.ndarray]:
        q_rows = Q.shape[0]
        indices = np.empty((q_rows, k), dtype=np.int64)
        distances = np.empty((q_rows, k))
        ef = max(tunables.get("ef_search", self.ef_search), k)
        for row in range(q_rows):
            q = Q[row]
            ep = self.entry_point_
            for lay in range(self.max_level_, 0, -1):
                ep = self._greedy(q, ep, lay)
            found = self._search_layer(q, ep, ef, 0)
            if len(found) < k:
                # Degenerate graph (tiny corpus): fall back to the rest.
                have = {node for _, node in found}
                rest = [x for x in range(self.size) if x not in have]
                found += sorted(zip(self._dist_to(q, rest), rest))
            cand = np.asarray([node for _, node in found[:k]], dtype=np.int64)
            cand_d = np.asarray([d for d, _ in found[:k]])
            indices[row], distances[row] = self._top_k(cand_d, cand, k)
        np.maximum(distances, 0.0, out=distances)
        return indices, distances

    # ------------------------------------------------------------------
    # checkpoint protocol extensions
    def _state_params(self) -> dict:
        return {"m": self.m, "ef_construction": self.ef_construction,
                "ef_search": self.ef_search, "seed": self.seed,
                "entry_point": self.entry_point_,
                "max_level": self.max_level_,
                "n_layers": len(self._graphs)}

    def _state_arrays(self) -> dict[str, np.ndarray]:
        arrays = {"levels": np.asarray(self.levels_, dtype=np.int64)}
        # One CSR adjacency per layer (nodes absent from a layer contribute
        # zero-width rows), which round-trips the exact graph structure.
        for lay, level_graph in enumerate(self._graphs):
            counts = [len(links) if links is not None else 0
                      for links in level_graph]
            indptr = np.zeros(len(level_graph) + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            flat = [x for links in level_graph if links for x in links]
            arrays[f"layer{lay}_indices"] = np.asarray(flat, dtype=np.int64)
            arrays[f"layer{lay}_indptr"] = indptr
        return arrays

    @classmethod
    def _init_kwargs(cls, params: dict) -> dict:
        return {"m": params["m"], "ef_construction": params["ef_construction"],
                "ef_search": params["ef_search"], "seed": params["seed"]}

    def _restore(self, params: dict, arrays: dict) -> None:
        n = self.vectors_.shape[0]
        self.entry_point_ = int(params["entry_point"])
        self.max_level_ = int(params["max_level"])
        self.levels_ = [int(v) for v in np.asarray(arrays["levels"])]
        self._graphs = []
        for lay in range(int(params["n_layers"])):
            indices = np.asarray(arrays[f"layer{lay}_indices"], dtype=np.int64)
            indptr = np.asarray(arrays[f"layer{lay}_indptr"], dtype=np.int64)
            level_graph: list[list[int] | None] = []
            for node in range(n):
                if self.levels_[node] >= lay:
                    level_graph.append(
                        [int(x) for x in indices[indptr[node]:indptr[node + 1]]])
                else:
                    level_graph.append(None)
            self._graphs.append(level_graph)
        self._visited = np.zeros(n, dtype=np.int64)
        self._stamp = 0
        self._sq = np.sum(self._search_vectors ** 2, axis=1)
        # Future adds continue deterministically but never replay the
        # level draws already consumed by the saved build.
        self._rng = np.random.default_rng((self.seed or 0) + n)
