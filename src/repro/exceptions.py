"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch any failure originating in this package with a single ``except``
clause while still being able to discriminate finer-grained failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """Raised when a component is configured with invalid parameters."""


class NotFittedError(ReproError):
    """Raised when ``predict``/``transform`` is called before ``fit``."""


class DataValidationError(ReproError):
    """Raised when input data fails structural validation."""


class ConvergenceError(ReproError):
    """Raised when an iterative algorithm fails to converge."""


class EmbeddingError(ReproError):
    """Raised when an embedding model cannot encode the given input."""


class DatasetError(ReproError):
    """Raised when a benchmark dataset cannot be generated or loaded."""


class ExperimentError(ReproError):
    """Raised when an experiment definition or run is invalid."""


class SerializationError(ReproError):
    """Raised when a model checkpoint cannot be written or read back."""


class ServingError(ReproError):
    """Raised when the online inference layer receives an unservable request."""


class JobError(ReproError):
    """Raised when an async job submission or transition is invalid."""


class ExportError(ReproError):
    """Raised when a result export is invalid or an exporter is unknown."""


class StreamingError(ReproError):
    """Raised when a streaming-ingestion or incremental-update step is invalid."""


class VectorIndexError(ReproError):
    """Raised when a vector index is queried or mutated invalidly."""


class IndexMismatchError(VectorIndexError):
    """Raised when a query or checkpoint contradicts an index's contract.

    The first slice of the versioned vector contracts: an index stamped
    with one dimensionality/metric must reject queries (and corrupted
    checkpoints) carrying another, instead of silently returning garbage
    distances.
    """


class WALError(ReproError):
    """Raised when a write-ahead-log record or journal is invalid."""
