"""repro — deep clustering for data cleaning and integration.

A from-scratch reproduction of "Deep Clustering for Data Cleaning and
Integration" (Rauf, Freitas & Paton, EDBT 2024): schema inference, entity
resolution and domain discovery posed as clustering problems, solved with
deep clustering algorithms (SDCN, EDESC, SHGP, auto-encoder baselines) and
standard clustering baselines (K-means, Birch, DBSCAN) over several
embedding strategies (SBERT- and FastText-style text encoders, EmbDi
relational embeddings, TabNet/TabTransformer-style tabular encoders).

Quickstart
----------
>>> from repro import generate_camera, DomainDiscoveryTask
>>> dataset = generate_camera(n_columns=200, n_domains=12, seed=0)
>>> task = DomainDiscoveryTask(dataset)
>>> result = task.run(embedding="sbert", algorithm="kmeans")
>>> 0.0 <= result.acc <= 1.0
True

The paper's full evaluation matrix is scriptable from the command line —
``python -m repro list`` shows every registered table/figure and
``python -m repro run table2 --scale test --workers 4`` reproduces one with
the independent cells fanned out on a worker pool; embedding matrices are
deduplicated by the content-addressed cache in :mod:`repro.cache`.

Fitted models persist as versioned NPZ checkpoints (:mod:`repro.serialize`)
and serve online out-of-sample predictions over a stdlib JSON HTTP API with
micro-batched forwards (:mod:`repro.serve`): ``repro train ... --save m.npz``
then ``repro serve --model-dir models/``.

Nearest-neighbour work — SDCN's KNN graph, DBSCAN's epsilon queries, and
the serving API's similarity search — can route through the ANN vector
indexes in :mod:`repro.index` (``FlatIndex``, ``IVFFlatIndex``,
``HNSWIndex``), which persist and hot-reload through the same checkpoint
machinery: ``repro train ... --with-index ivf`` then ``POST /search``.

Models are also continuously updatable (:mod:`repro.stream`): ``repro
stream`` replays a dataset as arrival batches with drift-aware incremental
updates, ``repro update`` absorbs new data into a checkpoint and rotates it
to its next generation (:func:`repro.serialize.rotate_checkpoint`), and a
serving process hot-reloads the new generation with zero failed predicts.
With ``--wal-dir``, ingestion is *durable* (:mod:`repro.wal`): every batch
is journaled to a CRC-checksummed, fsync'd write-ahead log before it
touches the model, crash recovery replays exactly the un-applied suffix
(``repro serve --wal-dir``), and ``repro repair`` salvages damaged
directories.
"""

from ._version import __version__
from .cache import (
    ArtifactCache,
    configure_cache,
    get_cache,
    reset_cache,
)
from .config import (
    BENCHMARK_SCALE,
    DEFAULT_SEED,
    TEST_SCALE,
    DeepClusteringConfig,
    ExperimentScale,
)
from .clustering import Birch, DBSCAN, KMeans
from .dc import EDESC, SDCN, SHGP, Autoencoder, AutoencoderClustering
from .data import (
    Column,
    ColumnClusteringDataset,
    Record,
    RecordClusteringDataset,
    Table,
    TableClusteringDataset,
    generate_camera,
    generate_geographic_settlements,
    generate_monitor,
    generate_musicbrainz,
    generate_musicbrainz_scalability,
    generate_tus,
    generate_webtables,
    profile_datasets,
)
from .embeddings import (
    EmbDiEmbedder,
    FastTextEncoder,
    SBERTEncoder,
    TabNetEncoder,
    TabTransformerEncoder,
    embed_item,
    embed_items,
)
from .index import (
    FlatIndex,
    HNSWIndex,
    IVFFlatIndex,
    VectorIndex,
    create_index,
)
from .serialize import (
    checkpoint_generations,
    load_checkpoint,
    read_checkpoint_header,
    rotate_checkpoint,
    save_checkpoint,
)
from .serve import (
    MicroBatcher,
    ModelRegistry,
    PredictService,
    create_server,
)
from .stream import (
    DriftMonitor,
    StreamSource,
    incremental_update,
)
from .wal import (
    WriteAheadLog,
    recover_checkpoint,
    recover_model_dir,
    repair_directory,
    replay_wal,
)
from .metrics import (
    adjusted_rand_index,
    clustering_accuracy,
    normalized_mutual_information,
    silhouette_score,
)
from .tasks import (
    DomainDiscoveryTask,
    EntityResolutionTask,
    SchemaInferenceTask,
    TaskResult,
)
from .experiments import (
    EXPERIMENTS,
    Cell,
    ExperimentPlan,
    ParallelRunner,
    format_results_table,
    plan_experiment,
    render_rows,
    run_experiment,
    run_plan,
    run_scalability_study,
)

__all__ = [
    "__version__",
    "DEFAULT_SEED",
    "DeepClusteringConfig",
    "ExperimentScale",
    "BENCHMARK_SCALE",
    "TEST_SCALE",
    "KMeans",
    "Birch",
    "DBSCAN",
    "Autoencoder",
    "AutoencoderClustering",
    "SDCN",
    "EDESC",
    "SHGP",
    "Table",
    "Column",
    "Record",
    "TableClusteringDataset",
    "RecordClusteringDataset",
    "ColumnClusteringDataset",
    "generate_webtables",
    "generate_tus",
    "generate_musicbrainz",
    "generate_musicbrainz_scalability",
    "generate_geographic_settlements",
    "generate_camera",
    "generate_monitor",
    "profile_datasets",
    "SBERTEncoder",
    "FastTextEncoder",
    "EmbDiEmbedder",
    "TabNetEncoder",
    "TabTransformerEncoder",
    "adjusted_rand_index",
    "clustering_accuracy",
    "normalized_mutual_information",
    "silhouette_score",
    "SchemaInferenceTask",
    "EntityResolutionTask",
    "DomainDiscoveryTask",
    "TaskResult",
    "EXPERIMENTS",
    "Cell",
    "ExperimentPlan",
    "ParallelRunner",
    "plan_experiment",
    "run_experiment",
    "run_plan",
    "run_scalability_study",
    "format_results_table",
    "render_rows",
    "ArtifactCache",
    "configure_cache",
    "get_cache",
    "reset_cache",
    "VectorIndex",
    "create_index",
    "FlatIndex",
    "IVFFlatIndex",
    "HNSWIndex",
    "save_checkpoint",
    "load_checkpoint",
    "read_checkpoint_header",
    "rotate_checkpoint",
    "checkpoint_generations",
    "embed_item",
    "embed_items",
    "MicroBatcher",
    "ModelRegistry",
    "PredictService",
    "create_server",
    "DriftMonitor",
    "StreamSource",
    "incremental_update",
    "WriteAheadLog",
    "recover_checkpoint",
    "recover_model_dir",
    "repair_directory",
    "replay_wal",
]
