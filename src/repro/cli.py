"""Unified command-line interface for the experiment harness.

``python -m repro`` (or the ``repro`` console script) exposes the paper's
evaluation matrix without writing any Python:

``repro list``
    Show every registered experiment (id, kind, title, matrix size).
``repro run <experiment_id>``
    Execute one experiment — tables, ``table1`` profiling, the
    ``ks_density`` analysis or the ``figure4_scalability`` sweep — at a
    chosen ``--scale``, optionally fanning the independent cells out over
    ``--workers`` threads or processes, and render the results as
    ``--format {table,json,csv}``.  ``--graph {dense,sparse}`` selects the
    KNN-graph representation for the graph-based models and
    ``--batch-size`` enables mini-batch deep clustering training.
``repro profile``
    Reproduce the Table 1 dataset-property rows for any dataset subset.
``repro docs``
    Regenerate ``EXPERIMENTS.md`` from the experiment registry and, with
    ``--api``, the ``API.md`` public-API reference (``--check`` verifies
    they are in sync without writing).

Embedding matrices are cached in-process by :mod:`repro.cache`; pass
``--cache-dir`` to also persist them as NPZ files shared across runs and
worker processes.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from .cache import configure_cache, get_cache
from .config import (
    BENCHMARK_SCALE,
    TEST_SCALE,
    DeepClusteringConfig,
    ExperimentScale,
)
from .data.profiles import DatasetProfile
from .exceptions import ReproError
from .experiments import (
    EXPERIMENTS,
    RESULT_FORMATS,
    format_results_table,
    get_experiment,
    render_api_md,
    render_experiments_md,
    render_rows,
    results_to_rows,
    run_experiment,
    write_api_md,
    write_experiments_md,
)

__all__ = ["main", "build_parser"]

_SCALES: dict[str, ExperimentScale] = {
    "test": TEST_SCALE,
    "benchmark": BENCHMARK_SCALE,
}

#: All dataset names ``build_dataset`` understands (profile subcommand).
_DATASET_NAMES = ("webtables", "tus", "musicbrainz", "geographic",
                  "camera", "monitor")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and analyses of 'Deep Clustering "
                    "for Data Cleaning and Integration' (EDBT 2024).")
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser(
        "list", help="list the registered experiments")
    list_cmd.add_argument("--format", choices=RESULT_FORMATS,
                          default="table", help="output format")

    run_cmd = sub.add_parser(
        "run", help="run one experiment (tables, table1, ks_density)")
    run_cmd.add_argument("experiment_id",
                         help="registry id, e.g. table2 (see 'repro list')")
    run_cmd.add_argument("--scale", choices=sorted(_SCALES),
                         default="benchmark",
                         help="dataset scale (default: benchmark)")
    run_cmd.add_argument("--workers", type=int, default=1,
                         help="worker pool size; 0 means one per CPU core "
                              "(default: 1, serial)")
    run_cmd.add_argument("--executor", choices=("thread", "process"),
                         default="thread",
                         help="pool flavour for --workers > 1")
    run_cmd.add_argument("--cache-dir", type=Path, default=None,
                         help="persist embedding artifacts as NPZ files "
                              "in this directory")
    run_cmd.add_argument("--format", choices=RESULT_FORMATS, default="table",
                         help="output format (default: table)")
    run_cmd.add_argument("--datasets", nargs="+", default=None,
                         metavar="NAME", help="restrict to these datasets")
    run_cmd.add_argument("--embeddings", nargs="+", default=None,
                         metavar="NAME", help="restrict to these embeddings")
    run_cmd.add_argument("--algorithms", nargs="+", default=None,
                         metavar="NAME", help="restrict to these algorithms")
    run_cmd.add_argument("--seed", type=int, default=None,
                         help="seed override for datasets and clusterers")
    run_cmd.add_argument("--epochs", type=int, default=None,
                         help="cap the deep clustering (pre-)training "
                              "epochs, for quick smoke runs")
    run_cmd.add_argument("--graph", choices=("dense", "sparse"), default=None,
                         help="KNN-graph path for the graph-based models: "
                              "dense (O(n^2), the paper's layout) or sparse "
                              "(CSR + blocked top-k, O(n*k) memory)")
    run_cmd.add_argument("--batch-size", type=int, default=None,
                         help="mini-batch size for deep clustering "
                              "training (default: full batch)")
    run_cmd.add_argument("--pivot", action="store_true",
                         help="with --format table, render the paper's "
                              "pivoted table layout instead of flat rows")

    profile_cmd = sub.add_parser(
        "profile", help="dataset properties (Table 1)")
    profile_cmd.add_argument("--datasets", nargs="+", default=None,
                             metavar="NAME", choices=_DATASET_NAMES,
                             help=f"subset of {', '.join(_DATASET_NAMES)}")
    profile_cmd.add_argument("--scale", choices=sorted(_SCALES),
                             default="benchmark")
    profile_cmd.add_argument("--seed", type=int, default=None)
    profile_cmd.add_argument("--format", choices=RESULT_FORMATS,
                             default="table")

    docs_cmd = sub.add_parser(
        "docs", help="regenerate EXPERIMENTS.md (and, with --api, API.md)")
    docs_cmd.add_argument("--output", type=Path,
                          default=Path("EXPERIMENTS.md"),
                          help="destination path (default: ./EXPERIMENTS.md)")
    docs_cmd.add_argument("--api", action="store_true",
                          help="also regenerate the API.md public-API "
                               "reference from the package")
    docs_cmd.add_argument("--api-output", type=Path, default=Path("API.md"),
                          help="API reference destination (default: ./API.md)")
    docs_cmd.add_argument("--check", action="store_true",
                          help="exit non-zero if the file(s) are out of "
                               "sync instead of writing them")
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for spec in EXPERIMENTS.values():
        plan_size = (len(spec.datasets) * len(spec.embeddings)
                     * len(spec.algorithms))
        rows.append({
            "id": spec.experiment_id,
            "kind": spec.kind,
            "cells": plan_size or "-",
            "title": spec.title,
        })
    print(render_rows(rows, args.format))
    return 0


def _run_config(args: argparse.Namespace) -> DeepClusteringConfig | None:
    # --graph / --batch-size are NOT baked into a config here: returning a
    # config would override task-specific defaults (entity resolution's
    # longer pre-training).  They travel as partial overrides through
    # run_experiment instead.
    if args.epochs is None:
        return None
    if args.experiment_id == "figure4_scalability":
        # Match run_scalability_study's short default schedule so --epochs
        # caps it instead of resurrecting the full 30/50 schedule.
        config = DeepClusteringConfig(pretrain_epochs=10, train_epochs=10)
    else:
        config = DeepClusteringConfig()
    return config.with_updates(
        pretrain_epochs=min(config.pretrain_epochs, args.epochs),
        train_epochs=min(config.train_epochs, args.epochs))


def _cmd_run(args: argparse.Namespace) -> int:
    if args.cache_dir is not None:
        configure_cache(cache_dir=args.cache_dir)
    spec = get_experiment(args.experiment_id)
    if spec.kind == "figure":
        raise ReproError(
            f"{args.experiment_id!r} is a figure experiment; use the "
            "benchmarks harness (pytest benchmarks/ --benchmark-only) or "
            "the repro.experiments figure helpers")
    scale = _SCALES[args.scale]
    overrides = {name: tuple(value) if value else None
                 for name, value in (("datasets", args.datasets),
                                     ("embeddings", args.embeddings),
                                     ("algorithms", args.algorithms))}
    workers = None if args.workers == 0 else args.workers
    result = run_experiment(
        args.experiment_id, scale=scale, config=_run_config(args),
        graph=args.graph, batch_size=args.batch_size,
        seed=args.seed, workers=workers, executor=args.executor,
        **overrides)

    if spec.experiment_id == "table1":
        rows = [profile.as_row() for profile in result]
        print(render_rows(rows, args.format, title=spec.title))
    elif spec.experiment_id == "ks_density":
        row = {
            "mean_KS_statistic": round(result.mean_statistic, 4),
            "mean_p_value": round(result.mean_p_value, 4),
            "n_features": result.n_features,
            "n_pairs": result.n_pairs,
            "same_distribution": result.same_distribution,
        }
        print(render_rows([row], args.format, title=spec.title))
    elif spec.experiment_id == "figure4_scalability":
        print(render_rows([point.as_row() for point in result],
                          args.format, title=spec.title))
    elif args.pivot and args.format == "table":
        print(format_results_table(result, title=spec.title))
    else:
        print(render_rows(results_to_rows(result), args.format,
                          title=spec.title))

    stats = get_cache().stats
    if args.format == "table" and (stats.hits or stats.computes):
        print(f"\n[cache] computes={stats.computes} hits={stats.hits} "
              f"disk_hits={stats.disk_hits}", file=sys.stderr)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    profiles: list[DatasetProfile] = run_experiment(
        "table1", scale=_SCALES[args.scale],
        datasets=tuple(args.datasets) if args.datasets else None,
        seed=args.seed)
    print(render_rows([profile.as_row() for profile in profiles],
                      args.format, title=get_experiment("table1").title))
    return 0


def _cmd_docs(args: argparse.Namespace) -> int:
    targets = [(args.output, render_experiments_md, write_experiments_md,
                "the experiment registry", "python -m repro docs")]
    if args.api:
        targets.append((args.api_output, render_api_md, write_api_md,
                        "the package's public API",
                        "python -m repro docs --api"))
    for path, render, write, source, command in targets:
        if args.check:
            actual = (path.read_text(encoding="utf-8")
                      if path.exists() else None)
            if actual != render():
                print(f"{path} is out of sync with {source}; run "
                      f"'{command}' to regenerate it", file=sys.stderr)
                return 1
            print(f"{path} is in sync")
        else:
            print(f"wrote {write(path)}")
    return 0


_COMMANDS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "profile": _cmd_profile,
    "docs": _cmd_docs,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. `repro run ... | head`); exit
        # quietly like a well-behaved Unix tool.  Redirect stdout to
        # devnull so the interpreter's final flush does not raise again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
