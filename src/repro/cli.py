"""Unified command-line interface for the experiment harness.

``python -m repro`` (or the ``repro`` console script) exposes the paper's
evaluation matrix without writing any Python:

``repro list``
    Show every registered experiment (id, kind, title, matrix size).
``repro run <experiment_id>``
    Execute one experiment — tables, ``table1`` profiling, the
    ``ks_density`` analysis or the ``figure4_scalability`` sweep — at a
    chosen ``--scale``, optionally fanning the independent cells out over
    ``--workers`` threads or processes, and render the results as
    ``--format {table,json,csv}``.  ``--graph {dense,sparse}`` selects the
    KNN-graph representation for the graph-based models and
    ``--batch-size`` enables mini-batch deep clustering training.
``repro profile``
    Reproduce the Table 1 dataset-property rows for any dataset subset.
``repro docs``
    Regenerate ``EXPERIMENTS.md`` from the experiment registry and, with
    ``--api``, the ``API.md`` public-API reference (``--check`` verifies
    they are in sync without writing).
``repro train <task>``
    Fit one (dataset, embedding, algorithm) cell and persist the fitted
    model as an NPZ checkpoint (``--save``), ready for serving.
``repro serve``
    Serve a directory of checkpoints over a stdlib JSON HTTP API with
    micro-batched out-of-sample prediction (``GET /models``,
    ``GET /healthz``, ``POST /models/{name}/predict``).

Embedding matrices are cached in-process by :mod:`repro.cache`; pass
``--cache-dir`` to also persist them as NPZ files shared across runs and
worker processes.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from ._version import __version__
from .cache import configure_cache, get_cache
from .config import (
    BENCHMARK_SCALE,
    TEST_SCALE,
    DeepClusteringConfig,
    ExperimentScale,
)
from .data.profiles import DatasetProfile
from .exceptions import ReproError
from .experiments import (
    EXPERIMENTS,
    RESULT_FORMATS,
    format_results_table,
    get_experiment,
    render_api_md,
    render_experiments_md,
    render_rows,
    results_to_rows,
    run_experiment,
    write_api_md,
    write_experiments_md,
)

__all__ = ["main", "build_parser"]

_SCALES: dict[str, ExperimentScale] = {
    "test": TEST_SCALE,
    "benchmark": BENCHMARK_SCALE,
}

#: All dataset names ``build_dataset`` understands (profile subcommand).
_DATASET_NAMES = ("webtables", "tus", "musicbrainz", "geographic",
                  "camera", "monitor")

#: Datasets each task pipeline trains on (train subcommand).
_TASK_DATASETS = {
    "schema_inference": ("webtables", "tus"),
    "entity_resolution": ("musicbrainz", "geographic"),
    "domain_discovery": ("camera", "monitor"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and analyses of 'Deep Clustering "
                    "for Data Cleaning and Integration' (EDBT 2024).")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser(
        "list", help="list the registered experiments")
    list_cmd.add_argument("--format", choices=RESULT_FORMATS,
                          default="table", help="output format")

    run_cmd = sub.add_parser(
        "run", help="run one experiment (tables, table1, ks_density)")
    run_cmd.add_argument("experiment_id",
                         help="registry id, e.g. table2 (see 'repro list')")
    run_cmd.add_argument("--scale", choices=sorted(_SCALES),
                         default="benchmark",
                         help="dataset scale (default: benchmark)")
    run_cmd.add_argument("--workers", type=int, default=1,
                         help="worker pool size; 0 means one per CPU core "
                              "(default: 1, serial)")
    run_cmd.add_argument("--executor", choices=("thread", "process"),
                         default="thread",
                         help="pool flavour for --workers > 1")
    run_cmd.add_argument("--cache-dir", type=Path, default=None,
                         help="persist embedding artifacts as NPZ files "
                              "in this directory")
    run_cmd.add_argument("--format", choices=RESULT_FORMATS, default="table",
                         help="output format (default: table)")
    run_cmd.add_argument("--datasets", nargs="+", default=None,
                         metavar="NAME", help="restrict to these datasets")
    run_cmd.add_argument("--embeddings", nargs="+", default=None,
                         metavar="NAME", help="restrict to these embeddings")
    run_cmd.add_argument("--algorithms", nargs="+", default=None,
                         metavar="NAME", help="restrict to these algorithms")
    run_cmd.add_argument("--seed", type=int, default=None,
                         help="seed override for datasets and clusterers")
    run_cmd.add_argument("--epochs", type=int, default=None,
                         help="cap the deep clustering (pre-)training "
                              "epochs, for quick smoke runs")
    run_cmd.add_argument("--graph", choices=("dense", "sparse"), default=None,
                         help="KNN-graph path for the graph-based models: "
                              "dense (O(n^2), the paper's layout) or sparse "
                              "(CSR + blocked top-k, O(n*k) memory)")
    run_cmd.add_argument("--batch-size", type=int, default=None,
                         help="mini-batch size for deep clustering "
                              "training (default: full batch)")
    run_cmd.add_argument("--pivot", action="store_true",
                         help="with --format table, render the paper's "
                              "pivoted table layout instead of flat rows")
    run_cmd.add_argument("--save-dir", type=Path, default=None,
                         help="persist every cell's fitted model as an NPZ "
                              "checkpoint in this directory (servable with "
                              "'repro serve --model-dir')")

    profile_cmd = sub.add_parser(
        "profile", help="dataset properties (Table 1)")
    profile_cmd.add_argument("--datasets", nargs="+", default=None,
                             metavar="NAME", choices=_DATASET_NAMES,
                             help=f"subset of {', '.join(_DATASET_NAMES)}")
    profile_cmd.add_argument("--scale", choices=sorted(_SCALES),
                             default="benchmark")
    profile_cmd.add_argument("--seed", type=int, default=None)
    profile_cmd.add_argument("--format", choices=RESULT_FORMATS,
                             default="table")

    docs_cmd = sub.add_parser(
        "docs", help="regenerate EXPERIMENTS.md (and, with --api, API.md)")
    docs_cmd.add_argument("--output", type=Path,
                          default=Path("EXPERIMENTS.md"),
                          help="destination path (default: ./EXPERIMENTS.md)")
    docs_cmd.add_argument("--api", action="store_true",
                          help="also regenerate the API.md public-API "
                               "reference from the package")
    docs_cmd.add_argument("--api-output", type=Path, default=Path("API.md"),
                          help="API reference destination (default: ./API.md)")
    docs_cmd.add_argument("--check", action="store_true",
                          help="exit non-zero if the file(s) are out of "
                               "sync instead of writing them")

    train_cmd = sub.add_parser(
        "train", help="fit one model and save it as a servable checkpoint")
    train_cmd.add_argument("task", choices=sorted(_TASK_DATASETS),
                           help="task pipeline to train")
    train_cmd.add_argument("--save", type=Path, required=True,
                           metavar="PATH",
                           help="checkpoint destination (NPZ)")
    train_cmd.add_argument("--dataset", default=None, metavar="NAME",
                           help="dataset to train on (default: the task's "
                                "first dataset)")
    train_cmd.add_argument("--embedding", default="sbert", metavar="NAME",
                           help="embedding method (default: sbert)")
    train_cmd.add_argument("--algorithm", default="kmeans", metavar="NAME",
                           help="clustering algorithm (default: kmeans)")
    train_cmd.add_argument("--scale", choices=sorted(_SCALES),
                           default="benchmark")
    train_cmd.add_argument("--seed", type=int, default=None)
    train_cmd.add_argument("--epochs", type=int, default=None,
                           help="cap the deep clustering (pre-)training "
                                "epochs, for quick smoke runs")
    train_cmd.add_argument("--cache-dir", type=Path, default=None,
                           help="persist embedding artifacts as NPZ files "
                                "in this directory")
    train_cmd.add_argument("--format", choices=RESULT_FORMATS,
                           default="table", help="summary output format")

    serve_cmd = sub.add_parser(
        "serve", help="serve a directory of checkpoints over HTTP")
    serve_cmd.add_argument("--model-dir", type=Path, required=True,
                           help="directory of NPZ checkpoints "
                                "(from 'repro train --save' or "
                                "'repro run --save-dir')")
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=8000,
                           help="listen port; 0 binds an ephemeral port "
                                "(default: 8000)")
    serve_cmd.add_argument("--max-loaded", type=int, default=4,
                           help="LRU bound on models resident in memory "
                                "(default: 4)")
    serve_cmd.add_argument("--batch-rows", type=int, default=256,
                           help="micro-batch row cap per forward pass "
                                "(default: 256)")
    serve_cmd.add_argument("--batch-delay-ms", type=float, default=2.0,
                           help="micro-batch linger in milliseconds "
                                "(default: 2.0)")
    serve_cmd.add_argument("--no-batching", action="store_true",
                           help="disable micro-batching (one forward pass "
                                "per request)")
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for spec in EXPERIMENTS.values():
        plan_size = (len(spec.datasets) * len(spec.embeddings)
                     * len(spec.algorithms))
        rows.append({
            "id": spec.experiment_id,
            "kind": spec.kind,
            "cells": plan_size or "-",
            "title": spec.title,
        })
    print(render_rows(rows, args.format))
    return 0


def _run_config(args: argparse.Namespace) -> DeepClusteringConfig | None:
    # --graph / --batch-size are NOT baked into a config here: returning a
    # config would override task-specific defaults (entity resolution's
    # longer pre-training).  They travel as partial overrides through
    # run_experiment instead.
    if args.epochs is None:
        return None
    if getattr(args, "experiment_id", None) == "figure4_scalability":
        # Match run_scalability_study's short default schedule so --epochs
        # caps it instead of resurrecting the full 30/50 schedule.
        config = DeepClusteringConfig(pretrain_epochs=10, train_epochs=10)
    else:
        config = DeepClusteringConfig()
    return config.with_updates(
        pretrain_epochs=min(config.pretrain_epochs, args.epochs),
        train_epochs=min(config.train_epochs, args.epochs))


def _cmd_run(args: argparse.Namespace) -> int:
    if args.cache_dir is not None:
        configure_cache(cache_dir=args.cache_dir)
    spec = get_experiment(args.experiment_id)
    if spec.kind == "figure":
        raise ReproError(
            f"{args.experiment_id!r} is a figure experiment; use the "
            "benchmarks harness (pytest benchmarks/ --benchmark-only) or "
            "the repro.experiments figure helpers")
    scale = _SCALES[args.scale]
    overrides = {name: tuple(value) if value else None
                 for name, value in (("datasets", args.datasets),
                                     ("embeddings", args.embeddings),
                                     ("algorithms", args.algorithms))}
    workers = None if args.workers == 0 else args.workers
    result = run_experiment(
        args.experiment_id, scale=scale, config=_run_config(args),
        graph=args.graph, batch_size=args.batch_size,
        seed=args.seed, workers=workers, executor=args.executor,
        save_dir=args.save_dir, **overrides)

    if spec.experiment_id == "table1":
        rows = [profile.as_row() for profile in result]
        print(render_rows(rows, args.format, title=spec.title))
    elif spec.experiment_id == "ks_density":
        row = {
            "mean_KS_statistic": round(result.mean_statistic, 4),
            "mean_p_value": round(result.mean_p_value, 4),
            "n_features": result.n_features,
            "n_pairs": result.n_pairs,
            "same_distribution": result.same_distribution,
        }
        print(render_rows([row], args.format, title=spec.title))
    elif spec.experiment_id == "figure4_scalability":
        print(render_rows([point.as_row() for point in result],
                          args.format, title=spec.title))
    elif args.pivot and args.format == "table":
        print(format_results_table(result, title=spec.title))
    else:
        print(render_rows(results_to_rows(result), args.format,
                          title=spec.title))

    stats = get_cache().stats
    if args.format == "table" and (stats.hits or stats.computes):
        print(f"\n[cache] computes={stats.computes} hits={stats.hits} "
              f"disk_hits={stats.disk_hits}", file=sys.stderr)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    profiles: list[DatasetProfile] = run_experiment(
        "table1", scale=_SCALES[args.scale],
        datasets=tuple(args.datasets) if args.datasets else None,
        seed=args.seed)
    print(render_rows([profile.as_row() for profile in profiles],
                      args.format, title=get_experiment("table1").title))
    return 0


def _cmd_docs(args: argparse.Namespace) -> int:
    targets = [(args.output, render_experiments_md, write_experiments_md,
                "the experiment registry", "python -m repro docs")]
    if args.api:
        targets.append((args.api_output, render_api_md, write_api_md,
                        "the package's public API",
                        "python -m repro docs --api"))
    for path, render, write, source, command in targets:
        if args.check:
            actual = (path.read_text(encoding="utf-8")
                      if path.exists() else None)
            if actual != render():
                print(f"{path} is out of sync with {source}; run "
                      f"'{command}' to regenerate it", file=sys.stderr)
                return 1
            print(f"{path} is in sync")
        else:
            print(f"wrote {write(path)}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from .experiments.runner import build_dataset
    from .serialize import read_checkpoint_header
    from .tasks import (
        DomainDiscoveryTask,
        EntityResolutionTask,
        SchemaInferenceTask,
    )

    if args.cache_dir is not None:
        configure_cache(cache_dir=args.cache_dir)
    datasets = _TASK_DATASETS[args.task]
    dataset_name = args.dataset or datasets[0]
    if dataset_name not in datasets:
        raise ReproError(
            f"dataset {dataset_name!r} does not belong to task {args.task!r} "
            f"(expected one of {datasets})")
    task_cls = {
        "schema_inference": SchemaInferenceTask,
        "entity_resolution": EntityResolutionTask,
        "domain_discovery": DomainDiscoveryTask,
    }[args.task]

    # Same semantics as `repro run --epochs`: cap the default schedule.
    config = _run_config(args)
    dataset = build_dataset(dataset_name, _SCALES[args.scale], seed=args.seed)
    task = task_cls(dataset, config=config)

    from .tasks.base import evaluate_clustering

    X = task.embed(args.embedding, seed=args.seed)
    result = evaluate_clustering(
        X, dataset.labels, algorithm=args.algorithm,
        dataset=dataset.name, task=task.task_name,
        embedding=args.embedding, config=task.resolved_config(),
        seed=args.seed, save_path=args.save)

    print(render_rows([result.as_row()], args.format,
                      title=f"trained {args.algorithm} on "
                            f"{dataset_name}/{args.embedding}"))
    header = read_checkpoint_header(args.save)
    print(f"saved checkpoint {args.save} "
          f"(class={header['class']}, format v{header['version']})",
          file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import create_server

    server = create_server(
        args.model_dir, host=args.host, port=args.port,
        max_loaded=args.max_loaded, max_batch_rows=args.batch_rows,
        max_delay=args.batch_delay_ms / 1000.0,
        micro_batching=not args.no_batching)
    host, port = server.server_address[:2]
    names = server.service.registry.names()
    print(f"serving {len(names)} model(s) {names} from {args.model_dir} "
          f"on http://{host}:{port} "
          f"(micro-batching {'off' if args.no_batching else 'on'})",
          file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.server_close()
    return 0


_COMMANDS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "profile": _cmd_profile,
    "docs": _cmd_docs,
    "train": _cmd_train,
    "serve": _cmd_serve,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. `repro run ... | head`); exit
        # quietly like a well-behaved Unix tool.  Redirect stdout to
        # devnull so the interpreter's final flush does not raise again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
