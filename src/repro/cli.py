"""Unified command-line interface for the experiment harness.

``python -m repro`` (or the ``repro`` console script) exposes the paper's
evaluation matrix without writing any Python:

``repro list``
    Show every registered experiment (id, kind, title, matrix size).
``repro run <experiment_id>``
    Execute one experiment — tables, ``table1`` profiling, the
    ``ks_density`` analysis or the ``figure4_scalability`` sweep — at a
    chosen ``--scale``, optionally fanning the independent cells out over
    ``--workers`` threads or processes, and render the results as
    ``--format {table,json,csv}``.  ``--graph {dense,sparse}`` selects the
    KNN-graph representation for the graph-based models and
    ``--batch-size`` enables mini-batch deep clustering training.
``repro export <experiment_id>``
    Run one experiment through the same harness as ``repro run`` and
    serialise its result rows with a pluggable :mod:`repro.export`
    exporter (``--export-format {csv,jsonl,npz}``) to ``--output`` or
    stdout — the offline twin of ``GET /v1/jobs/{id}/result?format=...``.
``repro profile``
    Reproduce the Table 1 dataset-property rows for any dataset subset.
``repro docs``
    Regenerate ``EXPERIMENTS.md`` from the experiment registry and, with
    ``--api``, the ``API.md`` public-API reference (``--check`` verifies
    they are in sync without writing).
``repro train <task>``
    Fit one (dataset, embedding, algorithm) cell and persist the fitted
    model as an NPZ checkpoint (``--save``), ready for serving.
``repro serve``
    Serve a directory of checkpoints over a stdlib JSON HTTP API,
    versioned under ``/v1`` (``GET /v1/models``, ``GET /v1/healthz``,
    ``POST /v1/models/{name}/predict``, async experiment jobs via
    ``POST /v1/jobs``), with micro-batched out-of-sample prediction and,
    by default, hot reload: checkpoints rotated in place are swapped in
    off the request path with zero failed predicts.
``repro stream <task>``
    Replay a dataset as arrival batches (optionally with injected drift)
    and keep the model current with incremental updates, refitting only
    when the drift monitor demands it; ``--save`` rotates a servable
    checkpoint generation per step.
``repro update <checkpoint>``
    Absorb a batch of new data into a saved checkpoint in place
    (``partial_fit`` / warm-start fine-tuning) and rotate the file to its
    next generation — a running ``repro serve`` picks it up live.
``repro repair <dir>``
    Salvage a damaged model directory: delete orphaned temp files,
    restore corrupt or missing live checkpoints from their newest valid
    archived generation, truncate torn WAL segments at the last good
    record, and (``--recheckpoint``) replay pending journal suffixes into
    fresh generations.  ``--dry-run`` reports without touching anything.
    Offline tool: stop ingestion/serving writers first (recent ``*.tmp``
    files are spared as a guard, ``--tmp-grace 0`` forces).
``repro search <task>``
    Query a saved :mod:`repro.index` vector index (from ``repro train
    --with-index`` or ``repro stream --with-index``) with a raw JSON item:
    embeds the item in the index's training space and prints the top-k
    nearest corpus items with ids and distances.
``repro bench <name>``
    Run one benchmark script and diff its fresh ``BENCH_*.json`` against
    the committed baseline via ``benchmarks/compare_bench.py`` — the CI
    perf-regression gate, reproducible locally in one command.
``repro top``
    Live terminal dashboard over a running ``repro serve`` endpoint
    (single server or pool router): per-endpoint rps and p50/p99, per-
    stage latency (queue wait, batch forward, embed, WAL append/fsync),
    inflight requests, 429s, failovers, respawns and reload generations,
    refreshed every ``--interval`` seconds (``--once`` for one frame).

Embedding matrices are cached in-process by :mod:`repro.cache`; pass
``--cache-dir`` to also persist them as NPZ files shared across runs and
worker processes.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from ._version import __version__
from .cache import configure_cache, get_cache
from .config import (
    BENCHMARK_SCALE,
    TEST_SCALE,
    DeepClusteringConfig,
    ExperimentScale,
)
from .data.profiles import DatasetProfile
from .exceptions import ReproError
from .index.base import INDEX_BACKENDS
from .experiments import (
    EXPERIMENTS,
    NON_MATRIX_RESULTS,
    RESULT_FORMATS,
    experiment_result_rows,
    format_results_table,
    get_experiment,
    render_api_md,
    render_experiments_md,
    render_rows,
    run_experiment,
    write_api_md,
    write_experiments_md,
)

__all__ = ["main", "build_parser"]

_SCALES: dict[str, ExperimentScale] = {
    "test": TEST_SCALE,
    "benchmark": BENCHMARK_SCALE,
}

#: All dataset names ``build_dataset`` understands (profile subcommand).
_DATASET_NAMES = ("webtables", "tus", "musicbrainz", "geographic",
                  "camera", "monitor")

#: Datasets each task pipeline trains on (train subcommand).
_TASK_DATASETS = {
    "schema_inference": ("webtables", "tus"),
    "entity_resolution": ("musicbrainz", "geographic"),
    "domain_discovery": ("camera", "monitor"),
}

#: Vector-index backends the CLI exposes (one definition: repro.index).
_INDEX_BACKENDS = INDEX_BACKENDS

#: Bench subcommand: name -> (pytest target, BENCH json it writes).
_BENCHES = {
    "index": ("bench_index.py", "BENCH_index.json"),
    "serve": ("bench_serve.py", "BENCH_serve.json"),
    "stream": ("bench_stream.py", "BENCH_stream.json"),
    "figure4_scalability": (
        "bench_figure4_scalability.py::test_figure4_sparse_scaling",
        "BENCH_figure4_scalability.json"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and analyses of 'Deep Clustering "
                    "for Data Cleaning and Integration' (EDBT 2024).")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser(
        "list", help="list the registered experiments")
    list_cmd.add_argument("--format", choices=RESULT_FORMATS,
                          default="table", help="output format")

    run_cmd = sub.add_parser(
        "run", help="run one experiment (tables, table1, ks_density)")
    run_cmd.add_argument("experiment_id",
                         help="registry id, e.g. table2 (see 'repro list')")
    run_cmd.add_argument("--scale", choices=sorted(_SCALES),
                         default="benchmark",
                         help="dataset scale (default: benchmark)")
    run_cmd.add_argument("--workers", type=int, default=1,
                         help="worker pool size; 0 means one per CPU core "
                              "(default: 1, serial)")
    run_cmd.add_argument("--executor", choices=("thread", "process"),
                         default="thread",
                         help="pool flavour for --workers > 1")
    run_cmd.add_argument("--cache-dir", type=Path, default=None,
                         help="persist embedding artifacts as NPZ files "
                              "in this directory")
    run_cmd.add_argument("--format", choices=RESULT_FORMATS, default="table",
                         help="output format (default: table)")
    run_cmd.add_argument("--datasets", nargs="+", default=None,
                         metavar="NAME", help="restrict to these datasets")
    run_cmd.add_argument("--embeddings", nargs="+", default=None,
                         metavar="NAME", help="restrict to these embeddings")
    run_cmd.add_argument("--algorithms", nargs="+", default=None,
                         metavar="NAME", help="restrict to these algorithms")
    run_cmd.add_argument("--seed", type=int, default=None,
                         help="seed override for datasets and clusterers")
    run_cmd.add_argument("--epochs", type=int, default=None,
                         help="cap the deep clustering (pre-)training "
                              "epochs, for quick smoke runs")
    run_cmd.add_argument("--graph", choices=("dense", "sparse"), default=None,
                         help="KNN-graph path for the graph-based models: "
                              "dense (O(n^2), the paper's layout) or sparse "
                              "(CSR + blocked top-k, O(n*k) memory)")
    run_cmd.add_argument("--graph-backend",
                         choices=("exact",) + _INDEX_BACKENDS, default=None,
                         help="top-k search behind the sparse graph: exact "
                              "(blocked scan) or a repro.index ANN backend "
                              "(sub-quadratic construction)")
    run_cmd.add_argument("--batch-size", type=int, default=None,
                         help="mini-batch size for deep clustering "
                              "training (default: full batch)")
    run_cmd.add_argument("--pivot", action="store_true",
                         help="with --format table, render the paper's "
                              "pivoted table layout instead of flat rows")
    run_cmd.add_argument("--save-dir", type=Path, default=None,
                         help="persist every cell's fitted model as an NPZ "
                              "checkpoint in this directory (servable with "
                              "'repro serve --model-dir')")

    profile_cmd = sub.add_parser(
        "profile", help="dataset properties (Table 1)")
    profile_cmd.add_argument("--datasets", nargs="+", default=None,
                             metavar="NAME", choices=_DATASET_NAMES,
                             help=f"subset of {', '.join(_DATASET_NAMES)}")
    profile_cmd.add_argument("--scale", choices=sorted(_SCALES),
                             default="benchmark")
    profile_cmd.add_argument("--seed", type=int, default=None)
    profile_cmd.add_argument("--format", choices=RESULT_FORMATS,
                             default="table")

    docs_cmd = sub.add_parser(
        "docs", help="regenerate EXPERIMENTS.md (and, with --api, API.md)")
    docs_cmd.add_argument("--output", type=Path,
                          default=Path("EXPERIMENTS.md"),
                          help="destination path (default: ./EXPERIMENTS.md)")
    docs_cmd.add_argument("--api", action="store_true",
                          help="also regenerate the API.md public-API "
                               "reference from the package")
    docs_cmd.add_argument("--api-output", type=Path, default=Path("API.md"),
                          help="API reference destination (default: ./API.md)")
    docs_cmd.add_argument("--check", action="store_true",
                          help="exit non-zero if the file(s) are out of "
                               "sync instead of writing them")

    train_cmd = sub.add_parser(
        "train", help="fit one model and save it as a servable checkpoint")
    train_cmd.add_argument("task", choices=sorted(_TASK_DATASETS),
                           help="task pipeline to train")
    train_cmd.add_argument("--save", type=Path, required=True,
                           metavar="PATH",
                           help="checkpoint destination (NPZ)")
    train_cmd.add_argument("--dataset", default=None, metavar="NAME",
                           help="dataset to train on (default: the task's "
                                "first dataset)")
    train_cmd.add_argument("--embedding", default="sbert", metavar="NAME",
                           help="embedding method (default: sbert)")
    train_cmd.add_argument("--algorithm", default="kmeans", metavar="NAME",
                           help="clustering algorithm (default: kmeans)")
    train_cmd.add_argument("--scale", choices=sorted(_SCALES),
                           default="benchmark")
    train_cmd.add_argument("--seed", type=int, default=None)
    train_cmd.add_argument("--epochs", type=int, default=None,
                           help="cap the deep clustering (pre-)training "
                                "epochs, for quick smoke runs")
    train_cmd.add_argument("--cache-dir", type=Path, default=None,
                           help="persist embedding artifacts as NPZ files "
                                "in this directory")
    train_cmd.add_argument("--format", choices=RESULT_FORMATS,
                           default="table", help="summary output format")
    train_cmd.add_argument("--with-index", nargs="?", const="ivf",
                           choices=_INDEX_BACKENDS, default=None,
                           metavar="BACKEND",
                           help="also build a similarity-search index over "
                                "the training embeddings and save it next "
                                "to the checkpoint as <stem>.index.npz "
                                "(backend: flat, ivf, hnsw or ivfpq; bare "
                                "flag means ivf)")

    serve_cmd = sub.add_parser(
        "serve", help="serve a directory of checkpoints over HTTP")
    serve_cmd.add_argument("--model-dir", type=Path, required=True,
                           help="directory of NPZ checkpoints "
                                "(from 'repro train --save' or "
                                "'repro run --save-dir')")
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=8000,
                           help="listen port; 0 binds an ephemeral port "
                                "(default: 8000)")
    serve_cmd.add_argument("--max-loaded", type=int, default=4,
                           help="LRU bound on models resident in memory "
                                "(default: 4)")
    serve_cmd.add_argument("--batch-rows", type=int, default=256,
                           help="micro-batch row cap per forward pass "
                                "(default: 256)")
    serve_cmd.add_argument("--batch-delay-ms", type=float, default=2.0,
                           help="micro-batch linger in milliseconds "
                                "(default: 2.0)")
    serve_cmd.add_argument("--no-batching", action="store_true",
                           help="disable micro-batching (one forward pass "
                                "per request)")
    serve_cmd.add_argument("--reload-ms", type=float, default=1000.0,
                           help="poll interval for hot-reloading rotated "
                                "checkpoints, in milliseconds "
                                "(default: 1000)")
    serve_cmd.add_argument("--no-hot-reload", action="store_true",
                           help="serve each loaded checkpoint as-is, "
                                "ignoring newer generations on disk")
    serve_cmd.add_argument("--wal-dir", type=Path, default=None,
                           metavar="DIR",
                           help="write-ahead-log root: replay any journal "
                                "suffix newer than each checkpoint's "
                                "watermark before serving (crash recovery)")
    serve_cmd.add_argument("--workers", type=int, default=1, metavar="N",
                           help="worker processes; N > 1 starts the "
                                "sharded pre-fork pool behind a router "
                                "(checkpoints shared zero-copy, requests "
                                "sharded by model name, 429+Retry-After "
                                "on overload) (default: 1)")
    serve_cmd.add_argument("--max-inflight", type=int, default=64,
                           metavar="N",
                           help="pool mode: per-worker admission bound — "
                                "requests beyond N concurrently in flight "
                                "on a worker are answered 429 "
                                "(default: 64)")
    serve_cmd.add_argument("--no-jobs", action="store_true",
                           help="disable the async jobs API "
                                "(POST /v1/jobs)")
    serve_cmd.add_argument("--jobs-dir", type=Path, default=None,
                           metavar="DIR",
                           help="directory for crash-safe job state files "
                                "(default: <model-dir>/jobs)")
    serve_cmd.add_argument("--job-workers", type=int, default=1,
                           metavar="N",
                           help="concurrent job executions (default: 1)")

    export_cmd = sub.add_parser(
        "export", help="run an experiment and write its result rows in an "
                       "exporter format (csv, jsonl, npz)")
    export_cmd.add_argument("experiment_id",
                            help="registry id, e.g. table2 (see "
                                 "'repro list'); same harness as "
                                 "'repro run'")
    export_cmd.add_argument("--export-format", default="csv",
                            choices=("csv", "jsonl", "npz"),
                            help="exporter to serialise the result rows "
                                 "with (default: csv)")
    export_cmd.add_argument("--output", type=Path, default=None,
                            metavar="FILE",
                            help="output file (default: stdout; npz "
                                 "requires --output or a redirect)")
    export_cmd.add_argument("--scale", choices=("test", "benchmark"),
                            default="benchmark",
                            help="experiment scale (default: benchmark)")
    export_cmd.add_argument("--datasets", nargs="+", default=None,
                            metavar="NAME")
    export_cmd.add_argument("--embeddings", nargs="+", default=None,
                            metavar="NAME")
    export_cmd.add_argument("--algorithms", nargs="+", default=None,
                            metavar="NAME")
    export_cmd.add_argument("--seed", type=int, default=None)
    export_cmd.add_argument("--epochs", type=int, default=None,
                            help="cap pre-train/train epochs (smoke runs)")
    export_cmd.add_argument("--workers", type=int, default=1, metavar="N",
                            help="cell parallelism, as in 'repro run' "
                                 "(default: 1)")
    export_cmd.add_argument("--cache-dir", type=Path, default=None,
                            metavar="DIR",
                            help="persist embeddings as NPZ files shared "
                                 "across runs")

    stream_cmd = sub.add_parser(
        "stream", help="replay a dataset as arrival batches with "
                       "incremental model updates")
    stream_cmd.add_argument("task", choices=sorted(_TASK_DATASETS),
                            help="task pipeline to stream")
    stream_cmd.add_argument("--dataset", default=None, metavar="NAME",
                            help="dataset to replay (default: the task's "
                                 "first dataset)")
    stream_cmd.add_argument("--embedding", default="sbert", metavar="NAME",
                            help="per-item stateless embedding "
                                 "(default: sbert)")
    stream_cmd.add_argument("--algorithm", default="kmeans", metavar="NAME",
                            help="clustering algorithm (default: kmeans)")
    stream_cmd.add_argument("--batches", type=int, default=4,
                            help="number of arrival batches after the "
                                 "initial fit (default: 4)")
    stream_cmd.add_argument("--drift", default=None,
                            choices=("none", "abbreviate", "typo", "case",
                                     "drop"),
                            help="corruption flavour injected with growing "
                                 "intensity over the batches")
    stream_cmd.add_argument("--drift-rate", type=float, default=0.5,
                            help="final per-item corruption probability "
                                 "(default: 0.5)")
    stream_cmd.add_argument("--initial-fraction", type=float, default=0.5,
                            help="share of items in the initial fit "
                                 "(default: 0.5)")
    stream_cmd.add_argument("--scale", choices=sorted(_SCALES),
                            default="benchmark")
    stream_cmd.add_argument("--seed", type=int, default=None)
    stream_cmd.add_argument("--epochs", type=int, default=None,
                            help="cap the deep clustering (pre-)training "
                                 "epochs, for quick smoke runs")
    stream_cmd.add_argument("--save", type=Path, default=None, metavar="PATH",
                            help="rotate a servable checkpoint generation "
                                 "here after every step (hot-reloadable by "
                                 "'repro serve')")
    stream_cmd.add_argument("--keep-generations", type=int, default=3,
                            help="archived checkpoint generations to retain "
                                 "(default: 3)")
    stream_cmd.add_argument("--cache-dir", type=Path, default=None,
                            help="persist embedding artifacts as NPZ files "
                                 "in this directory")
    stream_cmd.add_argument("--format", choices=RESULT_FORMATS,
                            default="table", help="output format")
    stream_cmd.add_argument("--with-index", nargs="?", const="ivf",
                            choices=_INDEX_BACKENDS, default=None,
                            metavar="BACKEND",
                            help="with --save: maintain a similarity-search "
                                 "index over everything streamed (built on "
                                 "the initial fit, extended incrementally "
                                 "per batch) and rotate it alongside the "
                                 "model as <stem>.index.npz")
    stream_cmd.add_argument("--wal-dir", type=Path, default=None,
                            metavar="DIR",
                            help="with --save: journal every batch to a "
                                 "write-ahead log before applying it, so a "
                                 "crash loses nothing ('repro serve "
                                 "--wal-dir' replays the suffix)")
    stream_cmd.add_argument("--stream-name", default="stream",
                            metavar="NAME",
                            help="WAL namespace for this ingestion stream "
                                 "(default: stream)")

    update_cmd = sub.add_parser(
        "update", help="absorb new data into a saved checkpoint in place")
    update_cmd.add_argument("checkpoint", type=Path,
                            help="NPZ checkpoint to update (rotated to its "
                                 "next generation)")
    update_cmd.add_argument("--data", required=True, metavar="NAME",
                            help="dataset generator providing the new batch "
                                 "(must belong to the checkpoint's task)")
    update_cmd.add_argument("--scale", choices=sorted(_SCALES),
                            default="test",
                            help="scale of the generated batch "
                                 "(default: test)")
    update_cmd.add_argument("--seed", type=int, default=None,
                            help="seed for the generated batch (default: a "
                                 "different seed than training, so the "
                                 "batch is genuinely new data)")
    update_cmd.add_argument("--epochs", type=int, default=2,
                            help="warm-start fine-tuning epochs for deep "
                                 "models (default: 2)")
    update_cmd.add_argument("--keep-generations", type=int, default=3,
                            help="archived checkpoint generations to retain "
                                 "(default: 3)")
    update_cmd.add_argument("--format", choices=RESULT_FORMATS,
                            default="table", help="output format")
    update_cmd.add_argument("--wal-dir", type=Path, default=None,
                            metavar="DIR",
                            help="journal the batch to the checkpoint's "
                                 "write-ahead log before applying it and "
                                 "stamp the applied watermark into the "
                                 "rotated generation")
    update_cmd.add_argument("--stream", default="updates", metavar="NAME",
                            help="WAL namespace for CLI-applied batches "
                                 "(default: updates)")

    repair_cmd = sub.add_parser(
        "repair", help="salvage a damaged model directory and its WAL "
                       "(offline: stop ingestion/serving writers first)")
    repair_cmd.add_argument("model_dir", type=Path,
                            help="directory of NPZ checkpoints to scan")
    repair_cmd.add_argument("--tmp-grace", type=float, default=60.0,
                            metavar="SECONDS",
                            help="leave *.tmp files younger than this alone "
                                 "in case a writer is still running; repair "
                                 "is meant to run offline, use 0 to force "
                                 "(default: 60)")
    repair_cmd.add_argument("--wal-dir", type=Path, default=None,
                            metavar="DIR",
                            help="write-ahead-log root (default: "
                                 "<model_dir>/wal when it exists)")
    repair_cmd.add_argument("--dry-run", action="store_true",
                            help="report findings without changing anything "
                                 "(exit code 1 when there are findings)")
    repair_cmd.add_argument("--recheckpoint", action="store_true",
                            help="after the structural fixes, replay any "
                                 "pending journal suffix into fresh "
                                 "checkpoint generations")
    repair_cmd.add_argument("--keep-generations", type=int, default=3,
                            help="archived generations to retain when "
                                 "re-checkpointing (default: 3)")
    repair_cmd.add_argument("--format", choices=RESULT_FORMATS,
                            default="table", help="output format")

    search_cmd = sub.add_parser(
        "search", help="query a saved vector index with a raw JSON item")
    search_cmd.add_argument("task", choices=sorted(_TASK_DATASETS),
                            help="task whose embedding space the index "
                                 "lives in")
    search_cmd.add_argument("--index", type=Path, required=True,
                            metavar="PATH",
                            help="index checkpoint (from 'repro train "
                                 "--with-index' or 'repro stream "
                                 "--with-index')")
    search_cmd.add_argument("--query", required=True, metavar="JSON",
                            help="one item as JSON (table/record/column "
                                 "payload, same shapes as the HTTP API), "
                                 "or a JSON list of items")
    search_cmd.add_argument("-k", type=int, default=5,
                            help="neighbours to return (default: 5)")
    search_cmd.add_argument("--nprobe", type=int, default=None,
                            metavar="N",
                            help="IVF cells to probe for this query "
                                 "(ivf/ivfpq indexes; default: the "
                                 "index's build-time setting)")
    search_cmd.add_argument("--ef-search", type=int, default=None,
                            metavar="N",
                            help="HNSW beam width for this query "
                                 "(default: the index's build-time "
                                 "setting)")
    search_cmd.add_argument("--rerank", type=int, default=None,
                            metavar="N",
                            help="exact-distance rerank depth for this "
                                 "query (ivfpq indexes; 0 disables the "
                                 "rerank pass)")
    search_cmd.add_argument("--format", choices=RESULT_FORMATS,
                            default="table", help="output format")

    bench_cmd = sub.add_parser(
        "bench", help="run one benchmark and gate it against the committed "
                      "baseline")
    bench_cmd.add_argument("name", choices=sorted(_BENCHES),
                           help="benchmark to run (writes BENCH_<...>.json "
                                "then diffs it via compare_bench.py)")
    bench_cmd.add_argument("--benchmarks-dir", type=Path,
                           default=Path("benchmarks"),
                           help="benchmark scripts directory (default: "
                                "./benchmarks — run from the repo root)")
    bench_cmd.add_argument("--compare-only", action="store_true",
                           help="skip the run; only diff an existing "
                                "BENCH json against the baseline")

    top_cmd = sub.add_parser(
        "top", help="live metrics dashboard over a running serve endpoint")
    top_cmd.add_argument("--url", default="http://127.0.0.1:8000",
                         help="base URL of the server or pool router "
                              "(default: http://127.0.0.1:8000)")
    top_cmd.add_argument("--interval", type=float, default=2.0,
                         help="refresh interval in seconds (default: 2)")
    top_cmd.add_argument("--iterations", type=int, default=None,
                         metavar="N", help="stop after N frames "
                                           "(default: run until Ctrl-C)")
    top_cmd.add_argument("--once", action="store_true",
                         help="print a single frame and exit (scriptable)")
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for spec in EXPERIMENTS.values():
        plan_size = (len(spec.datasets) * len(spec.embeddings)
                     * len(spec.algorithms))
        rows.append({
            "id": spec.experiment_id,
            "kind": spec.kind,
            "cells": plan_size or "-",
            "title": spec.title,
        })
    print(render_rows(rows, args.format))
    return 0


def _run_config(args: argparse.Namespace) -> DeepClusteringConfig | None:
    # --graph / --batch-size are NOT baked into a config here: returning a
    # config would override task-specific defaults (entity resolution's
    # longer pre-training).  They travel as partial overrides through
    # run_experiment instead.
    if args.epochs is None:
        return None
    if getattr(args, "experiment_id", None) == "figure4_scalability":
        # Match run_scalability_study's short default schedule so --epochs
        # caps it instead of resurrecting the full 30/50 schedule.
        config = DeepClusteringConfig(pretrain_epochs=10, train_epochs=10)
    else:
        config = DeepClusteringConfig()
    return config.with_updates(
        pretrain_epochs=min(config.pretrain_epochs, args.epochs),
        train_epochs=min(config.train_epochs, args.epochs))


def _cmd_run(args: argparse.Namespace) -> int:
    if args.cache_dir is not None:
        configure_cache(cache_dir=args.cache_dir)
    spec = get_experiment(args.experiment_id)
    if spec.kind == "figure":
        raise ReproError(
            f"{args.experiment_id!r} is a figure experiment; use the "
            "benchmarks harness (pytest benchmarks/ --benchmark-only) or "
            "the repro.experiments figure helpers")
    scale = _SCALES[args.scale]
    overrides = {name: tuple(value) if value else None
                 for name, value in (("datasets", args.datasets),
                                     ("embeddings", args.embeddings),
                                     ("algorithms", args.algorithms))}
    workers = None if args.workers == 0 else args.workers
    result = run_experiment(
        args.experiment_id, scale=scale, config=_run_config(args),
        graph=args.graph, graph_backend=args.graph_backend,
        batch_size=args.batch_size,
        seed=args.seed, workers=workers, executor=args.executor,
        save_dir=args.save_dir, **overrides)

    if (spec.experiment_id not in NON_MATRIX_RESULTS and args.pivot
            and args.format == "table"):
        print(format_results_table(result, title=spec.title))
    else:
        print(render_rows(experiment_result_rows(spec.experiment_id, result),
                          args.format, title=spec.title))

    stats = get_cache().stats
    if args.format == "table" and (stats.hits or stats.computes):
        print(f"\n[cache] computes={stats.computes} hits={stats.hits} "
              f"disk_hits={stats.disk_hits}", file=sys.stderr)
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from .export import export_rows

    if args.cache_dir is not None:
        configure_cache(cache_dir=args.cache_dir)
    spec = get_experiment(args.experiment_id)
    if spec.kind == "figure":
        raise ReproError(
            f"{args.experiment_id!r} is a figure experiment; use the "
            "benchmarks harness (pytest benchmarks/ --benchmark-only) or "
            "the repro.experiments figure helpers")
    overrides = {name: tuple(value) if value else None
                 for name, value in (("datasets", args.datasets),
                                     ("embeddings", args.embeddings),
                                     ("algorithms", args.algorithms))}
    workers = None if args.workers == 0 else args.workers
    result = run_experiment(
        args.experiment_id, scale=_SCALES[args.scale],
        config=_run_config(args), seed=args.seed, workers=workers,
        **overrides)
    rows = experiment_result_rows(spec.experiment_id, result)
    payload = export_rows(rows, args.export_format)
    if args.output is not None:
        args.output.write_bytes(payload)
        print(f"wrote {len(rows)} row(s) as {args.export_format} to "
              f"{args.output}", file=sys.stderr)
    else:
        sys.stdout.buffer.write(payload)
        sys.stdout.buffer.flush()
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    profiles: list[DatasetProfile] = run_experiment(
        "table1", scale=_SCALES[args.scale],
        datasets=tuple(args.datasets) if args.datasets else None,
        seed=args.seed)
    print(render_rows([profile.as_row() for profile in profiles],
                      args.format, title=get_experiment("table1").title))
    return 0


def _cmd_docs(args: argparse.Namespace) -> int:
    targets = [(args.output, render_experiments_md, write_experiments_md,
                "the experiment registry", "python -m repro docs")]
    if args.api:
        targets.append((args.api_output, render_api_md, write_api_md,
                        "the package's public API",
                        "python -m repro docs --api"))
    for path, render, write, source, command in targets:
        if args.check:
            actual = (path.read_text(encoding="utf-8")
                      if path.exists() else None)
            if actual != render():
                print(f"{path} is out of sync with {source}; run "
                      f"'{command}' to regenerate it", file=sys.stderr)
                return 1
            print(f"{path} is in sync")
        else:
            print(f"wrote {write(path)}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from .experiments.runner import build_dataset
    from .serialize import read_checkpoint_header
    from .tasks import (
        DomainDiscoveryTask,
        EntityResolutionTask,
        SchemaInferenceTask,
    )

    if args.cache_dir is not None:
        configure_cache(cache_dir=args.cache_dir)
    datasets = _TASK_DATASETS[args.task]
    dataset_name = args.dataset or datasets[0]
    if dataset_name not in datasets:
        raise ReproError(
            f"dataset {dataset_name!r} does not belong to task {args.task!r} "
            f"(expected one of {datasets})")
    task_cls = {
        "schema_inference": SchemaInferenceTask,
        "entity_resolution": EntityResolutionTask,
        "domain_discovery": DomainDiscoveryTask,
    }[args.task]

    # Same semantics as `repro run --epochs`: cap the default schedule.
    config = _run_config(args)
    dataset = build_dataset(dataset_name, _SCALES[args.scale], seed=args.seed)
    task = task_cls(dataset, config=config)

    from .tasks.base import evaluate_clustering

    X = task.embed(args.embedding, seed=args.seed)
    result = evaluate_clustering(
        X, dataset.labels, algorithm=args.algorithm,
        dataset=dataset.name, task=task.task_name,
        embedding=args.embedding, config=task.resolved_config(),
        seed=args.seed, save_path=args.save)

    print(render_rows([result.as_row()], args.format,
                      title=f"trained {args.algorithm} on "
                            f"{dataset_name}/{args.embedding}"))
    header = read_checkpoint_header(args.save)
    print(f"saved checkpoint {args.save} "
          f"(class={header['class']}, format v{header['version']})",
          file=sys.stderr)
    if args.with_index is not None:
        from .index import create_index

        index = create_index(args.with_index, metric="cosine")
        index.build(X, ids=_item_ids(dataset))
        index_path = args.save.with_name(args.save.stem + ".index.npz")
        index.save(index_path, metadata={
            "task": task.task_name, "dataset": dataset.name,
            "embedding": args.embedding, "seed": args.seed})
        print(f"saved index {index_path} (backend={args.with_index}, "
              f"n={index.size}) — query it with 'repro search' or "
              "POST /search", file=sys.stderr)
    return 0


def _item_ids(dataset) -> list[str] | None:
    """Human-meaningful corpus ids for a dataset's items, if it has any."""
    tables = getattr(dataset, "tables", None)
    if tables:
        return [table.name for table in tables]
    records = getattr(dataset, "records", None)
    if records:
        return [record.identifier or f"record-{i}"
                for i, record in enumerate(records)]
    columns = getattr(dataset, "columns", None)
    if columns:
        return [f"{column.table_name}.{column.header}"
                if column.table_name else column.header
                for column in columns]
    return None


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import create_pool_server, create_server, servable_names

    reload_interval = (None if args.no_hot_reload
                       else args.reload_ms / 1000.0)
    job_options = {"jobs": not args.no_jobs, "jobs_dir": args.jobs_dir,
                   "job_workers": args.job_workers}
    if args.workers > 1:
        server = create_pool_server(
            args.model_dir, host=args.host, port=args.port,
            workers=args.workers, max_inflight=args.max_inflight,
            max_loaded=args.max_loaded, max_batch_rows=args.batch_rows,
            max_delay=args.batch_delay_ms / 1000.0,
            micro_batching=not args.no_batching,
            reload_interval=reload_interval,
            wal_dir=args.wal_dir, **job_options)
        names = servable_names(args.model_dir)
    else:
        server = create_server(
            args.model_dir, host=args.host, port=args.port,
            max_loaded=args.max_loaded, max_batch_rows=args.batch_rows,
            max_delay=args.batch_delay_ms / 1000.0,
            micro_batching=not args.no_batching,
            reload_interval=reload_interval,
            wal_dir=args.wal_dir, **job_options)
        names = server.service.registry.names()
    host, port = server.server_address[:2]
    print(f"serving {len(names)} model(s) {names} from {args.model_dir} "
          f"on http://{host}:{port} "
          f"({args.workers} worker(s), "
          f"micro-batching {'off' if args.no_batching else 'on'}, "
          f"hot-reload {'off' if args.no_hot_reload else 'on'}, "
          f"jobs {'off' if args.no_jobs else 'on'})",
          file=sys.stderr)
    # SIGTERM must run the same cleanup as Ctrl-C: the pool path owns
    # worker processes and /dev/shm segments that server_close releases.
    import signal

    def _terminate(signum, frame):
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.server_close()
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from .experiments.streaming import run_stream_scenario

    if args.cache_dir is not None:
        configure_cache(cache_dir=args.cache_dir)
    datasets = _TASK_DATASETS[args.task]
    dataset_name = args.dataset or datasets[0]
    if dataset_name not in datasets:
        raise ReproError(
            f"dataset {dataset_name!r} does not belong to task {args.task!r} "
            f"(expected one of {datasets})")
    steps = run_stream_scenario(
        args.task, dataset=dataset_name, embedding=args.embedding,
        algorithm=args.algorithm, n_batches=args.batches,
        drift=args.drift, drift_rate=args.drift_rate,
        initial_fraction=args.initial_fraction,
        scale=_SCALES[args.scale], config=_run_config(args),
        seed=args.seed, save_path=args.save,
        keep_generations=args.keep_generations,
        with_index=args.with_index,
        wal_dir=args.wal_dir, stream_name=args.stream_name)
    print(render_rows([step.as_row() for step in steps], args.format,
                      title=f"streamed {dataset_name}/{args.embedding}/"
                            f"{args.algorithm} over {args.batches} batches"))
    if args.save is not None:
        from .serialize import read_checkpoint_header

        header = read_checkpoint_header(args.save)
        print(f"rotated checkpoint {args.save} to generation "
              f"{header['metadata'].get('generation')}", file=sys.stderr)
    return 0


def _cmd_update(args: argparse.Namespace) -> int:
    from .experiments.runner import build_dataset
    from .experiments.streaming import _EMBED_FNS, STREAMABLE_EMBEDDINGS
    from .serialize import load_checkpoint, rotate_checkpoint
    from .stream import incremental_update

    model = load_checkpoint(args.checkpoint)
    metadata = dict(model.checkpoint_header_.get("metadata", {}))
    task = metadata.get("task")
    embedding = metadata.get("embedding")
    if not task or not embedding:
        raise ReproError(
            f"checkpoint {args.checkpoint} was saved without task/embedding "
            "metadata; retrain it with 'repro train --save' or "
            "'repro stream --save'")
    if embedding not in STREAMABLE_EMBEDDINGS.get(task, ()):
        raise ReproError(
            f"checkpoint embedding {embedding!r} is corpus-dependent; "
            "incremental updates need a per-item stateless embedding")
    if args.data not in _TASK_DATASETS.get(task, ()):
        raise ReproError(
            f"dataset {args.data!r} does not belong to the checkpoint's "
            f"task {task!r} (expected one of {_TASK_DATASETS.get(task)})")
    # Default to a seed the training run did not use, so the generated
    # batch is genuinely new data rather than a replay.
    train_seed = metadata.get("seed")
    seed = args.seed if args.seed is not None else \
        (train_seed if isinstance(train_seed, int) else 0) + 1
    dataset = build_dataset(args.data, _SCALES[args.scale], seed=seed)
    X = _EMBED_FNS[task](dataset, embedding, seed=seed)
    wal = None
    batch_id = None
    if args.wal_dir is not None:
        from .wal import WriteAheadLog, stamp_wal_metadata, wal_namespace

        wal = WriteAheadLog(wal_namespace(args.wal_dir, args.checkpoint.stem,
                                          args.stream))
        # Journal-first: the batch is durable before the model changes.
        batch_id = wal.append({"X": X},
                              meta={"epochs": args.epochs, "seed": seed,
                                    "dataset": args.data})
    try:
        report = incremental_update(model, X, epochs=args.epochs, seed=seed)
        metadata.update({"n_items": int(X.shape[0]),
                         "updated_from": args.data, "update_seed": seed})
        if batch_id is not None:
            stamp_wal_metadata(metadata, stream=args.stream,
                               batch_id=batch_id)
        rotate_checkpoint(args.checkpoint, model, metadata=metadata,
                          keep=args.keep_generations)
        if wal is not None:
            wal.rotate_segment()
            wal.prune(batch_id)
    finally:
        if wal is not None:
            wal.close()
    print(render_rows([report.as_row()], args.format,
                      title=f"updated {args.checkpoint}"))
    from .serialize import read_checkpoint_header

    header = read_checkpoint_header(args.checkpoint)
    print(f"rotated checkpoint {args.checkpoint} to generation "
          f"{header['metadata'].get('generation')}"
          + (" (refit recommended)" if report.refit_recommended else ""),
          file=sys.stderr)
    return 0


def _cmd_repair(args: argparse.Namespace) -> int:
    from .wal import repair_directory

    if not args.model_dir.is_dir():
        raise ReproError(f"{args.model_dir} is not a directory")
    report = repair_directory(args.model_dir, wal_dir=args.wal_dir,
                              apply=not args.dry_run,
                              recheckpoint=args.recheckpoint,
                              keep=args.keep_generations,
                              tmp_grace_seconds=args.tmp_grace)
    rows = report["findings"]
    mode = "dry-run" if args.dry_run else "repair"
    if rows:
        print(render_rows(rows, args.format,
                          title=f"{mode}: {len(rows)} finding(s) in "
                                f"{args.model_dir}"))
    else:
        print(f"{mode}: {args.model_dir} is clean", file=sys.stderr)
    for recovered in report["recovered"]:
        print(f"recovered {recovered['checkpoint']}: "
              f"{recovered['replayed_batches']} batch(es) replayed "
              f"(watermark {recovered['watermark']})", file=sys.stderr)
    # Dry runs signal outstanding damage through the exit code so scripts
    # can gate on "directory needs repair".
    return 1 if (args.dry_run and rows) else 0


def _cmd_search(args: argparse.Namespace) -> int:
    import json

    from .embeddings import embed_items
    from .index import VectorIndex
    from .serialize import load_checkpoint

    index = load_checkpoint(args.index)
    if not isinstance(index, VectorIndex):
        raise ReproError(
            f"{args.index} stores a {type(index).__name__}, not a vector "
            "index; build one with 'repro train --save ... --with-index'")
    metadata = index.checkpoint_header_.get("metadata", {})
    index_task = metadata.get("task")
    embedding = metadata.get("embedding")
    if index_task and index_task != args.task:
        raise ReproError(
            f"index {args.index} was built for task {index_task!r}, "
            f"not {args.task!r}")
    if not embedding:
        raise ReproError(
            f"index {args.index} was saved without embedding metadata; "
            "rebuild it with 'repro train --with-index'")
    try:
        query = json.loads(args.query)
    except json.JSONDecodeError as exc:
        raise ReproError(f"--query is not valid JSON: {exc}") from exc
    items = query if isinstance(query, list) else [query]
    X = embed_items(args.task, embedding, items)
    supported = index.query_tunables
    tunables = {}
    for field, value in (("nprobe", args.nprobe),
                         ("ef_search", args.ef_search),
                         ("rerank", args.rerank)):
        if value is None:
            continue
        if field not in supported:
            accepted = ", ".join(f"--{name.replace('_', '-')}"
                                 for name in sorted(supported)) or "none"
            raise ReproError(
                f"--{field.replace('_', '-')} does not apply to a "
                f"{index.backend} index (it accepts: {accepted})")
        tunables[field] = value
    positions, distances = index.query(X, args.k, **tunables)
    ids = index.ids.tolist()  # JSON-able natives (int64 -> int, str_ -> str)
    rows = [{"query": q, "rank": rank + 1,
             "id": ids[positions[q, rank]],
             "distance": round(float(distances[q, rank]), 4)}
            for q in range(positions.shape[0])
            for rank in range(positions.shape[1])]
    print(render_rows(rows, args.format,
                      title=f"top-{positions.shape[1]} neighbours "
                            f"({index.backend} index over {index.size} "
                            f"items)"))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import subprocess

    bench_dir = args.benchmarks_dir
    target, bench_json = _BENCHES[args.name]
    script = target.partition("::")[0]
    if not (bench_dir / script).exists():
        raise ReproError(
            f"{bench_dir / script} not found; run from the repository root "
            "or pass --benchmarks-dir")
    # The bench subprocess needs the same import path that resolved this
    # very package (works from a source tree or an installed env).
    src_dir = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src_dir)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH")
                          else []))
    if not args.compare_only:
        pytest_target = str(bench_dir / script) + target[len(script):]
        outcome = subprocess.run(
            [sys.executable, "-m", "pytest", pytest_target,
             "--benchmark-only", "-q", "-s"], env=env)
        if outcome.returncode != 0:
            print(f"error: benchmark {args.name} failed", file=sys.stderr)
            return outcome.returncode
    compare = subprocess.run(
        [sys.executable, str(bench_dir / "compare_bench.py"), "--strict",
         "--files", bench_json,
         "--baseline-dir", str(bench_dir / "baselines")], env=env)
    return compare.returncode


def _cmd_top(args: argparse.Namespace) -> int:
    from .obs.top import run_top

    return run_top(args.url, interval=args.interval,
                   iterations=args.iterations, once=args.once)


_COMMANDS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "export": _cmd_export,
    "profile": _cmd_profile,
    "docs": _cmd_docs,
    "train": _cmd_train,
    "serve": _cmd_serve,
    "stream": _cmd_stream,
    "update": _cmd_update,
    "repair": _cmd_repair,
    "search": _cmd_search,
    "bench": _cmd_bench,
    "top": _cmd_top,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. `repro run ... | head`); exit
        # quietly like a well-behaved Unix tool.  Redirect stdout to
        # devnull so the interpreter's final flush does not raise again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
