"""Silhouette coefficient (Rousseeuw 1987).

The paper uses the silhouette score on the learned representation to decide
(i) how many epochs to train the DC models and (ii) whether to keep the SDCN
fine-tuning or fall back to the pre-trained AE representation (Section 4.2).

Because the score is recomputed every training epoch, the implementation is
blocked: rows are processed in slabs of at most ``_BLOCK_FLOATS`` distance
entries, so peak memory is O(block * n) rather than O(n^2) — the same
discipline as the sparse KNN path in :mod:`repro.graphs.knn`.
"""

from __future__ import annotations

import numpy as np

from ..utils.metrics_dispatch import unit_rows, validate_metric
from ..utils.validation import check_labels, check_matrix, check_same_length

__all__ = ["silhouette_samples", "silhouette_score"]

#: Upper bound on the number of float64 entries in one distance slab
#: (256k floats = 2 MiB), keeping the per-epoch scoring memory-bounded.
_BLOCK_FLOATS = 262_144


def _distance_block(X: np.ndarray, start: int, stop: int, metric: str,
                    squared_norms: np.ndarray | None,
                    unit: np.ndarray | None) -> np.ndarray:
    """Distances from rows ``start:stop`` to every row (a ``(b, n)`` slab)."""
    if metric == "euclidean":
        d2 = squared_norms[start:stop, None] + squared_norms[None, :] \
            - 2.0 * (X[start:stop] @ X.T)
        np.maximum(d2, 0.0, out=d2)
        return np.sqrt(d2, out=d2)
    return 1.0 - unit[start:stop] @ unit.T


def silhouette_samples(X, labels, *, metric: str = "euclidean") -> np.ndarray:
    """Per-sample silhouette coefficients in [-1, 1].

    Computed blockwise: the full pairwise distance matrix is never
    materialised, so the function stays usable inside per-epoch training
    loops at large n.  Samples in singleton clusters score 0; with a single
    cluster overall every score is 0.
    """
    X = check_matrix(X)
    labels = check_labels(labels)
    check_same_length(X, labels, names=("X", "labels"))

    n = X.shape[0]
    uniques, inverse = np.unique(labels, return_inverse=True)
    n_clusters = uniques.size
    if n_clusters < 2:
        return np.zeros(n, dtype=np.float64)

    validate_metric(metric)
    if metric == "euclidean":
        squared_norms = np.sum(X ** 2, axis=1)
        unit = None
    else:
        unit = unit_rows(X)
        squared_norms = None

    # One-hot membership matrix: a slab's per-cluster distance sums are a
    # single (b, n) @ (n, K) product instead of a python loop over points.
    membership = np.zeros((n, n_clusters), dtype=np.float64)
    membership[np.arange(n), inverse] = 1.0
    sizes = membership.sum(axis=0)

    block = max(1, _BLOCK_FLOATS // max(1, n))
    scores = np.zeros(n, dtype=np.float64)
    for start in range(0, n, block):
        stop = min(start + block, n)
        distances = _distance_block(X, start, stop, metric,
                                    squared_norms, unit)
        cluster_sums = distances @ membership          # (b, K)
        rows = np.arange(stop - start)
        own = inverse[start:stop]
        own_size = sizes[own]
        # Mean intra-cluster distance excluding the point itself (the
        # distance to itself is 0, so the sum needs no correction).
        with np.errstate(invalid="ignore", divide="ignore"):
            a = cluster_sums[rows, own] / (own_size - 1)
            # Smallest mean distance to another cluster.
            means = cluster_sums / sizes[None, :]
            means[rows, own] = np.inf
            b = means.min(axis=1)
            denom = np.maximum(a, b)
            block_scores = np.where(denom > 0, (b - a) / denom, 0.0)
        block_scores = np.where(own_size <= 1, 0.0, block_scores)
        scores[start:stop] = block_scores
    return scores


def silhouette_score(X, labels, *, metric: str = "euclidean") -> float:
    """Mean silhouette coefficient over all samples.

    Returns 0.0 when the labelling is degenerate (a single cluster or all
    singleton clusters), which lets training loops treat "no cluster
    structure" as a neutral score rather than an error.
    """
    labels = check_labels(labels)
    uniques = np.unique(labels)
    if uniques.size < 2 or uniques.size >= len(labels):
        return 0.0
    return float(np.mean(silhouette_samples(X, labels, metric=metric)))
