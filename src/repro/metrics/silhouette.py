"""Silhouette coefficient (Rousseeuw 1987).

The paper uses the silhouette score on the learned representation to decide
(i) how many epochs to train the DC models and (ii) whether to keep the SDCN
fine-tuning or fall back to the pre-trained AE representation (Section 4.2).
"""

from __future__ import annotations

import numpy as np

from ..utils.validation import check_labels, check_matrix, check_same_length

__all__ = ["silhouette_samples", "silhouette_score"]


def _pairwise_distances(X: np.ndarray, metric: str) -> np.ndarray:
    if metric == "euclidean":
        squared = np.sum(X ** 2, axis=1)
        d2 = squared[:, None] + squared[None, :] - 2.0 * (X @ X.T)
        np.maximum(d2, 0.0, out=d2)
        return np.sqrt(d2)
    if metric == "cosine":
        norms = np.linalg.norm(X, axis=1, keepdims=True)
        norms = np.where(norms == 0, 1.0, norms)
        unit = X / norms
        return 1.0 - unit @ unit.T
    raise ValueError(f"unsupported metric {metric!r}")


def silhouette_samples(X, labels, *, metric: str = "euclidean") -> np.ndarray:
    """Per-sample silhouette coefficients in [-1, 1]."""
    X = check_matrix(X)
    labels = check_labels(labels)
    check_same_length(X, labels, names=("X", "labels"))

    distances = _pairwise_distances(X, metric)
    uniques = np.unique(labels)
    n = X.shape[0]
    scores = np.zeros(n, dtype=np.float64)

    cluster_masks = {int(c): labels == c for c in uniques}
    cluster_sizes = {c: int(mask.sum()) for c, mask in cluster_masks.items()}

    for i in range(n):
        own = int(labels[i])
        own_mask = cluster_masks[own]
        own_size = cluster_sizes[own]
        if own_size <= 1:
            scores[i] = 0.0
            continue
        # Mean intra-cluster distance excluding the point itself.
        a = distances[i, own_mask].sum() / (own_size - 1)
        # Smallest mean distance to another cluster.
        b = np.inf
        for other, mask in cluster_masks.items():
            if other == own:
                continue
            b = min(b, distances[i, mask].mean())
        denom = max(a, b)
        scores[i] = 0.0 if denom == 0 else (b - a) / denom
    return scores


def silhouette_score(X, labels, *, metric: str = "euclidean") -> float:
    """Mean silhouette coefficient over all samples.

    Returns 0.0 when the labelling is degenerate (a single cluster or all
    singleton clusters), which lets training loops treat "no cluster
    structure" as a neutral score rather than an error.
    """
    labels = check_labels(labels)
    uniques = np.unique(labels)
    if uniques.size < 2 or uniques.size >= len(labels):
        return 0.0
    return float(np.mean(silhouette_samples(X, labels, metric=metric)))
