"""Contingency-table utilities shared by ARI, NMI and pairwise metrics."""

from __future__ import annotations

import numpy as np

from ..utils.validation import check_labels, check_same_length

__all__ = ["contingency_table", "pair_confusion", "relabel_consecutive"]


def relabel_consecutive(labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Map arbitrary integer labels onto 0..K-1, returning (mapped, uniques)."""
    labels = check_labels(labels)
    uniques, mapped = np.unique(labels, return_inverse=True)
    return mapped.astype(np.int64), uniques


def contingency_table(labels_true, labels_pred) -> np.ndarray:
    """Return the r x s contingency table of overlaps between two labelings.

    Entry ``[i, j]`` counts the objects assigned to true cluster ``i`` and
    predicted cluster ``j`` (the matrix :math:`[t_{ij}]` of Equation 6).
    """
    true = check_labels(labels_true, name="labels_true")
    pred = check_labels(labels_pred, name="labels_pred")
    check_same_length(true, pred, names=("labels_true", "labels_pred"))
    true_mapped, true_uniques = relabel_consecutive(true)
    pred_mapped, pred_uniques = relabel_consecutive(pred)
    table = np.zeros((true_uniques.size, pred_uniques.size), dtype=np.int64)
    np.add.at(table, (true_mapped, pred_mapped), 1)
    return table


def pair_confusion(labels_true, labels_pred) -> dict[str, int]:
    """Return the pairwise confusion counts between two clusterings.

    Every unordered pair of objects is classified as:

    * ``tp`` — together in both clusterings,
    * ``fp`` — together in the prediction but apart in the ground truth,
    * ``fn`` — apart in the prediction but together in the ground truth,
    * ``tn`` — apart in both.
    """
    table = contingency_table(labels_true, labels_pred)
    n = int(table.sum())
    sum_squares = float((table.astype(np.float64) ** 2).sum())
    row_sums = table.sum(axis=1).astype(np.float64)
    col_sums = table.sum(axis=0).astype(np.float64)

    same_both = 0.5 * (sum_squares - n)
    same_true = 0.5 * float((row_sums ** 2).sum() - n)
    same_pred = 0.5 * float((col_sums ** 2).sum() - n)
    total_pairs = 0.5 * n * (n - 1)

    tp = same_both
    fn = same_true - same_both
    fp = same_pred - same_both
    tn = total_pairs - tp - fn - fp
    return {"tp": int(round(tp)), "fp": int(round(fp)),
            "fn": int(round(fn)), "tn": int(round(tn))}
