"""Pairwise match metrics used in the entity resolution analysis (Section 6.1).

Entity resolution quality is often discussed in terms of record *pairs*: a
true positive is a pair of records placed in the same cluster by both the
prediction and the ground truth.  The paper's qualitative analysis counts TP
pairs gained by one representation over another; these helpers expose those
counts plus the derived precision / recall / F1.
"""

from __future__ import annotations

from dataclasses import dataclass

from .contingency import pair_confusion

__all__ = ["PairwiseCounts", "pairwise_match_counts", "pairwise_precision_recall_f1"]


@dataclass(frozen=True)
class PairwiseCounts:
    """Unordered-pair confusion counts between prediction and ground truth."""

    tp: int
    fp: int
    fn: int
    tn: int

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def pairwise_match_counts(labels_true, labels_pred) -> PairwiseCounts:
    """Return :class:`PairwiseCounts` for two clusterings of the same items."""
    counts = pair_confusion(labels_true, labels_pred)
    return PairwiseCounts(**counts)


def pairwise_precision_recall_f1(labels_true, labels_pred) -> tuple[float, float, float]:
    """Convenience wrapper returning (precision, recall, F1) over pairs."""
    counts = pairwise_match_counts(labels_true, labels_pred)
    return counts.precision, counts.recall, counts.f1
