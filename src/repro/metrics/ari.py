"""Adjusted Rand Index (Equation 6 of the paper)."""

from __future__ import annotations

import numpy as np

from .contingency import contingency_table

__all__ = ["adjusted_rand_index"]


def _comb2(values: np.ndarray) -> np.ndarray:
    """Vectorised n-choose-2."""
    values = values.astype(np.float64)
    return values * (values - 1.0) / 2.0


def adjusted_rand_index(labels_true, labels_pred) -> float:
    """Adjusted Rand Index between a ground-truth and a predicted clustering.

    Values close to 1 indicate a strong match; values around 0 indicate a
    clustering no better than chance; slightly negative values are possible
    for clusterings that are worse than chance (the paper reports e.g. -0.018
    for DBSCAN with FastText on web tables).
    """
    table = contingency_table(labels_true, labels_pred)
    n = table.sum()
    if n < 2:
        return 1.0

    sum_cells = _comb2(table.astype(np.float64)).sum()
    sum_rows = _comb2(table.sum(axis=1)).sum()
    sum_cols = _comb2(table.sum(axis=0)).sum()
    total = _comb2(np.array([n]))[0]

    expected = sum_rows * sum_cols / total
    maximum = 0.5 * (sum_rows + sum_cols)
    denominator = maximum - expected
    if denominator == 0:
        # Both clusterings are trivial (all singletons or one cluster).
        return 1.0 if sum_cells == expected else 0.0
    return float((sum_cells - expected) / denominator)
