"""Kolmogorov-Smirnov density analysis (Section 8.1, finding 5).

The paper explains DBSCAN's tendency to collapse all instances into a single
cluster by showing that the embedding features share near-identical density
distributions: the mean pairwise KS statistic over SBERT features of the web
tables data is about 0.06 with a mean p-value of about 0.65, so the null
hypothesis "features are drawn from the same distribution" cannot be
rejected.  :func:`ks_density_analysis` reproduces that analysis for any
embedding matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..utils.validation import check_matrix

__all__ = ["KSDensityReport", "ks_density_analysis"]


@dataclass(frozen=True)
class KSDensityReport:
    """Summary of pairwise KS tests between feature dimensions."""

    mean_statistic: float
    mean_p_value: float
    n_features: int
    n_pairs: int

    @property
    def same_distribution(self) -> bool:
        """Heuristic: densities indistinguishable at the 5% level on average."""
        return self.mean_p_value > 0.05


def ks_density_analysis(X, *, max_features: int = 64,
                        seed: int | None = None) -> KSDensityReport:
    """Run pairwise two-sample KS tests between the feature columns of ``X``.

    With high-dimensional embeddings the full quadratic sweep is wasteful, so
    at most ``max_features`` columns are sampled (deterministically for a
    given ``seed``).
    """
    X = check_matrix(X)
    n_features = X.shape[1]
    rng = np.random.default_rng(0 if seed is None else seed)
    if n_features > max_features:
        chosen = np.sort(rng.choice(n_features, size=max_features, replace=False))
    else:
        chosen = np.arange(n_features)

    statistics: list[float] = []
    p_values: list[float] = []
    for idx_a in range(len(chosen)):
        for idx_b in range(idx_a + 1, len(chosen)):
            col_a = X[:, chosen[idx_a]]
            col_b = X[:, chosen[idx_b]]
            result = stats.ks_2samp(col_a, col_b, method="asymp")
            statistics.append(float(result.statistic))
            p_values.append(float(result.pvalue))

    if not statistics:
        return KSDensityReport(0.0, 1.0, n_features, 0)
    return KSDensityReport(
        mean_statistic=float(np.mean(statistics)),
        mean_p_value=float(np.mean(p_values)),
        n_features=int(n_features),
        n_pairs=len(statistics),
    )
