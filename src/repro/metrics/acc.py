"""Hungarian-mapped clustering accuracy (Equations 7-8 of the paper).

Predicted cluster ids are arbitrary, so ACC first finds the permutation
mapping between predicted and ground-truth labels that maximises agreement
(via the Hungarian algorithm on the contingency table) and then reports the
fraction of correctly mapped samples.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from .contingency import contingency_table, relabel_consecutive
from ..utils.validation import check_labels, check_same_length

__all__ = ["clustering_accuracy", "best_label_mapping"]


def best_label_mapping(labels_true, labels_pred) -> dict[int, int]:
    """Return the optimal mapping ``predicted label -> true label``.

    The mapping maximises the number of samples whose mapped prediction
    equals the ground truth.  Predicted clusters that have no matched true
    cluster (when the prediction has more clusters than the ground truth)
    are left out of the mapping.
    """
    true = check_labels(labels_true, name="labels_true")
    pred = check_labels(labels_pred, name="labels_pred")
    check_same_length(true, pred, names=("labels_true", "labels_pred"))

    table = contingency_table(true, pred)
    _, true_uniques = relabel_consecutive(true)
    _, pred_uniques = relabel_consecutive(pred)

    # Hungarian algorithm maximising agreement == minimising negated counts.
    row_idx, col_idx = linear_sum_assignment(-table)
    return {int(pred_uniques[j]): int(true_uniques[i])
            for i, j in zip(row_idx, col_idx)}


def clustering_accuracy(labels_true, labels_pred) -> float:
    """Clustering accuracy after optimal label permutation (ACC)."""
    true = check_labels(labels_true, name="labels_true")
    pred = check_labels(labels_pred, name="labels_pred")
    check_same_length(true, pred, names=("labels_true", "labels_pred"))

    mapping = best_label_mapping(true, pred)
    mapped = np.array([mapping.get(int(label), -10 ** 9) for label in pred])
    return float(np.mean(mapped == true))
