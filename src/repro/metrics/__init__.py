"""Clustering evaluation metrics used throughout the paper's experiments.

The paper reports Adjusted Rand Index (ARI) and Hungarian-mapped clustering
accuracy (ACC) for every experiment (Section 4.1), uses the silhouette
coefficient to decide training epochs and AE-vs-SDCN selection (Section 4.2),
pairwise TP/FP analysis for the entity resolution discussion (Section 6.1),
and a Kolmogorov–Smirnov density analysis to explain DBSCAN's collapse
(Section 8.1, finding 5).
"""

from .contingency import contingency_table, pair_confusion
from .ari import adjusted_rand_index
from .acc import clustering_accuracy, best_label_mapping
from .silhouette import silhouette_score, silhouette_samples
from .pairs import pairwise_match_counts, pairwise_precision_recall_f1
from .ks import ks_density_analysis, KSDensityReport
from .nmi import normalized_mutual_information

__all__ = [
    "contingency_table",
    "pair_confusion",
    "adjusted_rand_index",
    "clustering_accuracy",
    "best_label_mapping",
    "silhouette_score",
    "silhouette_samples",
    "pairwise_match_counts",
    "pairwise_precision_recall_f1",
    "ks_density_analysis",
    "KSDensityReport",
    "normalized_mutual_information",
]
