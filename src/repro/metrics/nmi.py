"""Normalized mutual information.

Not reported in the paper's tables but a standard companion metric for deep
clustering papers; exposed for completeness and used by some ablation
benches to cross-check ARI/ACC trends.
"""

from __future__ import annotations

import numpy as np

from .contingency import contingency_table

__all__ = ["normalized_mutual_information"]


def _entropy(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    probabilities = counts[counts > 0] / total
    return float(-(probabilities * np.log(probabilities)).sum())


def normalized_mutual_information(labels_true, labels_pred) -> float:
    """NMI with arithmetic-mean normalisation, in [0, 1]."""
    table = contingency_table(labels_true, labels_pred).astype(np.float64)
    n = table.sum()
    if n == 0:
        return 0.0
    joint = table / n
    row = joint.sum(axis=1)
    col = joint.sum(axis=0)
    outer = row[:, None] * col[None, :]
    mask = joint > 0
    mutual_info = float((joint[mask] * np.log(joint[mask] / outer[mask])).sum())
    h_true = _entropy(table.sum(axis=1))
    h_pred = _entropy(table.sum(axis=0))
    if h_true == 0.0 and h_pred == 0.0:
        return 1.0
    denominator = 0.5 * (h_true + h_pred)
    if denominator == 0.0:
        return 0.0
    return float(np.clip(mutual_info / denominator, 0.0, 1.0))
