"""Heterogeneous information network (HIN) model for SHGP.

SHGP (Yang et al., 2022) operates on graphs with typed nodes (e.g. rows,
attributes, values in our data-integration setting).  The target objects to
cluster form one node type; other node types provide structural context.
This module provides a light-weight HIN representation plus the construction
used by :class:`repro.dc.shgp.SHGP`: target nodes are linked to *feature
anchor* nodes derived from their embeddings, mirroring how SHGP links typed
objects through metapath neighbourhoods.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from ..utils.validation import check_matrix
from .knn import knn_graph

__all__ = ["NodeType", "HeterogeneousGraph"]


class NodeType(str, Enum):
    """Node roles in the data-integration HIN."""

    TARGET = "target"       # the objects being clustered (tables/rows/columns)
    ANCHOR = "anchor"       # feature anchors (quantised embedding prototypes)
    ATTRIBUTE = "attribute"  # schema-level attribute nodes


@dataclass
class HeterogeneousGraph:
    """A HIN with typed nodes and typed (bipartite or homogeneous) edges.

    Adjacency matrices are stored per (source type, target type) pair.  The
    homogeneous projection used by propagation-based algorithms is obtained
    with :meth:`target_projection`.
    """

    node_counts: dict[NodeType, int]
    adjacencies: dict[tuple[NodeType, NodeType], np.ndarray] = field(default_factory=dict)

    def add_edges(self, source: NodeType, target: NodeType,
                  adjacency: np.ndarray) -> None:
        """Register a (possibly rectangular) adjacency between two node types."""
        adjacency = np.asarray(adjacency, dtype=np.float64)
        expected = (self.node_counts[source], self.node_counts[target])
        if adjacency.shape != expected:
            raise ValueError(
                f"adjacency for ({source.value}->{target.value}) must have shape "
                f"{expected}, got {adjacency.shape}")
        self.adjacencies[(source, target)] = adjacency

    def adjacency(self, source: NodeType, target: NodeType) -> np.ndarray:
        """Return the adjacency for the given edge type (zeros if absent)."""
        key = (source, target)
        if key in self.adjacencies:
            return self.adjacencies[key]
        reverse = (target, source)
        if reverse in self.adjacencies:
            return self.adjacencies[reverse].T
        return np.zeros((self.node_counts[source], self.node_counts[target]))

    def target_projection(self) -> np.ndarray:
        """Project the HIN onto target-target relations via shared neighbours.

        For every non-target node type ``T`` with a target->T adjacency ``B``,
        the metapath target-T-target contributes ``B @ B.T``; contributions are
        summed and the diagonal zeroed.
        """
        n_targets = self.node_counts[NodeType.TARGET]
        projection = np.zeros((n_targets, n_targets), dtype=np.float64)
        for (source, target), matrix in self.adjacencies.items():
            if source is NodeType.TARGET and target is not NodeType.TARGET:
                projection += matrix @ matrix.T
            elif source is NodeType.TARGET and target is NodeType.TARGET:
                projection += matrix
        np.fill_diagonal(projection, 0.0)
        return projection

    # ------------------------------------------------------------------
    @classmethod
    def from_embeddings(cls, X, *, n_anchors: int = 32, knn_k: int = 10,
                        seed: int | None = None) -> "HeterogeneousGraph":
        """Build the data-integration HIN used by SHGP from an embedding matrix.

        Target nodes are the embedding rows.  Anchor nodes are obtained by
        quantising the embedding space with K-means (``n_anchors`` centroids);
        each target connects to its nearest anchors.  A homogeneous
        target-target KNN adjacency is also included so that propagation has
        direct structural edges to follow.
        """
        from ..clustering.kmeans import KMeans  # local import avoids a cycle

        X = check_matrix(X)
        n_targets = X.shape[0]
        n_anchors = max(2, min(n_anchors, max(2, n_targets // 2)))

        kmeans = KMeans(n_clusters=n_anchors, seed=seed, n_init=2, max_iter=50)
        kmeans.fit(X)
        anchor_assignment = kmeans.labels_

        target_anchor = np.zeros((n_targets, n_anchors), dtype=np.float64)
        target_anchor[np.arange(n_targets), anchor_assignment] = 1.0

        graph = cls(node_counts={NodeType.TARGET: n_targets,
                                 NodeType.ANCHOR: n_anchors})
        graph.add_edges(NodeType.TARGET, NodeType.ANCHOR, target_anchor)
        graph.add_edges(NodeType.TARGET, NodeType.TARGET,
                        knn_graph(X, k=min(knn_k, max(1, n_targets - 1))))
        return graph
