"""K-nearest-neighbour graph construction.

SDCN (Bo et al., 2020) starts by building a KNN graph over the input
embeddings and feeds the normalised adjacency matrix to its GCN branch.  The
helpers here produce a symmetric adjacency matrix and the renormalised
propagation matrix :math:`\\hat{A} = \\tilde{D}^{-1/2}(A + I)\\tilde{D}^{-1/2}`.
"""

from __future__ import annotations

import numpy as np

from ..utils.validation import check_matrix

__all__ = ["cosine_similarity_matrix", "knn_graph", "normalized_adjacency"]


def cosine_similarity_matrix(X) -> np.ndarray:
    """Dense cosine similarity between all rows of ``X``."""
    X = check_matrix(X)
    norms = np.linalg.norm(X, axis=1, keepdims=True)
    norms = np.where(norms == 0, 1.0, norms)
    unit = X / norms
    return unit @ unit.T


def knn_graph(X, k: int = 10, *, metric: str = "cosine",
              symmetric: bool = True) -> np.ndarray:
    """Binary adjacency matrix connecting each point to its ``k`` neighbours.

    Self-loops are excluded here (the renormalisation in
    :func:`normalized_adjacency` adds them back).  With ``symmetric=True``
    (the default, and what SDCN uses) the union of the directed KNN relations
    is taken so the adjacency is symmetric.
    """
    X = check_matrix(X)
    n = X.shape[0]
    if k < 1:
        raise ValueError("k must be >= 1")
    k = min(k, n - 1) if n > 1 else 0

    if metric == "cosine":
        similarity = cosine_similarity_matrix(X)
    elif metric == "euclidean":
        squared = np.sum(X ** 2, axis=1)
        d2 = squared[:, None] + squared[None, :] - 2.0 * (X @ X.T)
        np.maximum(d2, 0.0, out=d2)
        similarity = -d2
    else:
        raise ValueError(f"unsupported metric {metric!r}")

    adjacency = np.zeros((n, n), dtype=np.float64)
    if k == 0:
        return adjacency
    np.fill_diagonal(similarity, -np.inf)
    # Indices of the k most similar neighbours per row.
    neighbors = np.argpartition(-similarity, kth=k - 1, axis=1)[:, :k]
    rows = np.repeat(np.arange(n), k)
    adjacency[rows, neighbors.ravel()] = 1.0
    if symmetric:
        adjacency = np.maximum(adjacency, adjacency.T)
    return adjacency


def normalized_adjacency(adjacency: np.ndarray, *, add_self_loops: bool = True
                         ) -> np.ndarray:
    """Symmetrically normalised adjacency used by GCN propagation."""
    A = np.asarray(adjacency, dtype=np.float64)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ValueError("adjacency must be a square matrix")
    if add_self_loops:
        A = A + np.eye(A.shape[0])
    degrees = A.sum(axis=1)
    degrees = np.where(degrees == 0, 1.0, degrees)
    inv_sqrt = 1.0 / np.sqrt(degrees)
    return (A * inv_sqrt[:, None]) * inv_sqrt[None, :]
