"""K-nearest-neighbour graph construction (dense and sparse paths).

SDCN (Bo et al., 2020) starts by building a KNN graph over the input
embeddings and feeds the normalised adjacency matrix to its GCN branch.  The
helpers here produce a symmetric adjacency and the renormalised propagation
matrix :math:`\\hat{A} = \\tilde{D}^{-1/2}(A + I)\\tilde{D}^{-1/2}`.

Two construction strategies are provided:

* :func:`knn_graph` — the original dense path: materialises the full
  n x n similarity matrix and returns a dense adjacency (O(n^2) memory).
* :func:`sparse_knn_graph` — the scalable path: a blocked top-k search
  (:func:`blocked_topk_neighbors`) that processes rows in fixed-size blocks
  and returns a :class:`~repro.nn.sparse.CSRMatrix`, keeping peak memory at
  O(n * k + block_size * n).  Its ``backend`` parameter swaps the exact
  blocked scan for an approximate :mod:`repro.index` search
  (:func:`ann_topk_neighbors`), dropping construction *time* below the
  O(n^2 d) wall as well.

:func:`normalized_adjacency` accepts either representation and returns the
matching one, so downstream code (GCN layers, SDCN) is agnostic.
"""

from __future__ import annotations

import numpy as np

from ..index.base import INDEX_BACKENDS
from ..nn.sparse import CSRMatrix
from ..utils.metrics_dispatch import unit_rows as _unit_rows
from ..utils.metrics_dispatch import validate_metric as _validate_metric
from ..utils.validation import check_matrix

__all__ = [
    "cosine_similarity_matrix",
    "knn_graph",
    "sparse_knn_graph",
    "blocked_topk_neighbors",
    "ann_topk_neighbors",
    "normalized_adjacency",
]

#: Default number of rows per block for the blocked top-k search; bounds the
#: largest temporary at ``block_size * n`` floats.
DEFAULT_BLOCK_SIZE = 256

#: Graph-construction backends: ``exact`` is the blocked scan below; the
#: rest delegate the top-k search to a :mod:`repro.index` ANN backend.
GRAPH_BACKENDS = ("exact",) + INDEX_BACKENDS


def cosine_similarity_matrix(X) -> np.ndarray:
    """Dense cosine similarity between all rows of ``X`` (O(n^2) memory)."""
    X = check_matrix(X)
    unit = _unit_rows(X)
    return unit @ unit.T


def _validate_k(k: int, n: int) -> int:
    """Clamp ``k`` to the number of available neighbours."""
    if k < 1:
        raise ValueError("k must be >= 1")
    return min(k, n - 1) if n > 1 else 0


def blocked_topk_neighbors(X, k: int = 10, *, metric: str = "cosine",
                           block_size: int = DEFAULT_BLOCK_SIZE) -> np.ndarray:
    """Indices of the ``k`` most similar rows for every row of ``X``.

    Rows are processed in blocks of ``block_size``, so the largest temporary
    is a ``block_size x n`` similarity slab and the full n x n matrix is
    never materialised.  Self-similarity is excluded.  Returns an
    ``(n, k)`` int64 array; with fewer than ``k`` other points available the
    width shrinks accordingly (and is 0 for a single-row input).
    """
    X = check_matrix(X)
    n = X.shape[0]
    k = _validate_k(k, n)
    _validate_metric(metric)
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    if k == 0:
        return np.zeros((n, 0), dtype=np.int64)

    if metric == "cosine":
        unit = _unit_rows(X)
        reference = unit.T
        squared = None
    else:
        unit = X
        reference = X.T
        squared = np.sum(X ** 2, axis=1)

    neighbors = np.empty((n, k), dtype=np.int64)
    for start in range(0, n, block_size):
        stop = min(start + block_size, n)
        block = unit[start:stop] @ reference            # (b, n) slab
        if squared is not None:
            # Negated squared euclidean distance as a similarity.
            block *= 2.0
            block -= squared[None, :]
            block -= squared[start:stop, None]
        block[np.arange(stop - start), np.arange(start, stop)] = -np.inf
        top = np.argpartition(-block, kth=k - 1, axis=1)[:, :k]
        # Order each row's k candidates by decreasing similarity so the
        # result is deterministic regardless of the partition layout.
        order = np.argsort(
            np.take_along_axis(-block, top, axis=1), axis=1, kind="stable")
        neighbors[start:stop] = np.take_along_axis(top, order, axis=1)
    return neighbors


def ann_topk_neighbors(X, k: int = 10, *, metric: str = "cosine",
                       backend: str = "ivf",
                       index_params: dict | None = None) -> np.ndarray:
    """Approximate counterpart of :func:`blocked_topk_neighbors`.

    Builds a :mod:`repro.index` backend (``flat``, ``ivf`` or ``hnsw``)
    over ``X``, queries it with every row for ``k + 1`` neighbours, and
    strips each row's self-match — so the output has the same ``(n, k)``
    int64 shape and ordering contract as the exact path, with recall
    governed by the backend's parameters (``index_params``).  Sub-linear
    per-row work is what drops KNN-graph construction below the blocked
    exact scan's O(n^2 d) wall.
    """
    X = check_matrix(X)
    n = X.shape[0]
    k = _validate_k(k, n)
    _validate_metric(metric)
    if k == 0:
        return np.zeros((n, 0), dtype=np.int64)
    from ..index import create_index

    index = create_index(backend, metric=metric, **(index_params or {}))
    index.build(X)
    neighbors, _ = index.query(X, min(k + 1, n))
    # Drop each row's self-match (an approximate search may occasionally
    # miss it, in which case the row already holds foreign neighbours):
    # stable-sort non-self entries first, preserving distance order.
    non_self = neighbors != np.arange(n, dtype=np.int64)[:, None]
    order = np.argsort(~non_self, axis=1, kind="stable")
    return np.take_along_axis(neighbors, order, axis=1)[:, :k]


def knn_graph(X, k: int = 10, *, metric: str = "cosine",
              symmetric: bool = True) -> np.ndarray:
    """Dense binary adjacency connecting each point to its ``k`` neighbours.

    Self-loops are excluded here (the renormalisation in
    :func:`normalized_adjacency` adds them back).  With ``symmetric=True``
    (the default, and what SDCN uses) the union of the directed KNN relations
    is taken so the adjacency is symmetric.  Materialises O(n^2) memory; use
    :func:`sparse_knn_graph` past a few thousand rows.
    """
    X = check_matrix(X)
    n = X.shape[0]
    k = _validate_k(k, n)
    _validate_metric(metric)

    adjacency = np.zeros((n, n), dtype=np.float64)
    if k == 0:
        return adjacency
    if metric == "cosine":
        similarity = cosine_similarity_matrix(X)
    else:
        squared = np.sum(X ** 2, axis=1)
        d2 = squared[:, None] + squared[None, :] - 2.0 * (X @ X.T)
        np.maximum(d2, 0.0, out=d2)
        similarity = -d2

    np.fill_diagonal(similarity, -np.inf)
    # Indices of the k most similar neighbours per row.
    neighbors = np.argpartition(-similarity, kth=k - 1, axis=1)[:, :k]
    rows = np.repeat(np.arange(n), k)
    adjacency[rows, neighbors.ravel()] = 1.0
    if symmetric:
        adjacency = np.maximum(adjacency, adjacency.T)
    return adjacency


def sparse_knn_graph(X, k: int = 10, *, metric: str = "cosine",
                     symmetric: bool = True,
                     block_size: int = DEFAULT_BLOCK_SIZE,
                     backend: str = "exact",
                     index_params: dict | None = None) -> CSRMatrix:
    """Binary KNN adjacency as a :class:`~repro.nn.sparse.CSRMatrix`.

    With ``backend="exact"`` (the default) this is equivalent to
    ``CSRMatrix.from_dense(knn_graph(X, k))`` but built with the blocked
    search of :func:`blocked_topk_neighbors`, so peak memory is
    O(n * k + block_size * n) instead of O(n^2) — and the output is
    bit-identical to that path.  The other backends (``flat``, ``ivf``,
    ``hnsw``) route the top-k search through a :mod:`repro.index` vector
    index (:func:`ann_topk_neighbors`), trading a sliver of recall for
    sub-quadratic construction — the knob that keeps SDCN/EDESC graph
    building tractable as n grows.  ``index_params`` is passed to the
    index constructor (e.g. ``{"nprobe": 16}`` or ``{"m": 24}``).
    """
    X = check_matrix(X)
    n = X.shape[0]
    if backend not in GRAPH_BACKENDS:
        raise ValueError(
            f"unknown graph backend {backend!r}; expected one of "
            f"{GRAPH_BACKENDS}")
    if backend == "exact":
        neighbors = blocked_topk_neighbors(X, k, metric=metric,
                                           block_size=block_size)
    else:
        neighbors = ann_topk_neighbors(X, k, metric=metric, backend=backend,
                                       index_params=index_params)
    k_eff = neighbors.shape[1]
    rows = np.repeat(np.arange(n, dtype=np.int64), k_eff)
    cols = neighbors.ravel()
    if symmetric:
        # Union of the directed relations: A := max(A, A^T).  Duplicates
        # collapse through from_coo's merge; clip restores binary weights.
        rows, cols = np.concatenate([rows, cols]), np.concatenate([cols, rows])
    values = np.ones(rows.size, dtype=np.float64)
    graph = CSRMatrix.from_coo(rows, cols, values, (n, n))
    return CSRMatrix(np.minimum(graph.data, 1.0), graph.indices,
                     graph.indptr, graph.shape)


def normalized_adjacency(adjacency, *, add_self_loops: bool = True):
    """Symmetrically normalised adjacency used by GCN propagation.

    Accepts a dense square array or a :class:`~repro.nn.sparse.CSRMatrix`
    and returns the same representation:
    :math:`\\hat{A} = \\tilde{D}^{-1/2}(A + I)\\tilde{D}^{-1/2}` with
    :math:`\\tilde{D}` the degree matrix of ``A + I``.
    """
    if isinstance(adjacency, CSRMatrix):
        return _normalized_adjacency_sparse(adjacency,
                                            add_self_loops=add_self_loops)
    A = np.asarray(adjacency, dtype=np.float64)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ValueError("adjacency must be a square matrix")
    if add_self_loops:
        A = A + np.eye(A.shape[0])
    degrees = A.sum(axis=1)
    degrees = np.where(degrees == 0, 1.0, degrees)
    inv_sqrt = 1.0 / np.sqrt(degrees)
    return (A * inv_sqrt[:, None]) * inv_sqrt[None, :]


def _normalized_adjacency_sparse(adjacency: CSRMatrix, *,
                                 add_self_loops: bool = True) -> CSRMatrix:
    """Sparse version of :func:`normalized_adjacency` (O(nnz) memory)."""
    if adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError("adjacency must be a square matrix")
    A = adjacency.add_identity() if add_self_loops else adjacency
    degrees = A.sum_rows()
    degrees = np.where(degrees == 0, 1.0, degrees)
    inv_sqrt = 1.0 / np.sqrt(degrees)
    return A.scale_rows(inv_sqrt).scale_columns(inv_sqrt)
