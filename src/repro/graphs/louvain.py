"""Louvain community detection.

The paper builds the TUS schema-inference ground truth by connecting tables
whose unionable-column overlap exceeds 40% and clustering the resulting graph
with the Louvain algorithm (Blondel et al., 2008).  networkx provides the
reference implementation; this wrapper adapts it to the library's
matrix-based conventions and guarantees deterministic output for a fixed
seed.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

__all__ = ["louvain_communities"]


def louvain_communities(adjacency: np.ndarray, *, resolution: float = 1.0,
                        seed: int | None = None) -> np.ndarray:
    """Run Louvain on a weighted adjacency matrix and return node labels.

    Isolated nodes each receive their own community, matching the paper's
    treatment where single-table communities are excluded downstream by the
    dataset generator rather than by the community detector.
    """
    A = np.asarray(adjacency, dtype=np.float64)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ValueError("adjacency must be a square matrix")
    n = A.shape[0]
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    rows, cols = np.nonzero(np.triu(A, k=1))
    for i, j in zip(rows.tolist(), cols.tolist()):
        graph.add_edge(i, j, weight=float(A[i, j]))

    communities = nx.community.louvain_communities(
        graph, weight="weight", resolution=resolution,
        seed=0 if seed is None else seed)
    labels = np.full(n, -1, dtype=np.int64)
    for community_id, members in enumerate(communities):
        for node in members:
            labels[node] = community_id
    # Any node the algorithm somehow missed becomes its own community.
    missing = np.flatnonzero(labels < 0)
    next_id = labels.max() + 1 if labels.size else 0
    for offset, node in enumerate(missing):
        labels[node] = next_id + offset
    return labels
