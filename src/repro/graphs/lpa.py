"""Label propagation algorithms.

SHGP's Att-LPA module performs *structural clustering* by propagating labels
over the (attention-weighted) graph: every node starts in its own cluster and
iteratively adopts the label with the greatest (weighted) support among its
neighbours.  The resulting pseudo-labels supervise the Att-HGNN embedding
module.
"""

from __future__ import annotations

import numpy as np

from ..config import make_rng

__all__ = ["label_propagation", "attention_label_propagation"]


def label_propagation(adjacency: np.ndarray, *, max_iter: int = 30,
                      seed: int | None = None,
                      initial_labels: np.ndarray | None = None) -> np.ndarray:
    """Synchronous weighted label propagation over an adjacency matrix.

    Ties are broken towards the smallest label id to keep runs deterministic
    for a fixed seed.  Returns a label vector with consecutive ids starting
    at 0.
    """
    A = np.asarray(adjacency, dtype=np.float64)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ValueError("adjacency must be square")
    n = A.shape[0]
    rng = make_rng(seed)

    if initial_labels is None:
        labels = np.arange(n, dtype=np.int64)
    else:
        labels = np.asarray(initial_labels, dtype=np.int64).copy()
        if labels.shape != (n,):
            raise ValueError("initial_labels must have one entry per node")

    order = np.arange(n)
    for _ in range(max_iter):
        changed = False
        rng.shuffle(order)
        for node in order:
            weights = A[node]
            if weights.sum() == 0:
                continue
            # Support per label among the neighbours.
            unique = np.unique(labels[weights > 0])
            support = np.array([weights[labels == lab].sum() for lab in unique])
            best = unique[np.argmax(support)]
            if best != labels[node]:
                labels[node] = best
                changed = True
        if not changed:
            break

    _, consecutive = np.unique(labels, return_inverse=True)
    return consecutive.astype(np.int64)


def attention_label_propagation(adjacency: np.ndarray,
                                attention: np.ndarray | None = None,
                                *, max_iter: int = 30,
                                seed: int | None = None) -> np.ndarray:
    """Label propagation over an attention-weighted graph (SHGP's Att-LPA).

    ``attention`` must be broadcastable to the adjacency's shape; when given,
    edge weights become ``adjacency * attention`` so that edges the model
    attends to more strongly carry more votes.
    """
    A = np.asarray(adjacency, dtype=np.float64)
    if attention is not None:
        attention = np.asarray(attention, dtype=np.float64)
        A = A * attention
    return label_propagation(A, max_iter=max_iter, seed=seed)
