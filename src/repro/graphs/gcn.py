"""Graph convolutional layer (Kipf & Welling style) on the autograd substrate.

SDCN's structural branch stacks several of these layers; each layer applies
the fixed, pre-normalised propagation matrix to its input followed by a dense
transform and non-linearity.  The propagation matrix may be a dense numpy
array or a :class:`~repro.nn.sparse.CSRMatrix`; the sparse form keeps the
propagation at O(nnz) time and memory.
"""

from __future__ import annotations

import numpy as np

from ..nn.layers import Linear, Module
from ..nn.sparse import CSRMatrix, sparse_matmul
from ..nn.tensor import Tensor

__all__ = ["GCNLayer"]


class GCNLayer(Module):
    """Single GCN layer: ``activation(A_hat @ X @ W)``.

    The propagation matrix ``A_hat`` is treated as a constant (no gradient),
    exactly as in SDCN where the KNN graph is fixed before training.
    """

    def __init__(self, in_features: int, out_features: int, *,
                 activation=None, seed: int | None = None) -> None:
        """Create the dense transform ``W`` and remember the activation."""
        self.linear = Linear(in_features, out_features, bias=False, seed=seed)
        self.activation = activation

    def forward(self, x: Tensor, adjacency) -> Tensor:
        """Propagate ``x`` through the graph.

        ``adjacency`` is the pre-normalised propagation matrix, either a
        dense ``(n, n)`` array or a :class:`~repro.nn.sparse.CSRMatrix`
        with matching shape; ``x`` has shape ``(n, in_features)``.
        """
        transformed = self.linear(x)
        if isinstance(adjacency, CSRMatrix):
            propagated = sparse_matmul(adjacency, transformed)
        else:
            adjacency_t = Tensor(np.asarray(adjacency, dtype=np.float64))
            propagated = adjacency_t @ transformed
        if self.activation is not None:
            propagated = self.activation(propagated)
        return propagated
