"""Graph convolutional layer (Kipf & Welling style) on the autograd substrate.

SDCN's structural branch stacks several of these layers; each layer applies
the fixed, pre-normalised propagation matrix to its input followed by a dense
transform and non-linearity.
"""

from __future__ import annotations

import numpy as np

from ..nn.layers import Linear, Module
from ..nn.tensor import Tensor

__all__ = ["GCNLayer"]


class GCNLayer(Module):
    """Single GCN layer: ``activation(A_hat @ X @ W)``.

    The propagation matrix ``A_hat`` is treated as a constant (no gradient),
    exactly as in SDCN where the KNN graph is fixed before training.
    """

    def __init__(self, in_features: int, out_features: int, *,
                 activation=None, seed: int | None = None) -> None:
        self.linear = Linear(in_features, out_features, bias=False, seed=seed)
        self.activation = activation

    def forward(self, x: Tensor, adjacency: np.ndarray) -> Tensor:
        adjacency_t = Tensor(np.asarray(adjacency, dtype=np.float64))
        propagated = adjacency_t @ self.linear(x)
        if self.activation is not None:
            propagated = self.activation(propagated)
        return propagated
