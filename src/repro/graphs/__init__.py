"""Graph substrates used by the deep clustering models and benchmarks.

* :mod:`repro.graphs.knn` — K-nearest-neighbour graph construction, the
  structural input of SDCN: a dense O(n^2) path, a blocked/sparse CSR
  path with O(n * k) memory, and ANN-accelerated backends
  (``backend="ivf"|"hnsw"`` via :mod:`repro.index`) for sub-quadratic
  construction at scale.
* :mod:`repro.graphs.gcn` — graph convolutional layer built on
  :mod:`repro.nn`, used by SDCN's GCN branch (dense or sparse propagation).
* :mod:`repro.graphs.lpa` — label propagation, the structural clustering at
  the heart of SHGP's Att-LPA module.
* :mod:`repro.graphs.louvain` — Louvain community detection, used to derive
  the TUS benchmark's union-ability ground truth (Section 5).
* :mod:`repro.graphs.hin` — a small heterogeneous information network model
  for SHGP.
"""

from .knn import (
    ann_topk_neighbors,
    blocked_topk_neighbors,
    cosine_similarity_matrix,
    knn_graph,
    normalized_adjacency,
    sparse_knn_graph,
)
from .gcn import GCNLayer
from .lpa import label_propagation, attention_label_propagation
from .louvain import louvain_communities
from .hin import HeterogeneousGraph, NodeType

__all__ = [
    "knn_graph",
    "sparse_knn_graph",
    "blocked_topk_neighbors",
    "ann_topk_neighbors",
    "normalized_adjacency",
    "cosine_similarity_matrix",
    "GCNLayer",
    "label_propagation",
    "attention_label_propagation",
    "louvain_communities",
    "HeterogeneousGraph",
    "NodeType",
]
