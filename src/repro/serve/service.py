"""Request handling behind the HTTP façade: payload -> matrix -> labels.

:class:`PredictService` ties the three serving pieces together: the
:class:`~repro.serve.registry.ModelRegistry` resolves a model name to a
loaded checkpoint, the single-item embedding path
(:func:`repro.embeddings.embed_items`) turns raw JSON items into vectors in
the model's training space, and a per-model
:class:`~repro.serve.batching.MicroBatcher` coalesces concurrent predict
calls into shared forward passes.  The service is transport-agnostic — the
stdlib HTTP server calls it, and tests / benchmarks can call it directly.

Raw-item predictions are additionally memoised in :mod:`repro.cache` under
the ``model/<name>/`` namespace: a hot item asked of the same checkpoint
generation skips the embed *and* the forward pass entirely.  The keys bake
in the loaded generation and file mtime (so two generations can never
serve each other's labels), and the registry's hot-reload swap invalidates
the whole namespace as belt-and-braces hygiene.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time

import numpy as np

from ..cache import get_cache
from ..embeddings import embed_items
from ..exceptions import ServingError
from ..index import VectorIndex
from ..obs.metrics import get_registry, obs_enabled
from ..obs.trace import get_trace_store, span
from .batching import MicroBatcher
from .registry import LoadedModel, ModelRegistry

__all__ = ["PredictService"]

#: Upper bound on the per-request neighbour count; keeps one hostile
#: request from forcing a near-full-corpus sort per query row.
_MAX_NEIGHBORS = 1024

#: Payload fields recognised as per-request index tunables.  Which of
#: them a given request may use is decided by the *index* (its
#: ``query_tunables`` contract): ``nprobe``/``rerank`` for the IVF
#: family, ``ef_search`` for HNSW.
_TUNABLE_FIELDS = ("ef_search", "nprobe", "rerank")

#: Upper bound on any tunable value: the backends clamp internally, but
#: rejecting absurd values here keeps one hostile request from forcing a
#: full-corpus rerank per query row.
_MAX_TUNABLE = 1_000_000


class PredictService:
    """Resolve, embed and micro-batch predict requests for a model directory.

    Parameters
    ----------
    registry:
        The model registry to resolve names against.
    max_batch_rows, max_delay:
        Micro-batching knobs, applied to every model's batcher; see
        :class:`~repro.serve.batching.MicroBatcher`.  ``max_delay=0`` still
        coalesces whatever is queued concurrently but never lingers.
    micro_batching:
        Set ``False`` to bypass batchers entirely (one forward per request)
        — the baseline mode the serving benchmark compares against.
    """

    def __init__(self, registry: ModelRegistry, *,
                 max_batch_rows: int = 256, max_delay: float = 0.002,
                 micro_batching: bool = True,
                 identity: dict | None = None) -> None:
        self.registry = registry
        self.max_batch_rows = max_batch_rows
        self.max_delay = max_delay
        self.micro_batching = micro_batching
        #: Free-form keys merged into the health payload; the worker pool
        #: stamps ``{"worker": index, "pid": ...}`` so /healthz identifies
        #: which process answered.
        self.identity = dict(identity or {})
        # One batcher per *load* of a model (and, for vector indexes, per
        # requested k — rows in one coalesced query must share their k).
        # Keyed by the LoadedModel entry itself (identity-hashed, strong
        # reference — no id() reuse hazard) plus the k discriminator, and
        # retired through the registry's eviction hook, so an evicted or
        # reloaded model never stays pinned by its old batcher and never
        # serves stale weights.
        self._batchers: dict[tuple[LoadedModel, int | None],
                             MicroBatcher] = {}
        # Memoised /search index resolution, keyed by the directory
        # listing it was derived from (see _only_index_name).
        self._index_names_cache: tuple[tuple[str, ...], list[str]] | None = \
            None
        self._lock = threading.Lock()
        registry_obs = get_registry()
        self._m_requests = registry_obs.counter(
            "repro_predict_requests_total",
            "Service-level requests by kind and model", ("kind", "model"))
        self._m_cache_hits = registry_obs.counter(
            "repro_predict_cache_hits_total",
            "Raw-item predict requests answered from the memo cache",
            ("model",))
        self._m_embed = registry_obs.histogram(
            "repro_embed_seconds",
            "Raw-item embedding time per request", ("model",))
        # Chain rather than replace any caller-installed eviction hook.
        previous_hook = registry.on_evict

        def _on_evict(entry: LoadedModel) -> None:
            self._retire_batcher(entry)
            if previous_hook is not None:
                previous_hook(entry)

        registry.on_evict = _on_evict

    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Liveness payload for ``GET /healthz``."""
        return {
            "status": "ok",
            "model_dir": str(self.registry.model_dir),
            "models": len(self.registry),
            "loaded": self.registry.loaded_names,
            "micro_batching": self.micro_batching,
            **self.identity,
        }

    def models(self) -> list[dict]:
        """Model summaries for ``GET /models``."""
        return self.registry.describe()

    def predict(self, name: str, payload: dict) -> dict:
        """Answer one ``POST /models/{name}/predict`` payload.

        ``payload`` provides either ``"vectors"`` (pre-embedded rows in the
        model's training space) or ``"items"`` (raw tables/records/columns,
        embedded via the task/embedding recorded in the checkpoint
        metadata).  Returns the JSON-able response body.
        """
        loaded = self.registry.get(name)
        if isinstance(loaded.model, VectorIndex):
            raise ServingError(
                f"model {name!r} is a vector index; use POST "
                f"/models/{name}/neighbors or POST /search")
        self._m_requests.inc(kind="predict", model=name)
        cache_key = self._items_cache_key(loaded, payload)
        labels = get_cache().get(cache_key) if cache_key is not None else None
        if labels is not None:
            self._m_cache_hits.inc(model=name)
        if labels is None:
            matrix = self._matrix_from_payload(loaded, payload)
            if self.micro_batching:
                labels = self._batched_predict(loaded, matrix)
            else:
                labels = loaded.model.predict(matrix)
            labels = np.asarray(labels)
            if cache_key is not None:
                get_cache().put(cache_key, labels)
        return {
            "model": name,
            "n_items": int(labels.shape[0]),
            "labels": [int(label) for label in labels],
        }

    def neighbors(self, name: str, payload: dict) -> dict:
        """Answer one ``POST /models/{name}/neighbors`` payload.

        ``name`` must resolve to a checkpointed :class:`~repro.index`
        vector index.  The payload provides ``"vectors"`` or ``"items"``
        exactly like predict, plus an optional ``"k"`` (default 10) and
        any per-request tunables the index supports (``nprobe``,
        ``ef_search``, ``rerank`` — validated against the backend's
        contract, defaulting to its build-time settings).  Concurrent
        requests with the same ``k`` *and* tunables are micro-batched
        into shared index queries.  Returns ids, positions and distances
        per query row, each row ordered nearest first.
        """
        loaded = self.registry.get(name)
        index = loaded.model
        if not isinstance(index, VectorIndex):
            raise ServingError(
                f"model {name!r} is a {type(index).__name__}, not a vector "
                f"index; use POST /models/{name}/predict")
        self._m_requests.inc(kind="neighbors", model=name)
        k = payload.get("k", 10) if isinstance(payload, dict) else 10
        if not isinstance(k, int) or isinstance(k, bool) or \
                not 1 <= k <= _MAX_NEIGHBORS:
            raise ServingError(
                f"'k' must be an integer in [1, {_MAX_NEIGHBORS}], got {k!r}")
        tunables = self._query_tunables(index, name, payload)
        matrix = self._matrix_from_payload(loaded, payload)
        if self.micro_batching:
            packed = self._batched_neighbors(loaded, matrix, k, tunables)
            positions = packed[:, 0].astype(np.int64)
            distances = packed[:, 1]
        else:
            positions, distances = index.query(matrix, k, **tunables)
        response = {
            "model": name,
            "n_items": int(positions.shape[0]),
            "k": int(positions.shape[1]),
            "ids": index.ids[positions].tolist(),
            "positions": positions.tolist(),
            "distances": distances.tolist(),
        }
        if tunables:
            response["tunables"] = tunables
        return response

    @staticmethod
    def _query_tunables(index: VectorIndex, name: str,
                        payload) -> dict[str, int]:
        """Validated per-request tunables from a neighbors/search payload.

        Unsupported fields fail loudly (a typo'd ``nprobe`` on an HNSW
        index should be a 400, not a silently ignored knob); values must
        be integers within the backend's declared minimum and a global
        sanity cap.
        """
        if not isinstance(payload, dict):
            return {}
        supported = index.query_tunables
        tunables: dict[str, int] = {}
        for field in _TUNABLE_FIELDS:
            value = payload.get(field)
            if value is None:
                continue
            minimum = supported.get(field)
            if minimum is None:
                accepted = ", ".join(sorted(supported)) or "none"
                raise ServingError(
                    f"index {name!r} ({index.backend}) does not support "
                    f"the {field!r} tunable; it accepts: {accepted}")
            if not isinstance(value, int) or isinstance(value, bool) or \
                    not minimum <= value <= _MAX_TUNABLE:
                raise ServingError(
                    f"{field!r} must be an integer in "
                    f"[{minimum}, {_MAX_TUNABLE}], got {value!r}")
            tunables[field] = value
        return tunables

    def search(self, payload: dict) -> dict:
        """Answer one ``POST /search`` payload (similarity search).

        Like :meth:`neighbors`, but the index is named in the body
        (``"index"``) rather than the path — and when the model directory
        serves exactly one vector index, the name can be omitted entirely:
        embed the raw item(s), return the nearest corpus items.
        """
        if not isinstance(payload, dict):
            raise ServingError("request body must be a JSON object")
        name = payload.get("index")
        if name is None:
            name = self._only_index_name()
        elif not isinstance(name, str):
            raise ServingError("'index' must be a model name string")
        return {"index": name, **self.neighbors(name, payload)}

    def _only_index_name(self) -> str:
        """The single served vector index (error if zero or ambiguous).

        Header reads (file open + JSON parse per checkpoint) are paid only
        when the directory *listing* changes, not per request: a rotated
        generation keeps its name and kind, so the name -> is-index
        classification is stable for a given listing.
        """
        from ..serialize import SerializationError, read_checkpoint_header

        names = tuple(self.registry.names())
        with self._lock:
            cached = self._index_names_cache
            if cached is not None and cached[0] == names:
                indexes = cached[1]
            else:
                indexes = None
        if indexes is None:
            indexes = []
            for name in names:
                try:
                    header = read_checkpoint_header(
                        self.registry.model_dir / f"{name}.npz")
                except SerializationError:
                    continue
                if header.get("metadata", {}).get("kind") == "vector-index":
                    indexes.append(name)
            with self._lock:
                self._index_names_cache = (names, indexes)
        if len(indexes) == 1:
            return indexes[0]
        if not indexes:
            raise ServingError(
                f"no vector index in {self.registry.model_dir}; save one "
                "with 'repro train --save ... --with-index'")
        raise ServingError(
            f"multiple vector indexes served ({sorted(indexes)}); name one "
            "with the 'index' field")

    def stats(self) -> dict:
        """Per-model micro-batching counters (for diagnostics and benches)."""
        with self._lock:
            batchers = list(self._batchers.values())
        return {batcher.name: batcher.stats.as_dict() for batcher in batchers}

    def stats_payload(self, verbose: bool = False) -> dict:
        """The ``GET /stats`` body: batcher counters plus identity.

        ``verbose`` additionally attaches the slowest-request span
        breakdowns from the process trace store (``/stats?verbose=1``).
        """
        payload: dict = {"batchers": self.stats()}
        if self.identity:
            payload["identity"] = dict(self.identity)
        if verbose:
            payload["traces"] = get_trace_store().snapshot()
        return payload

    def close(self) -> None:
        """Shut down every batcher's collector thread."""
        with self._lock:
            batchers = list(self._batchers.values())
            self._batchers.clear()
        for batcher in batchers:
            batcher.close()

    def __enter__(self) -> "PredictService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _batched_predict(self, loaded: LoadedModel,
                         matrix: np.ndarray) -> np.ndarray:
        # An eviction can close the batcher between lookup and submit;
        # the registry still has (or will reload) the model, so retry with
        # a fresh batcher rather than failing the request.
        for _ in range(3):
            try:
                result = self._batcher_for(loaded).submit(matrix)
            except ServingError as exc:
                if "closed" not in str(exc):
                    raise
                loaded = self.registry.get(loaded.name)
                continue
            if not self.registry.is_current(loaded):
                # Lost a race with an eviction that ran before the batcher
                # existed: retire the orphan now so it cannot pin the stale
                # model or accumulate in the stats.
                self._retire_batcher(loaded)
            return result
        return loaded.model.predict(matrix)

    def _batched_neighbors(self, loaded: LoadedModel, matrix: np.ndarray,
                           k: int, tunables: dict[str, int]) -> np.ndarray:
        # Same eviction-race discipline as _batched_predict: a closed
        # batcher means the load was retired, so resolve afresh and retry.
        for _ in range(3):
            try:
                result = self._neighbor_batcher_for(
                    loaded, k, tunables).submit(matrix)
            except ServingError as exc:
                if "closed" not in str(exc):
                    raise
                loaded = self.registry.get(loaded.name)
                continue
            if not self.registry.is_current(loaded):
                self._retire_batcher(loaded)
            return result
        positions, distances = loaded.model.query(matrix, k, **tunables)
        return np.stack([positions.astype(np.float64), distances], axis=1)

    def _batcher_for(self, loaded: LoadedModel) -> MicroBatcher:
        with self._lock:
            batcher = self._batchers.get((loaded, None))
            if batcher is None:
                batcher = MicroBatcher(loaded.model.predict,
                                       max_batch_rows=self.max_batch_rows,
                                       max_delay=self.max_delay,
                                       name=loaded.name)
                self._batchers[loaded, None] = batcher
            return batcher

    def _neighbor_batcher_for(self, loaded: LoadedModel, k: int,
                              tunables: dict[str, int]) -> MicroBatcher:
        index = loaded.model

        def query_rows(X: np.ndarray) -> np.ndarray:
            positions, distances = index.query(X, k, **tunables)
            # Packed as one (rows, 2, k) array so the MicroBatcher can
            # hand each caller its row slice of a shared query.
            return np.stack([positions.astype(np.float64), distances],
                            axis=1)

        # Tunables join the batcher key: rows coalesced into one index
        # query must share their recall/latency settings, not just k.
        knobs = tuple(sorted(tunables.items()))
        suffix = "".join(f"&{field}={value}" for field, value in knobs)
        with self._lock:
            batcher = self._batchers.get((loaded, k, knobs))
            if batcher is None:
                batcher = MicroBatcher(query_rows,
                                       max_batch_rows=self.max_batch_rows,
                                       max_delay=self.max_delay,
                                       name=f"{loaded.name}#k={k}{suffix}")
                self._batchers[loaded, k, knobs] = batcher
            return batcher

    def _retire_batcher(self, loaded: LoadedModel) -> None:
        """Registry eviction hook: drop and stop the entry's batcher(s)."""
        with self._lock:
            keys = [key for key in self._batchers if key[0] is loaded]
            batchers = [self._batchers.pop(key) for key in keys]
        for batcher in batchers:
            batcher.close()

    @staticmethod
    def _items_cache_key(loaded: LoadedModel, payload) -> str | None:
        """Cache key memoising one raw-items payload's labels (or ``None``).

        Only well-formed ``items`` payloads are memoised (everything else
        falls through to the validating path).  The key bakes in the
        loaded checkpoint's generation *and* file mtime, so a hot-swapped
        model — even one overwritten in place without advancing the
        generation counter — can never serve a predecessor's labels; the
        registry additionally drops the whole ``model/<name>/`` namespace
        on swap so retired entries don't linger in the LRU.
        """
        if not isinstance(payload, dict):
            return None
        items = payload.get("items")
        if not isinstance(items, list) or not items:
            return None
        try:
            fingerprint = hashlib.sha256(json.dumps(
                items, sort_keys=True, default=str).encode("utf-8")
            ).hexdigest()
        except (TypeError, ValueError):
            return None
        return (f"model/{loaded.name}/predict/"
                f"gen{loaded.generation}.{loaded.mtime_ns}/{fingerprint}")

    def _matrix_from_payload(self, loaded: LoadedModel,
                             payload: dict) -> np.ndarray:
        if not isinstance(payload, dict):
            raise ServingError("request body must be a JSON object")
        if "vectors" in payload:
            try:
                matrix = np.atleast_2d(
                    np.asarray(payload["vectors"], dtype=np.float64))
            except (TypeError, ValueError) as exc:
                raise ServingError(f"'vectors' is not numeric: {exc}") from exc
            if matrix.ndim != 2 or 0 in matrix.shape:
                raise ServingError("'vectors' must be a non-empty 2-D array")
            # Reject wrong-width vectors *before* they join a shared
            # micro-batch, where the stacking error would propagate to every
            # concurrent (innocent) request in the same tick.
            expected = loaded.metadata.get("n_features")
            if expected is not None and matrix.shape[1] != expected:
                raise ServingError(
                    f"'vectors' have {matrix.shape[1]} features; model "
                    f"{loaded.name!r} expects {expected}")
            return matrix
        if "items" in payload:
            items = payload["items"]
            if not isinstance(items, list) or not items:
                raise ServingError("'items' must be a non-empty list")
            metadata = loaded.metadata
            task = metadata.get("task")
            embedding = metadata.get("embedding")
            if not task or not embedding:
                raise ServingError(
                    f"model {loaded.name!r} was saved without task/embedding "
                    "metadata; send pre-embedded 'vectors' instead")
            if not obs_enabled():
                return embed_items(task, embedding, items)
            started = time.perf_counter()
            with span("embed.items", model=loaded.name, n_items=len(items)):
                matrix = embed_items(task, embedding, items)
            self._m_embed.observe(time.perf_counter() - started,
                                  model=loaded.name)
            return matrix
        raise ServingError("request body must contain 'vectors' or 'items'")
