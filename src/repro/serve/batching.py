"""Micro-batching: coalesce concurrent predict requests into one forward.

Single-row predictions are overhead-dominated — the fixed cost of a forward
pass (python dispatch, distance-matrix setup, encoder layers) dwarfs the
per-row cost.  :class:`MicroBatcher` exploits that: concurrent callers hand
their rows to a collector thread which lingers for at most ``max_delay``
seconds (bounded latency), stacks everything that arrived into one matrix
(bounded by ``max_batch_rows``), runs the model's ``predict`` once, and
hands each caller its slice of the result.

The same pattern drives throughput-first model serving systems; here it is
implemented with nothing but :mod:`threading` so the stdlib HTTP server's
request threads can share one model forward per tick.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..exceptions import ServingError
from ..obs.metrics import get_registry, obs_enabled
from ..obs.trace import current_trace

__all__ = ["BatchStats", "MicroBatcher"]


@dataclass
class BatchStats:
    """Counters describing how a batcher has coalesced its traffic."""

    requests: int = 0
    rows: int = 0
    batches: int = 0
    max_batch_rows: int = 0

    def as_dict(self) -> dict[str, float]:
        mean = (self.rows / self.batches) if self.batches else 0.0
        return {
            "requests": self.requests,
            "rows": self.rows,
            "batches": self.batches,
            "max_batch_rows": self.max_batch_rows,
            "mean_batch_rows": round(mean, 3),
        }


class _Pending:
    """One caller's rows plus the rendezvous for its slice of the result."""

    __slots__ = ("rows", "event", "result", "error", "enqueued",
                 "batch_started", "batch_done")

    def __init__(self, rows: np.ndarray) -> None:
        self.rows = rows
        self.event = threading.Event()
        self.result: np.ndarray | None = None
        self.error: BaseException | None = None
        # Observability stamps (perf_counter): set at enqueue / by the
        # collector thread, read back in the submitting thread so spans
        # land on the request's contextvar trace.
        self.enqueued = time.perf_counter()
        self.batch_started: float | None = None
        self.batch_done: float | None = None


class MicroBatcher:
    """Coalesce concurrent ``submit`` calls into batched ``predict_fn`` calls.

    Parameters
    ----------
    predict_fn:
        Callable mapping an ``(n, d)`` matrix to ``n`` per-row outputs
        (e.g. a fitted model's ``predict``).  Called from the collector
        thread, one invocation per coalesced batch.
    max_batch_rows:
        Upper bound on the rows stacked into one forward pass.
    max_delay:
        Maximum time (seconds) the collector lingers for more requests
        after the first one arrives — the latency bound.
    name:
        Optional label for diagnostics (the serving layer uses the model
        name).
    """

    def __init__(self, predict_fn: Callable[[np.ndarray], np.ndarray], *,
                 max_batch_rows: int = 256, max_delay: float = 0.002,
                 name: str | None = None) -> None:
        if max_batch_rows < 1:
            raise ServingError("max_batch_rows must be >= 1")
        if max_delay < 0:
            raise ServingError("max_delay must be non-negative")
        self._predict_fn = predict_fn
        self.max_batch_rows = int(max_batch_rows)
        self.max_delay = float(max_delay)
        self.name = name
        self.stats = BatchStats()
        # Metric family handles are resolved once; label values per call.
        registry = get_registry()
        self._obs_label = name or "default"
        self._m_queue_wait = registry.histogram(
            "repro_batch_queue_wait_seconds",
            "Time a request spent queued before its batch started",
            ("batcher",))
        self._m_forward = registry.histogram(
            "repro_batch_forward_seconds",
            "Model forward time per coalesced batch", ("batcher",))
        self._m_batches = registry.counter(
            "repro_batch_batches_total", "Coalesced batches executed",
            ("batcher",))
        self._m_rows = registry.counter(
            "repro_batch_rows_total", "Rows predicted through the batcher",
            ("batcher",))
        self._cond = threading.Condition()
        self._pending: deque[_Pending] = deque()
        self._closed = False
        self._thread = threading.Thread(target=self._worker,
                                        name="repro-microbatcher", daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------
    def submit(self, rows) -> np.ndarray:
        """Block until ``rows`` (``(k, d)`` or ``(d,)``) are predicted.

        Thread-safe; concurrent callers are coalesced.  Exceptions raised by
        ``predict_fn`` propagate to every caller whose rows were in the
        failing batch.
        """
        matrix = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        item = _Pending(matrix)
        with self._cond:
            if self._closed:
                raise ServingError("MicroBatcher is closed")
            self._pending.append(item)
            self._cond.notify_all()
        item.event.wait()
        if obs_enabled() and item.batch_started is not None:
            # Spans are recorded here, in the submitting thread, because
            # the contextvar trace is request-scoped: the collector thread
            # only stamps timestamps onto the _Pending.
            self._m_queue_wait.observe(item.batch_started - item.enqueued,
                                       batcher=self._obs_label)
            trace = current_trace()
            if trace is not None:
                trace.record_span("queue.wait", item.enqueued,
                                  item.batch_started,
                                  batcher=self._obs_label)
                if item.batch_done is not None:
                    trace.record_span("batch.forward", item.batch_started,
                                      item.batch_done,
                                      batcher=self._obs_label,
                                      rows=int(item.rows.shape[0]))
        if item.error is not None:
            raise item.error
        return item.result

    def close(self) -> None:
        """Stop the collector thread; pending requests are still served."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._thread.join()

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _pending_rows(self) -> int:
        return sum(item.rows.shape[0] for item in self._pending)

    def _worker(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait()
                if not self._pending and self._closed:
                    return
                # Linger (bounded) so concurrent callers can pile on; wake
                # early once the batch is full or the batcher is closing.
                deadline = time.monotonic() + self.max_delay
                while (not self._closed
                       and self._pending_rows() < self.max_batch_rows):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
                batch: list[_Pending] = []
                taken = 0
                while self._pending:
                    rows = self._pending[0].rows.shape[0]
                    if batch and taken + rows > self.max_batch_rows:
                        break
                    batch.append(self._pending.popleft())
                    taken += rows
            self._run_batch(batch)

    def _run_batch(self, batch: list[_Pending]) -> None:
        started = time.perf_counter()
        try:
            # The stack itself can fail (e.g. mismatched row widths that
            # upstream validation could not catch); it must propagate to the
            # waiting callers, not kill the collector thread — submitters
            # wait on their events with no timeout.
            stacked = (batch[0].rows if len(batch) == 1
                       else np.vstack([item.rows for item in batch]))
            output = np.asarray(self._predict_fn(stacked))
            if output.shape[0] != stacked.shape[0]:
                raise ServingError(
                    f"predict_fn returned {output.shape[0]} outputs for "
                    f"{stacked.shape[0]} rows")
        except BaseException as exc:  # propagate to every waiting caller
            for item in batch:
                item.error = exc
                item.batch_started = started
                item.event.set()
            return
        done = time.perf_counter()
        if obs_enabled():
            self._m_forward.observe(done - started, batcher=self._obs_label)
            self._m_batches.inc(batcher=self._obs_label)
            self._m_rows.inc(stacked.shape[0], batcher=self._obs_label)
        with self._cond:
            self.stats.requests += len(batch)
            self.stats.rows += stacked.shape[0]
            self.stats.batches += 1
            self.stats.max_batch_rows = max(self.stats.max_batch_rows,
                                            stacked.shape[0])
        offset = 0
        for item in batch:
            size = item.rows.shape[0]
            item.result = output[offset:offset + size]
            item.batch_started = started
            item.batch_done = done
            offset += size
            item.event.set()
