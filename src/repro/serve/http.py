"""Stdlib JSON-over-HTTP front end for the online inference service.

Endpoints (all responses ``application/json``):

``GET /healthz``
    Liveness: status, model count, resident models.
``GET /models``
    One summary per checkpoint in the model directory (header metadata
    only; nothing is deserialised).
``POST /models/{name}/predict``
    Body ``{"vectors": [[...], ...]}`` for pre-embedded rows or
    ``{"items": [{...}, ...]}`` for raw tables/records/columns, which are
    embedded with the task/embedding recorded in the checkpoint.  Response:
    ``{"model", "n_items", "labels"}``.
``POST /models/{name}/neighbors``
    Similarity search against a checkpointed :mod:`repro.index` vector
    index: same ``vectors``/``items`` body plus an optional ``"k"``
    (default 10).  Response: ``{"model", "n_items", "k", "ids",
    "positions", "distances"}`` — per query row, nearest first.
``POST /search``
    Like ``neighbors`` with the index named in the body (``"index"``) —
    or omitted entirely when exactly one index is served.  The
    embed-raw-item -> top-k-corpus-items route for end users.
``GET /stats``
    Micro-batching counters per model (``{"batchers": ...}``);
    ``?verbose=1`` adds the slowest-request span breakdowns from the
    process trace store.
``GET /metrics``
    Prometheus text exposition of the process metrics registry;
    ``?format=json`` returns the raw registry snapshot (what the pool
    router aggregates).

Every POST opens a request trace: an incoming ``X-Repro-Trace`` header
(from the pool router) is adopted, otherwise a trace id is minted here,
and the id is echoed on the response so clients can correlate their
request with the span breakdowns under ``/stats?verbose=1``.

Built on :class:`http.server.ThreadingHTTPServer` — one thread per request,
with the :class:`~repro.serve.service.PredictService` micro-batcher
coalescing concurrent forwards — so serving needs no dependencies beyond
the standard library and numpy.
"""

from __future__ import annotations

import json
import re
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs

from ..exceptions import (
    EmbeddingError,
    SerializationError,
    ServingError,
    VectorIndexError,
)
from ..obs.metrics import get_registry, obs_enabled, render_prometheus
from ..obs.trace import TRACE_HEADER, request_trace, valid_trace_id
from .registry import ModelRegistry
from .service import PredictService

__all__ = ["ReproHTTPServer", "create_server", "query_flag",
           "query_value", "read_request_body"]

_PREDICT_ROUTE = re.compile(r"^/models/([A-Za-z0-9._-]+)/predict/?$")
_NEIGHBORS_ROUTE = re.compile(r"^/models/([A-Za-z0-9._-]+)/neighbors/?$")

#: Upper bound on accepted request bodies: large enough for thousands of
#: embedded rows, small enough that a hostile Content-Length cannot exhaust
#: memory (one buffered body per request thread).
_MAX_BODY_BYTES = 32 * 1024 * 1024

#: Prometheus exposition content type.
_PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def query_flag(query: str, name: str) -> bool:
    """True when ``name`` appears truthy in a raw query string."""
    values = parse_qs(query).get(name)
    if not values:
        return False
    return values[-1].lower() not in ("0", "false", "no", "")


def query_value(query: str, name: str) -> str | None:
    """Last value of ``name`` in a raw query string, or None."""
    values = parse_qs(query).get(name)
    return values[-1] if values else None


class ReproHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server carrying the shared :class:`PredictService`."""

    daemon_threads = True
    #: The socketserver default backlog of 5 resets connections under a
    #: concurrent burst (the hot-reload guarantee is exercised with 100
    #: simultaneous clients); a deeper accept queue just parks them.
    request_queue_size = 128

    def __init__(self, address, handler, service: PredictService) -> None:
        super().__init__(address, handler)
        self.service = service

    def server_close(self) -> None:
        """Close the socket, the hot-reload watcher and the batcher threads.

        ``TCPServer.__init__`` calls this on a failed bind, *before* our
        ``__init__`` assigned ``service`` — guard it so the caller sees the
        bind error (address in use) rather than an ``AttributeError``.
        """
        super().server_close()
        service = getattr(self, "service", None)
        if service is not None:
            service.registry.stop_hot_reload()
            service.close()


def read_request_body(handler: BaseHTTPRequestHandler) -> bytes | None:
    """Drain and return the request body, enforcing the size limit.

    Returns ``None`` after answering the client itself (bad or hostile
    Content-Length, unreadable socket) — callers just return.  Shared by
    the single-process handler and the pool router, which must apply the
    same draining discipline before proxying: answering before consuming
    Content-Length bytes desyncs HTTP/1.1 keep-alive connections (the next
    request would be parsed starting at the leftover body).

    The handler must provide ``_send_error_json(status, message)``.
    """
    try:
        length = int(handler.headers.get("Content-Length", 0))
    except ValueError as exc:
        handler._send_error_json(400, f"bad Content-Length: {exc}")
        return None
    if length < 0:
        # rfile.read(-1) would block reading until EOF, pinning the
        # handler thread for as long as the client holds the socket.
        handler.close_connection = True
        handler._send_error_json(400, f"bad Content-Length: {length}")
        return None
    if length > _MAX_BODY_BYTES:
        # Answer without reading; the connection cannot be reused after
        # an undrained body, so close it explicitly.
        handler.close_connection = True
        handler._send_error_json(
            413, f"request body of {length} bytes exceeds the "
                 f"{_MAX_BODY_BYTES} byte limit")
        return None
    try:
        return handler.rfile.read(length) if length else b""
    except OSError as exc:
        handler._send_error_json(400, f"unreadable request body: {exc}")
        return None


class _Handler(BaseHTTPRequestHandler):
    """Route the three endpoints; every error is a JSON body too."""

    server: ReproHTTPServer
    protocol_version = "HTTP/1.1"
    #: Quiet by default; flip for debugging.
    verbose = False

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.verbose:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    def _send_json(self, status: int, body: dict | list) -> None:
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        trace_id = getattr(self, "_trace_id", None)
        if trace_id:
            self.send_header(TRACE_HEADER, trace_id)
        self.end_headers()
        self.wfile.write(data)
        self._status = status

    def _send_text(self, status: int, text: str,
                   content_type: str = _PROMETHEUS_CONTENT_TYPE) -> None:
        data = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)
        self._status = status

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _observe_request(self, endpoint: str, started: float) -> None:
        if not obs_enabled():
            return
        registry = get_registry()
        registry.counter(
            "repro_http_requests_total", "HTTP requests handled",
            ("endpoint", "status")).inc(
                endpoint=endpoint, status=getattr(self, "_status", 0))
        registry.histogram(
            "repro_http_request_seconds", "HTTP request handling time",
            ("endpoint",)).observe(time.perf_counter() - started,
                                   endpoint=endpoint)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        raw_path, _, query = self.path.partition("?")
        path = raw_path.rstrip("/") or "/"
        endpoint = {"/healthz": "healthz", "/health": "healthz",
                    "/models": "models", "/stats": "stats",
                    "/metrics": "metrics"}.get(path, "other")
        started = time.perf_counter()
        try:
            if path in ("/healthz", "/health"):
                self._send_json(200, self.server.service.health())
            elif path == "/models":
                self._send_json(200, self.server.service.models())
            elif path == "/stats":
                self._send_json(200, self.server.service.stats_payload(
                    verbose=query_flag(query, "verbose")))
            elif path == "/metrics":
                if query_value(query, "format") == "json":
                    self._send_json(200, get_registry().snapshot())
                else:
                    self._send_text(200,
                                    render_prometheus(get_registry()))
            else:
                self._send_error_json(404, f"no such route: {path}")
        except ServingError as exc:
            self._send_error_json(400, str(exc))
        except SerializationError as exc:
            self._send_error_json(500, str(exc))
        finally:
            self._observe_request(endpoint, started)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        raw = read_request_body(self)
        if raw is None:
            return
        path = self.path.split("?", 1)[0]
        predict = _PREDICT_ROUTE.match(path)
        neighbors = _NEIGHBORS_ROUTE.match(path)
        if predict is None and neighbors is None and \
                (path.rstrip("/") or "/") != "/search":
            self._send_error_json(404, f"no such route: {self.path}")
            return
        endpoint = ("predict" if predict is not None
                    else "neighbors" if neighbors is not None else "search")
        started = time.perf_counter()
        # Propagate the router's trace id (or mint one at this edge) so
        # the batcher/embed spans land on the request's trace and the
        # client can correlate via the response header.
        incoming = self.headers.get(TRACE_HEADER)
        trace_id = incoming if valid_trace_id(incoming) else None
        try:
            with request_trace(endpoint, trace_id=trace_id) as trace:
                if trace is not None:
                    self._trace_id = trace.trace_id
                self._dispatch_post(endpoint, predict, neighbors, raw)
        finally:
            self._observe_request(endpoint, started)

    def _dispatch_post(self, endpoint: str, predict, neighbors,
                       raw: bytes) -> None:
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (json.JSONDecodeError, UnicodeDecodeError, ValueError) as exc:
            self._send_error_json(400, f"invalid JSON body: {exc}")
            return
        service = self.server.service
        try:
            if predict is not None:
                body = service.predict(predict.group(1), payload)
            elif neighbors is not None:
                body = service.neighbors(neighbors.group(1), payload)
            else:
                body = service.search(payload)
            self._send_json(200, body)
        except ServingError as exc:
            status = 404 if "no model named" in str(exc) else 400
            self._send_error_json(status, str(exc))
        except (EmbeddingError, VectorIndexError) as exc:
            self._send_error_json(400, str(exc))
        except SerializationError as exc:
            self._send_error_json(500, str(exc))
        except Exception as exc:  # model/shape errors surface as 400s
            self._send_error_json(400, f"{type(exc).__name__}: {exc}")


def create_server(model_dir: str | Path, *, host: str = "127.0.0.1",
                  port: int = 8000, max_loaded: int = 4,
                  max_batch_rows: int = 256, max_delay: float = 0.002,
                  micro_batching: bool = True,
                  reload_interval: float | None = None,
                  wal_dir: str | Path | None = None,
                  shared_manifest: dict | None = None,
                  identity: dict | None = None) -> ReproHTTPServer:
    """Build (but do not start) the serving HTTP server.

    ``port=0`` binds an ephemeral port (``server.server_address[1]`` tells
    which), which is what the tests and the example client use.  Call
    ``serve_forever()`` to run and ``shutdown()`` + ``server_close()`` to
    stop; closing the server also stops the micro-batcher threads.

    ``reload_interval`` (seconds) starts the registry's hot-reload watcher:
    checkpoints rotated in place (``repro update``, ``rotate_checkpoint``)
    are picked up within one interval with zero failed predicts — requests
    racing the swap are answered by whichever complete generation they
    resolved.  ``None`` serves each loaded checkpoint as-is.

    ``wal_dir`` runs crash recovery before anything is served: every
    checkpoint with a pending write-ahead-log suffix (journaled batches
    newer than its ``wal_applied`` watermark) is replayed and rotated via
    :func:`repro.wal.recover_model_dir`, so the served state reflects all
    durably-journaled ingestion even after a SIGKILL mid-update.

    ``shared_manifest`` is the zero-copy checkpoint map published by the
    worker pool parent (:class:`repro.serialize.SharedCheckpointStore`);
    the registry loads covered checkpoints as shared-memory views instead
    of private copies.  ``identity`` is merged into the health payload so
    pool workers are distinguishable through the router.
    """
    if wal_dir is not None:
        from ..wal import recover_model_dir

        recover_model_dir(model_dir, wal_dir)
    registry = ModelRegistry(model_dir, max_loaded=max_loaded,
                             shared_manifest=shared_manifest)
    service = PredictService(registry, max_batch_rows=max_batch_rows,
                             max_delay=max_delay,
                             micro_batching=micro_batching,
                             identity=identity)
    try:
        server = ReproHTTPServer((host, port), _Handler, service)
    except BaseException:
        service.close()
        raise
    # Only after the bind succeeded: a failed construction must not leak a
    # polling watcher thread nobody can stop.
    if reload_interval is not None:
        registry.start_hot_reload(reload_interval)
    return server
