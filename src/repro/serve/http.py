"""Stdlib JSON-over-HTTP front end for the online inference service.

The canonical surface is versioned under ``/v1`` and declared once in
:mod:`repro.serve.routes` (dispatch below is driven by that table, so
``GET /v1/openapi.json`` can never drift from what actually answers).
Legacy unprefixed paths keep working as aliases but are stamped with
``Deprecation: true`` and a ``Link: </v1/...>; rel="successor-version"``
header.

Serving routes (all responses ``application/json``):

``GET /v1/healthz``
    Liveness: status, model count, resident models.
``GET /v1/models``
    One summary per checkpoint in the model directory (header metadata
    only; nothing is deserialised).
``POST /v1/models/{name}/predict``
    Body ``{"vectors": [[...], ...]}`` for pre-embedded rows or
    ``{"items": [{...}, ...]}`` for raw tables/records/columns, which are
    embedded with the task/embedding recorded in the checkpoint.  Response:
    ``{"model", "n_items", "labels"}``.
``POST /v1/models/{name}/neighbors``
    Similarity search against a checkpointed :mod:`repro.index` vector
    index: same ``vectors``/``items`` body plus an optional ``"k"``
    (default 10).
``POST /v1/search``
    Like ``neighbors`` with the index named in the body (``"index"``) —
    or omitted entirely when exactly one index is served.
``GET /v1/stats`` / ``GET /v1/metrics`` / ``GET /v1/openapi.json``
    Introspection: batching counters (``?verbose=1`` adds span
    breakdowns), Prometheus exposition (``?format=json`` for the raw
    snapshot), and the OpenAPI document.

Jobs routes (the async tier, :mod:`repro.serve.jobs`):

``POST /v1/jobs`` submits an experiment (201 on creation, 200 when the
content-addressed id deduplicated to an existing job); ``GET /v1/jobs``
lists, ``GET /v1/jobs/{id}`` polls status/progress, ``DELETE
/v1/jobs/{id}`` cancels cooperatively, and ``GET
/v1/jobs/{id}/result?format=...`` serialises the rows through a
:mod:`repro.export` exporter (``json`` inline by default).

Every error response uses the uniform envelope from
:mod:`repro.serve.errors`: ``{"error": {"code", "message", "trace_id"}}``
with a stable machine-readable ``code``.

Every POST opens a request trace: an incoming ``X-Repro-Trace`` header
(from the pool router) is adopted, otherwise a trace id is minted here,
and the id is echoed on the response so clients can correlate their
request with the span breakdowns under ``/v1/stats?verbose=1``.

Built on :class:`http.server.ThreadingHTTPServer` — one thread per request,
with the :class:`~repro.serve.service.PredictService` micro-batcher
coalescing concurrent forwards — so serving needs no dependencies beyond
the standard library and numpy.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs

from ..obs.metrics import get_registry, obs_enabled, render_prometheus
from ..obs.trace import TRACE_HEADER, request_trace, valid_trace_id
from .errors import classify_exception, default_code, error_envelope
from .jobs import JobManager
from .registry import ModelRegistry
from .routes import (
    ROUTES,
    Route,
    compile_route,
    deprecation_headers,
    openapi_spec,
    split_version,
)
from .service import PredictService

__all__ = ["ReproHTTPServer", "create_server", "query_flag",
           "query_value", "read_request_body"]

#: Dispatch table: the compiled route patterns, straight from the
#: canonical table (matched against the *unversioned* path).
_ROUTE_PATTERNS: tuple[tuple[Route, object], ...] = tuple(
    (route, compile_route(route)) for route in ROUTES)

#: Upper bound on accepted request bodies: large enough for thousands of
#: embedded rows, small enough that a hostile Content-Length cannot exhaust
#: memory (one buffered body per request thread).
_MAX_BODY_BYTES = 32 * 1024 * 1024

#: Prometheus exposition content type.
_PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def match_route(method: str, path: str) -> tuple[Route | None, dict]:
    """Resolve an unversioned path against the canonical route table."""
    for route, pattern in _ROUTE_PATTERNS:
        if route.method != method:
            continue
        found = pattern.match(path)
        if found is not None:
            return route, found.groupdict()
    return None, {}


def query_flag(query: str, name: str) -> bool:
    """True when ``name`` appears truthy in a raw query string."""
    values = parse_qs(query).get(name)
    if not values:
        return False
    return values[-1].lower() not in ("0", "false", "no", "")


def query_value(query: str, name: str) -> str | None:
    """Last value of ``name`` in a raw query string, or None."""
    values = parse_qs(query).get(name)
    return values[-1] if values else None


class ReproHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server carrying the shared :class:`PredictService`."""

    daemon_threads = True
    #: The socketserver default backlog of 5 resets connections under a
    #: concurrent burst (the hot-reload guarantee is exercised with 100
    #: simultaneous clients); a deeper accept queue just parks them.
    request_queue_size = 128

    def __init__(self, address, handler, service: PredictService,
                 jobs: JobManager | None = None) -> None:
        super().__init__(address, handler)
        self.service = service
        self.jobs = jobs

    def server_close(self) -> None:
        """Close the socket, the hot-reload watcher and the batcher threads.

        ``TCPServer.__init__`` calls this on a failed bind, *before* our
        ``__init__`` assigned ``service`` — guard it so the caller sees the
        bind error (address in use) rather than an ``AttributeError``.
        """
        super().server_close()
        jobs = getattr(self, "jobs", None)
        if jobs is not None:
            jobs.close()
        service = getattr(self, "service", None)
        if service is not None:
            service.registry.stop_hot_reload()
            service.close()


def read_request_body(handler: BaseHTTPRequestHandler) -> bytes | None:
    """Drain and return the request body, enforcing the size limit.

    Returns ``None`` after answering the client itself (bad or hostile
    Content-Length, unreadable socket) — callers just return.  Shared by
    the single-process handler and the pool router, which must apply the
    same draining discipline before proxying: answering before consuming
    Content-Length bytes desyncs HTTP/1.1 keep-alive connections (the next
    request would be parsed starting at the leftover body).

    The handler must provide ``_send_error_json(status, message)``.
    """
    try:
        length = int(handler.headers.get("Content-Length", 0))
    except ValueError as exc:
        handler._send_error_json(400, f"bad Content-Length: {exc}")
        return None
    if length < 0:
        # rfile.read(-1) would block reading until EOF, pinning the
        # handler thread for as long as the client holds the socket.
        handler.close_connection = True
        handler._send_error_json(400, f"bad Content-Length: {length}")
        return None
    if length > _MAX_BODY_BYTES:
        # Answer without reading; the connection cannot be reused after
        # an undrained body, so close it explicitly.
        handler.close_connection = True
        handler._send_error_json(
            413, f"request body of {length} bytes exceeds the "
                 f"{_MAX_BODY_BYTES} byte limit")
        return None
    try:
        return handler.rfile.read(length) if length else b""
    except OSError as exc:
        handler._send_error_json(400, f"unreadable request body: {exc}")
        return None


class _Handler(BaseHTTPRequestHandler):
    """Table-driven dispatch; every error is an enveloped JSON body."""

    server: ReproHTTPServer
    protocol_version = "HTTP/1.1"
    #: Quiet by default; flip for debugging.
    verbose = False

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.verbose:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    def _send_headers(self, status: int, content_type: str,
                      length: int) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(length))
        trace_id = getattr(self, "_trace_id", None)
        if trace_id:
            self.send_header(TRACE_HEADER, trace_id)
        for name, value in getattr(self, "_extra_headers", ()):
            self.send_header(name, value)
        self.end_headers()
        self._status = status

    def _send_bytes(self, status: int, data: bytes,
                    content_type: str) -> None:
        self._send_headers(status, content_type, len(data))
        self.wfile.write(data)

    def _send_json(self, status: int, body: dict | list) -> None:
        self._send_bytes(status, json.dumps(body).encode("utf-8"),
                         "application/json")

    def _send_text(self, status: int, text: str,
                   content_type: str = _PROMETHEUS_CONTENT_TYPE) -> None:
        self._send_bytes(status, text.encode("utf-8"), content_type)

    def _send_error_json(self, status: int, message: str,
                         code: str | None = None) -> None:
        self._send_json(status, error_envelope(
            code or default_code(status), message,
            trace_id=getattr(self, "_trace_id", None)))

    def _observe_request(self, endpoint: str, started: float) -> None:
        if not obs_enabled():
            return
        registry = get_registry()
        registry.counter(
            "repro_http_requests_total", "HTTP requests handled",
            ("endpoint", "status")).inc(
                endpoint=endpoint, status=getattr(self, "_status", 0))
        registry.histogram(
            "repro_http_request_seconds", "HTTP request handling time",
            ("endpoint",)).observe(time.perf_counter() - started,
                                   endpoint=endpoint)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._handle("POST")

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        self._handle("DELETE")

    def _handle(self, method: str) -> None:
        raw_path, _, query = self.path.partition("?")
        path, versioned = split_version(raw_path)
        if not versioned:
            self._extra_headers = deprecation_headers(path)
        raw = b""
        if method == "POST":
            # Drain the body before answering anything (even a 404):
            # leaving it unread desyncs HTTP/1.1 keep-alive parsing.
            body = read_request_body(self)
            if body is None:
                return
            raw = body
        route, params = match_route(method, path)
        endpoint = route.endpoint if route is not None else "other"
        started = time.perf_counter()
        try:
            if route is None:
                self._send_error_json(404, f"no such route: {self.path}",
                                      code="not_found")
            elif method == "POST":
                self._handle_post(route, params, raw)
            else:
                self._dispatch(route, params, query, {})
        except _JobsDisabled:
            self._send_error_json(
                503, "the jobs API is not enabled on this server (pool "
                     "workers defer jobs to the router)",
                code="jobs_disabled")
        except Exception as exc:  # noqa: BLE001 - request boundary
            status, code = classify_exception(exc)
            message = (str(exc) if type(exc).__module__.startswith("repro")
                       else f"{type(exc).__name__}: {exc}")
            self._send_error_json(status, message, code=code)
        finally:
            self._observe_request(endpoint, started)

    def _handle_post(self, route: Route, params: dict, raw: bytes) -> None:
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (json.JSONDecodeError, UnicodeDecodeError, ValueError) as exc:
            self._send_error_json(400, f"invalid JSON body: {exc}")
            return
        # Propagate the router's trace id (or mint one at this edge) so
        # the batcher/embed spans land on the request's trace and the
        # client can correlate via the response header.
        incoming = self.headers.get(TRACE_HEADER)
        trace_id = incoming if valid_trace_id(incoming) else None
        with request_trace(route.endpoint, trace_id=trace_id) as trace:
            if trace is not None:
                self._trace_id = trace.trace_id
            self._dispatch(route, params, "", payload)

    # ------------------------------------------------------------------
    def _jobs_manager(self) -> JobManager:
        jobs = self.server.jobs
        if jobs is None:
            raise _JobsDisabled()
        return jobs

    def _dispatch(self, route: Route, params: dict, query: str,
                  payload: dict) -> None:
        service = self.server.service
        endpoint = route.endpoint
        if endpoint == "healthz":
            self._send_json(200, service.health())
        elif endpoint == "models":
            self._send_json(200, service.models())
        elif endpoint == "stats":
            self._send_json(200, service.stats_payload(
                verbose=query_flag(query, "verbose")))
        elif endpoint == "metrics":
            if query_value(query, "format") == "json":
                self._send_json(200, get_registry().snapshot())
            else:
                self._send_text(200, render_prometheus(get_registry()))
        elif endpoint == "openapi":
            self._send_json(200, openapi_spec())
        elif endpoint == "predict":
            self._send_json(200, service.predict(params["name"], payload))
        elif endpoint == "neighbors":
            self._send_json(200, service.neighbors(params["name"], payload))
        elif endpoint == "search":
            self._send_json(200, service.search(payload))
        elif endpoint == "jobs_submit":
            description, created = self._jobs_manager().submit(payload)
            self._send_json(201 if created else 200, description)
        elif endpoint == "jobs_list":
            self._send_json(200, {"jobs": self._jobs_manager().list_jobs()})
        elif endpoint == "jobs_get":
            self._send_json(200, self._jobs_manager().get(params["id"]))
        elif endpoint == "jobs_cancel":
            self._send_json(200, self._jobs_manager().cancel(params["id"]))
        elif endpoint == "jobs_result":
            fmt = query_value(query, "format") or "json"
            data, content_type = self._jobs_manager().result_bytes(
                params["id"], fmt)
            self._send_bytes(200, data, content_type)
        else:  # pragma: no cover - table and dispatch are kept in sync
            self._send_error_json(404, f"no handler for {endpoint!r}",
                                  code="not_found")


class _JobsDisabled(Exception):
    """Raised when a jobs route is hit on a server without a manager."""


def create_server(model_dir: str | Path, *, host: str = "127.0.0.1",
                  port: int = 8000, max_loaded: int = 4,
                  max_batch_rows: int = 256, max_delay: float = 0.002,
                  micro_batching: bool = True,
                  reload_interval: float | None = None,
                  wal_dir: str | Path | None = None,
                  shared_manifest: dict | None = None,
                  identity: dict | None = None,
                  jobs: bool = True,
                  jobs_dir: str | Path | None = None,
                  job_workers: int = 1) -> ReproHTTPServer:
    """Build (but do not start) the serving HTTP server.

    ``port=0`` binds an ephemeral port (``server.server_address[1]`` tells
    which), which is what the tests and the example client use.  Call
    ``serve_forever()`` to run and ``shutdown()`` + ``server_close()`` to
    stop; closing the server also stops the micro-batcher threads and the
    job workers.

    ``reload_interval`` (seconds) starts the registry's hot-reload watcher:
    checkpoints rotated in place (``repro update``, ``rotate_checkpoint``)
    are picked up within one interval with zero failed predicts — requests
    racing the swap are answered by whichever complete generation they
    resolved.  ``None`` serves each loaded checkpoint as-is.

    ``wal_dir`` runs crash recovery before anything is served: every
    checkpoint with a pending write-ahead-log suffix (journaled batches
    newer than its ``wal_applied`` watermark) is replayed and rotated via
    :func:`repro.wal.recover_model_dir`, so the served state reflects all
    durably-journaled ingestion even after a SIGKILL mid-update.

    ``shared_manifest`` is the zero-copy checkpoint map published by the
    worker pool parent (:class:`repro.serialize.SharedCheckpointStore`);
    the registry loads covered checkpoints as shared-memory views instead
    of private copies.  ``identity`` is merged into the health payload so
    pool workers are distinguishable through the router.

    ``jobs=True`` (the default) attaches a :class:`JobManager` persisting
    job state under ``jobs_dir`` (default ``<model_dir>/jobs``; the
    registry only scans ``*.npz`` so the subdirectory is inert) with
    ``job_workers`` concurrent executions.  Pool workers run with
    ``jobs=False`` — the router owns the single job manager so
    content-addressed dedup is global, not per-shard.
    """
    if wal_dir is not None:
        from ..wal import recover_model_dir

        recover_model_dir(model_dir, wal_dir)
    registry = ModelRegistry(model_dir, max_loaded=max_loaded,
                             shared_manifest=shared_manifest)
    service = PredictService(registry, max_batch_rows=max_batch_rows,
                             max_delay=max_delay,
                             micro_batching=micro_batching,
                             identity=identity)
    manager = None
    if jobs:
        manager = JobManager(jobs_dir or Path(model_dir) / "jobs",
                             max_workers=job_workers)
    try:
        server = ReproHTTPServer((host, port), _Handler, service, manager)
    except BaseException:
        if manager is not None:
            manager.close()
        service.close()
        raise
    # Only after the bind succeeded: a failed construction must not leak a
    # polling watcher thread nobody can stop.
    if reload_interval is not None:
        registry.start_hot_reload(reload_interval)
    return server
