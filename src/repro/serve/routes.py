"""The canonical route table behind the versioned ``/v1`` HTTP surface.

One table drives four things that must never drift apart:

* **Dispatch** — the single-process server and the pool router resolve
  incoming paths against these patterns (``compile_route``), so a route
  exists on the wire iff it exists here;
* **Versioning** — every canonical path carries the ``/v1`` prefix;
  legacy unprefixed paths keep answering but are stamped with
  ``Deprecation: true`` and a ``Link: </v1/...>; rel="successor-version"``
  header (:func:`deprecation_headers`);
* **The machine-readable spec** — ``GET /v1/openapi.json`` renders this
  table as an OpenAPI 3 document (:func:`openapi_spec`);
* **The docs** — API.md's "HTTP API" section is rendered from the same
  rows (:func:`render_http_api_md` via
  :mod:`repro.experiments.api_docs`), and ``tests`` assert the spec, the
  routers and the committed docs all agree.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = [
    "API_PREFIX",
    "API_VERSION",
    "ROUTES",
    "Route",
    "compile_route",
    "deprecation_headers",
    "openapi_spec",
    "render_http_api_md",
    "split_version",
]

API_VERSION = "v1"
API_PREFIX = f"/{API_VERSION}"

#: Legacy spellings that map to a *different* canonical path than just
#: prefixing ``/v1`` (everything else aliases 1:1).
_LEGACY_SYNONYMS = {"/health": "/healthz"}

#: Path-parameter pattern reused by every ``{param}`` segment.
_PARAM_PATTERN = r"[A-Za-z0-9._-]+"


@dataclass(frozen=True)
class Route:
    """One row of the API surface.

    ``endpoint`` doubles as the metrics label (``repro_http_requests_total``
    etc.), so a route's traffic is attributable under the same name in the
    spec, the docs and the dashboards.
    """

    method: str
    path: str       # canonical, "/v1/..."-prefixed, "{param}" placeholders
    endpoint: str
    summary: str
    query: tuple[tuple[str, str], ...] = field(default_factory=tuple)
    has_body: bool = False

    @property
    def legacy_path(self) -> str:
        """The deprecated unversioned alias of this route."""
        return self.path[len(API_PREFIX):]

    def params(self) -> tuple[str, ...]:
        """Names of the ``{...}`` path parameters, in order."""
        return tuple(re.findall(r"\{([a-z_]+)\}", self.path))


ROUTES: tuple[Route, ...] = (
    Route("GET", "/v1/healthz", "healthz",
          "Liveness: status, model count, resident models."),
    Route("GET", "/v1/models", "models",
          "One summary per checkpoint in the model directory."),
    Route("POST", "/v1/models/{name}/predict", "predict",
          "Cluster raw items or pre-embedded vectors with a named model.",
          has_body=True),
    Route("POST", "/v1/models/{name}/neighbors", "neighbors",
          "Top-k similarity search against a named vector index; the "
          "body may carry per-request nprobe/ef_search/rerank tunables.",
          has_body=True),
    Route("POST", "/v1/search", "search",
          "Similarity search with the index named in the body (or the "
          "only served index); accepts the same per-request tunables as "
          "neighbors.", has_body=True),
    Route("POST", "/v1/jobs", "jobs_submit",
          "Submit an experiment as an async job; identical submissions "
          "dedup to the same job id.", has_body=True),
    Route("GET", "/v1/jobs", "jobs_list",
          "List every known job with status and progress."),
    Route("GET", "/v1/jobs/{id}", "jobs_get",
          "Status, progress and metadata of one job."),
    Route("DELETE", "/v1/jobs/{id}", "jobs_cancel",
          "Cooperatively cancel a queued or running job."),
    Route("GET", "/v1/jobs/{id}/result", "jobs_result",
          "Result of a completed job, serialised by a pluggable exporter.",
          query=(("format", "json (default), csv, jsonl or npz"),)),
    Route("GET", "/v1/stats", "stats",
          "Micro-batching / routing counters.",
          query=(("verbose", "attach slowest-request span breakdowns"),)),
    Route("GET", "/v1/metrics", "metrics",
          "Prometheus text exposition of the metrics registry.",
          query=(("format", "json for the raw registry snapshot"),)),
    Route("GET", "/v1/openapi.json", "openapi",
          "This API as an OpenAPI 3 document, rendered from the route "
          "table."),
)


def compile_route(route: Route) -> re.Pattern:
    """Compile a route's *unversioned* path into a matching regex.

    The handlers normalise incoming paths with :func:`split_version`
    first, so patterns are matched without the ``/v1`` prefix; a trailing
    slash is tolerated, mirroring the historical behaviour.
    """
    pattern = re.escape(route.legacy_path)
    for param in route.params():
        pattern = pattern.replace(re.escape("{%s}" % param),
                                  f"(?P<{param}>{_PARAM_PATTERN})")
    return re.compile(f"^{pattern}/?$")


def split_version(raw_path: str) -> tuple[str, bool]:
    """Normalise a request path to ``(unversioned_path, versioned)``.

    Strips the ``/v1`` prefix when present, collapses a trailing slash and
    resolves legacy synonyms (``/health`` -> ``/healthz``), so dispatch
    works on exactly one spelling per route.
    """
    path = raw_path.rstrip("/") or "/"
    versioned = False
    if path == API_PREFIX or path.startswith(API_PREFIX + "/"):
        versioned = True
        path = path[len(API_PREFIX):] or "/"
    path = _LEGACY_SYNONYMS.get(path, path)
    return path, versioned


def deprecation_headers(unversioned_path: str) -> list[tuple[str, str]]:
    """Headers stamped on every response to a legacy (unprefixed) path."""
    return [
        ("Deprecation", "true"),
        ("Link", f"<{API_PREFIX}{unversioned_path}>; "
                 f'rel="successor-version"'),
    ]


# ----------------------------------------------------------------------
# OpenAPI rendering
def openapi_spec() -> dict:
    """The route table as an OpenAPI 3 document (deterministic)."""
    paths: dict[str, dict] = {}
    for route in ROUTES:
        operation: dict = {
            "operationId": route.endpoint,
            "summary": route.summary,
            "responses": {
                "default": {
                    "description": "JSON body; errors use the envelope "
                                   '{"error": {"code", "message", '
                                   '"trace_id"}}',
                },
            },
        }
        parameters = [
            {"name": param, "in": "path", "required": True,
             "schema": {"type": "string"}}
            for param in route.params()
        ] + [
            {"name": name, "in": "query", "required": False,
             "description": description, "schema": {"type": "string"}}
            for name, description in route.query
        ]
        if parameters:
            operation["parameters"] = parameters
        if route.has_body:
            operation["requestBody"] = {
                "required": True,
                "content": {"application/json": {
                    "schema": {"type": "object"}}},
            }
        paths.setdefault(route.path, {})[route.method.lower()] = operation
    return {
        "openapi": "3.0.3",
        "info": {
            "title": "repro serving API",
            "version": API_VERSION,
            "description": "Online predict/search plus the async jobs "
                           "tier, served by `repro serve` (single server "
                           "or `--workers N` pool). Unversioned legacy "
                           "paths answer with Deprecation headers "
                           "pointing at their /v1 successor.",
        },
        "paths": paths,
    }


def render_http_api_md() -> str:
    """The "HTTP API" section of API.md, rendered from the route table."""
    lines = [
        "## HTTP API (v1)",
        "",
        "Routes served by `repro serve` — identically by the single "
        "server and the `--workers N` pool router.  Legacy unversioned "
        "paths still answer, with `Deprecation: true` and a `Link: "
        '</v1/...>; rel="successor-version"` header; errors always use '
        'the envelope `{"error": {"code", "message", "trace_id"}}`.',
        "",
    ]
    for route in ROUTES:
        lines.append(f"- **`{route.method} {route.path}`** — "
                     f"{route.summary}")
        if route.query:
            knobs = "; ".join(f"`?{name}=` {description}"
                              for name, description in route.query)
            lines.append(f"  ({knobs})")
    lines.append("")
    return "\n".join(lines)
