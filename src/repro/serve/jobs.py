"""Async jobs tier: run registry experiments behind ``POST /v1/jobs``.

A :class:`JobManager` owns a bounded worker pool and a crash-safe job
store.  Submissions are **content-addressed**: the job id is a hash of
the canonical experiment spec (experiment, scale, overrides, seed,
epochs), so resubmitting an identical spec returns the existing job —
queued, running or completed — instead of re-executing it.  Inside one
execution the embedding work additionally dedups through the
process-wide :class:`~repro.cache.artifact.ArtifactCache`, exactly like
foreground ``repro run``.

Matrix experiments execute **cell by cell** (the same
:func:`~repro.experiments.parallel.execute_cell` jobs a foreground run
uses), which buys two things: live progress (``done/total`` cells) and
cooperative cancellation — ``DELETE /v1/jobs/{id}`` sets a per-job event
that is checked between cells.  Non-matrix experiments (``table1``,
``ks_density``, ``figure4_scalability``, ``stream_ingestion``) run as a
single cell and can only be cancelled while queued.

Every state transition is persisted as one JSON file per job with the
same atomic-write discipline as model checkpoints (tmp file + fsync +
``os.replace`` + directory fsync, see :mod:`repro.serialize`), so a
restarted server still reports completed jobs — and reports jobs that
were queued or running at the crash as ``interrupted``.

Results are stored as flat rows (the shared
:func:`~repro.experiments.reporting.experiment_result_rows` mapping, so
an exported CSV is byte-identical to ``repro run --format csv``) and
serialised on demand by the pluggable exporters in :mod:`repro.export`.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from ..config import BENCHMARK_SCALE, TEST_SCALE, DeepClusteringConfig
from ..exceptions import JobError
from ..export import export_rows, exporter_ids, get_exporter
from ..experiments import (
    NON_MATRIX_RESULTS,
    build_dataset,
    experiment_result_rows,
    plan_experiment,
    run_experiment,
)
from ..experiments.parallel import execute_cell
from ..experiments.runner import _task_for
from ..obs import get_logger, get_registry, new_trace_id
from ..serialize import fsync_directory

__all__ = ["JOB_STATUSES", "Job", "JobManager"]

#: Every status a job can report.  ``interrupted`` only appears after a
#: restart found the job mid-flight in the persisted store.
JOB_STATUSES = ("queued", "running", "completed", "failed", "cancelled",
                "interrupted")

#: Statuses that no longer change (safe to serve results / refuse cancel).
_TERMINAL = frozenset({"completed", "failed", "cancelled", "interrupted"})

#: Submission fields that participate in the canonical (hashed) spec,
#: with their defaults.  Anything else in the body is a client error.
_SPEC_FIELDS: dict[str, object] = {
    "experiment_id": None,
    "scale": "test",
    "datasets": None,
    "embeddings": None,
    "algorithms": None,
    "seed": None,
    "epochs": None,
    "graph": None,
    "graph_backend": None,
    "batch_size": None,
}

_SCALES = {"test": TEST_SCALE, "benchmark": BENCHMARK_SCALE}


def canonical_spec(body: dict) -> dict:
    """Normalise a submission body into the canonical, hashable spec.

    Unknown fields raise (silently dropping them would make two different
    requests hash alike); list-valued overrides become tuples so the spec
    is order-preserving but type-stable.
    """
    if not isinstance(body, dict):
        raise JobError("job submission must be a JSON object")
    unknown = sorted(set(body) - set(_SPEC_FIELDS))
    if unknown:
        raise JobError(f"unknown job fields {unknown!r}; expected a subset "
                       f"of {sorted(_SPEC_FIELDS)!r}")
    spec = dict(_SPEC_FIELDS)
    spec.update(body)
    if not spec["experiment_id"]:
        raise JobError("job submission requires an 'experiment_id'")
    if spec["scale"] not in _SCALES:
        raise JobError(f"unknown scale {spec['scale']!r}; expected one of "
                       f"{sorted(_SCALES)}")
    for name in ("datasets", "embeddings", "algorithms"):
        if spec[name] is not None:
            if not isinstance(spec[name], (list, tuple)) or \
                    not all(isinstance(v, str) for v in spec[name]):
                raise JobError(f"{name!r} must be a list of strings")
            spec[name] = list(spec[name])
    for name in ("seed", "epochs", "batch_size"):
        if spec[name] is not None and not isinstance(spec[name], int):
            raise JobError(f"{name!r} must be an integer")
    return spec


def job_id_for(spec: dict) -> str:
    """Content-addressed job id: hash of the canonical spec JSON."""
    digest = hashlib.sha256(
        json.dumps(spec, sort_keys=True).encode("utf-8")).hexdigest()
    return f"j-{digest[:16]}"


def _config_for(spec: dict) -> DeepClusteringConfig | None:
    """The ``epochs`` override as a config, mirroring the CLI's ``--epochs``."""
    if spec["epochs"] is None:
        return None
    if spec["experiment_id"] == "figure4_scalability":
        config = DeepClusteringConfig(pretrain_epochs=10, train_epochs=10)
    else:
        config = DeepClusteringConfig()
    return config.with_updates(
        pretrain_epochs=min(config.pretrain_epochs, spec["epochs"]),
        train_epochs=min(config.train_epochs, spec["epochs"]))


@dataclass
class Job:
    """One submitted experiment and everything known about it."""

    job_id: str
    spec: dict
    status: str = "queued"
    created_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    done_cells: int = 0
    total_cells: int = 0
    error: str | None = None
    trace_id: str = ""
    rows: list[dict] | None = None
    cancel_event: threading.Event = field(default_factory=threading.Event,
                                          repr=False, compare=False)

    def describe(self) -> dict:
        """The job as the API reports it (rows served separately)."""
        payload = {
            "id": self.job_id,
            "experiment_id": self.spec["experiment_id"],
            "spec": self.spec,
            "status": self.status,
            "progress": {"done": self.done_cells, "total": self.total_cells},
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "trace_id": self.trace_id,
            "result_rows": len(self.rows) if self.rows is not None else None,
            "result_formats": ["json", *exporter_ids()],
        }
        if self.error:
            payload["error"] = self.error
        return payload

    def to_state(self) -> dict:
        """The persisted representation (everything except the event)."""
        state = self.describe()
        state["rows"] = self.rows
        return state

    @classmethod
    def from_state(cls, state: dict) -> "Job":
        progress = state.get("progress") or {}
        return cls(
            job_id=state["id"], spec=state["spec"],
            status=state.get("status", "queued"),
            created_at=state.get("created_at", 0.0),
            started_at=state.get("started_at"),
            finished_at=state.get("finished_at"),
            done_cells=int(progress.get("done", 0)),
            total_cells=int(progress.get("total", 0)),
            error=state.get("error"), trace_id=state.get("trace_id", ""),
            rows=state.get("rows"))


class JobManager:
    """Bounded async executor for experiment jobs with a durable store.

    ``state_dir`` holds one ``<job_id>.json`` per job; it is created on
    demand and replayed on construction, so a manager pointed at an
    existing directory resumes the view of a previous process (mid-flight
    jobs come back as ``interrupted`` — their worker thread died with the
    old process).
    """

    def __init__(self, state_dir: str | Path, *, max_workers: int = 1,
                 identity: str = "server") -> None:
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.identity = identity
        self._lock = threading.RLock()
        self._jobs: dict[str, Job] = {}
        self._log = get_logger("jobs")
        registry = get_registry()
        self._submitted = registry.counter(
            "repro_jobs_submitted_total",
            "Job submissions by outcome (created vs deduplicated).",
            ("result",))
        self._finished = registry.counter(
            "repro_jobs_finished_total", "Finished jobs by final status.",
            ("status",))
        self._running = registry.gauge(
            "repro_jobs_running", "Jobs currently executing.")
        self._duration = registry.histogram(
            "repro_job_duration_seconds",
            "Wall-clock job execution time by experiment.",
            ("experiment",))
        self._load_state()
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, max_workers),
            thread_name_prefix="repro-job")
        self._closed = False

    # -- persistence ---------------------------------------------------
    def _state_path(self, job_id: str) -> Path:
        return self.state_dir / f"{job_id}.json"

    def _persist(self, job: Job) -> None:
        """Atomically write a job's state file (checkpoint discipline)."""
        path = self._state_path(job.job_id)
        tmp = path.with_suffix(".json.tmp")
        # No sort_keys: result-row column order is part of the result
        # (exporters and the foreground CLI agree on it), and recursive
        # sorting would scramble it across a restart.
        payload = json.dumps(job.to_state(), default=str).encode("utf-8")
        with open(tmp, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        fsync_directory(self.state_dir)

    def _load_state(self) -> None:
        for path in sorted(self.state_dir.glob("j-*.json")):
            try:
                job = Job.from_state(json.loads(path.read_text()))
            except (ValueError, KeyError):
                self._log.warning("job_state_unreadable", path=str(path))
                continue
            if job.status in ("queued", "running"):
                # The process that owned this job is gone; its thread can
                # never finish.  Report that honestly instead of "running"
                # forever — a resubmission of the same spec re-enqueues it
                # under the same id.
                job.status = "interrupted"
                job.finished_at = job.finished_at or time.time()
                job.error = "server restarted while the job was in flight"
                self._persist(job)
                self._log.warning("job_interrupted", job_id=job.job_id)
            self._jobs[job.job_id] = job

    # -- public API ----------------------------------------------------
    def submit(self, body: dict) -> tuple[dict, bool]:
        """Submit a job; returns ``(description, created)``.

        ``created`` is False when the content-addressed id matched an
        existing queued/running/completed job (the dedup path).  Jobs that
        ended without a result (failed / cancelled / interrupted) are
        re-enqueued under the same id.
        """
        spec = canonical_spec(body)
        # Plan now so an invalid spec is a synchronous 400 with the
        # harness's own message, not a job that fails later.
        plan = plan_experiment(
            spec["experiment_id"], scale=_SCALES[spec["scale"]],
            datasets=tuple(spec["datasets"]) if spec["datasets"] else None,
            embeddings=tuple(spec["embeddings"]) if spec["embeddings"] else None,
            algorithms=tuple(spec["algorithms"]) if spec["algorithms"] else None,
            seed=spec["seed"])
        job_id = job_id_for(spec)
        with self._lock:
            if self._closed:
                raise JobError("job manager is shut down")
            existing = self._jobs.get(job_id)
            if existing is not None and existing.status not in (
                    "failed", "cancelled", "interrupted"):
                self._submitted.inc(result="deduped")
                return existing.describe(), False
            total = (plan.n_cells
                     if spec["experiment_id"] not in NON_MATRIX_RESULTS
                     else 1)
            job = Job(job_id=job_id, spec=spec, created_at=time.time(),
                      total_cells=total, trace_id=new_trace_id())
            self._jobs[job_id] = job
            self._persist(job)
            self._submitted.inc(result="created")
            self._log.info("job_submitted", job_id=job_id,
                           experiment=spec["experiment_id"],
                           trace_id=job.trace_id, cells=total,
                           identity=self.identity)
            self._pool.submit(self._execute, job)
            return job.describe(), True

    def list_jobs(self) -> list[dict]:
        with self._lock:
            jobs = sorted(self._jobs.values(), key=lambda j: j.created_at)
            return [job.describe() for job in jobs]

    def _job(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise JobError(f"no job with id {job_id!r}")
        return job

    def get(self, job_id: str) -> dict:
        with self._lock:
            return self._job(job_id).describe()

    def cancel(self, job_id: str) -> dict:
        """Cooperatively cancel a queued or running job."""
        with self._lock:
            job = self._job(job_id)
            if job.status == "cancelled":
                return job.describe()
            if job.status in _TERMINAL:
                raise JobError(f"job {job_id!r} already finished with "
                               f"status {job.status!r}; nothing to cancel")
            job.cancel_event.set()
            if job.status == "queued":
                # The worker checks the event before starting, but flip the
                # visible status now so a poll straight after the DELETE
                # does not read "queued".
                self._finish(job, "cancelled")
            else:
                self._log.info("job_cancel_requested", job_id=job_id)
            return job.describe()

    def result_rows(self, job_id: str) -> list[dict]:
        with self._lock:
            job = self._job(job_id)
            if job.status != "completed" or job.rows is None:
                raise JobError(f"job {job_id!r} has no result "
                               f"(status {job.status!r})")
            return list(job.rows)

    def result_bytes(self, job_id: str,
                     format_id: str = "json") -> tuple[bytes, str]:
        """A completed job's rows serialised as ``(payload, content_type)``.

        ``json`` (the default) is rendered inline; every other format
        dispatches through the :mod:`repro.export` registry, so formats
        registered by client code are immediately negotiable over HTTP.
        """
        rows = self.result_rows(job_id)
        if format_id in ("", "json"):
            return (json.dumps(rows, indent=2, default=str).encode("utf-8"),
                    "application/json")
        exporter = get_exporter(format_id)
        return export_rows(rows, format_id), exporter.content_type

    def close(self) -> None:
        """Stop accepting work and ask running jobs to wind down."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for job in self._jobs.values():
                if job.status in ("queued", "running"):
                    job.cancel_event.set()
        self._pool.shutdown(wait=False, cancel_futures=True)

    # -- execution -----------------------------------------------------
    def _finish(self, job: Job, status: str, *, error: str | None = None,
                rows: list[dict] | None = None) -> None:
        """Transition a job into a terminal status (lock held by caller)."""
        job.status = status
        job.error = error
        job.rows = rows
        job.finished_at = time.time()
        self._persist(job)
        self._finished.inc(status=status)
        level = "info" if status == "completed" else "warning"
        self._log.log(level, f"job_{status}", job_id=job.job_id,
                      experiment=job.spec["experiment_id"],
                      trace_id=job.trace_id, error=error or "")

    def _execute(self, job: Job) -> None:
        with self._lock:
            if job.cancel_event.is_set() or job.status != "queued":
                return
            job.status = "running"
            job.started_at = time.time()
            self._persist(job)
        self._running.inc()
        self._log.info("job_started", job_id=job.job_id,
                       experiment=job.spec["experiment_id"],
                       trace_id=job.trace_id)
        start = time.monotonic()
        try:
            rows = self._run_spec(job)
        except Exception as exc:  # noqa: BLE001 - job boundary
            with self._lock:
                self._finish(job, "failed", error=str(exc))
        else:
            with self._lock:
                if rows is None:
                    self._finish(job, "cancelled",
                                 error="cancelled while running")
                else:
                    self._finish(job, "completed", rows=rows)
        finally:
            self._running.dec()
            self._duration.observe(time.monotonic() - start,
                                   experiment=job.spec["experiment_id"])

    def _run_spec(self, job: Job) -> list[dict] | None:
        """Execute a job's spec; ``None`` means it was cancelled mid-run."""
        spec = job.spec
        experiment_id = spec["experiment_id"]
        scale = _SCALES[spec["scale"]]
        config = _config_for(spec)
        overrides = {name: tuple(spec[name]) if spec[name] else None
                     for name in ("datasets", "embeddings", "algorithms")}

        if experiment_id in NON_MATRIX_RESULTS:
            # Single-shot experiments: no per-cell progress, whole-run
            # execution through the same entry point as the CLI.
            result = run_experiment(
                experiment_id, scale=scale, config=config,
                graph=spec["graph"], graph_backend=spec["graph_backend"],
                batch_size=spec["batch_size"], seed=spec["seed"],
                workers=1, **overrides)
            with self._lock:
                job.done_cells = 1
            return experiment_result_rows(experiment_id, result)

        plan = plan_experiment(experiment_id, scale=scale, seed=spec["seed"],
                               **overrides)
        updates = {name: spec[name]
                   for name in ("graph", "graph_backend", "batch_size")
                   if spec[name] is not None}
        tasks: dict[str, object] = {}
        results = []
        for cell in plan.cells:
            if job.cancel_event.is_set():
                return None
            task = tasks.get(cell.dataset)
            if task is None:
                task = _task_for(plan.spec,
                                 build_dataset(cell.dataset, plan.scale,
                                               seed=plan.seed),
                                 config)
                task.config_updates = updates or None
                tasks[cell.dataset] = task
            results.append(execute_cell(task, cell))
            with self._lock:
                job.done_cells += 1
                self._persist(job)
            self._log.debug("job_cell_done", job_id=job.job_id,
                            cell=cell.label(),
                            done=job.done_cells, total=job.total_cells)
        return experiment_result_rows(experiment_id, results)
