"""Uniform error envelope for every HTTP surface (server, router, jobs).

Every error response body has one shape, whatever handler produced it::

    {"error": {"code": "<stable-slug>", "message": "...",
               "trace_id": "..."}}

``code`` is a stable machine-readable slug drawn from :data:`ERROR_CODES`
— clients and tests branch on it, never on message substrings, so error
wording can improve without breaking anyone.  ``message`` is the human
diagnostic; ``trace_id`` (when a request trace is open) correlates the
failure with the span breakdowns under ``/stats?verbose=1``.

:func:`classify_exception` maps the library's exception hierarchy to
``(status, code)`` pairs in one place, shared by the single-process
handler and the pool router; :func:`default_code` backs helpers that only
know an HTTP status (body-size limits, admission control).
"""

from __future__ import annotations

from ..exceptions import (
    EmbeddingError,
    ExperimentError,
    ExportError,
    JobError,
    SerializationError,
    ServingError,
    VectorIndexError,
)

__all__ = ["ERROR_CODES", "classify_exception", "default_code",
           "error_envelope"]

#: Every stable error code the API can answer with.  Adding a code here is
#: an API change; renaming one is a breaking change.
ERROR_CODES = frozenset({
    "bad_request",        # malformed body, bad parameters, unservable input
    "not_found",          # unknown route, model, index or job
    "payload_too_large",  # request body over the size limit
    "over_capacity",      # admission control shed the request (429)
    "checkpoint_corrupt",  # a checkpoint could not be read or written
    "no_workers",         # pool routing found no live worker (503)
    "jobs_disabled",      # jobs API not enabled on this server
    "internal",           # unexpected server-side failure
})

#: Fallback code per status for call sites that raise no typed exception.
_STATUS_CODES = {
    400: "bad_request",
    404: "not_found",
    409: "bad_request",
    413: "payload_too_large",
    429: "over_capacity",
    500: "internal",
    503: "no_workers",
}


def error_envelope(code: str, message: str,
                   trace_id: str | None = None) -> dict:
    """Build the uniform error body; ``code`` must be a registered slug."""
    assert code in ERROR_CODES, f"unregistered error code {code!r}"
    error: dict = {"code": code, "message": message}
    if trace_id:
        error["trace_id"] = trace_id
    return {"error": error}


def default_code(status: int) -> str:
    """The conventional code for a bare HTTP status."""
    return _STATUS_CODES.get(status, "internal" if status >= 500
                             else "bad_request")


def classify_exception(exc: Exception) -> tuple[int, str]:
    """Map a library exception to its ``(status, code)`` pair.

    The mapping is intentionally coarse: everything a client could have
    prevented is 400 ``bad_request``, resolution failures are 404
    ``not_found``, storage damage is 500 ``checkpoint_corrupt``, and
    anything unrecognised is a 400 shape/validation error (models raise
    plain ``ValueError`` for malformed matrices).
    """
    if isinstance(exc, ServingError):
        return ((404, "not_found") if "no model named" in str(exc)
                else (400, "bad_request"))
    if isinstance(exc, JobError):
        return ((404, "not_found") if "no job" in str(exc)
                else (400, "bad_request"))
    if isinstance(exc, SerializationError):
        return (500, "checkpoint_corrupt")
    if isinstance(exc, (EmbeddingError, VectorIndexError, ExperimentError,
                        ExportError)):
        return (400, "bad_request")
    return (400, "bad_request")
