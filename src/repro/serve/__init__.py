"""Online inference serving: persist -> load -> serve.

The subsystem turns fitted clusterers into a deployable service, the way
the paper's three tasks would run in production (a new table arrives —
which schema cluster does it belong to?):

* :mod:`repro.serialize` (sibling module) persists any fitted clusterer as
  a versioned NPZ checkpoint;
* :class:`ModelRegistry` exposes a directory of named checkpoints,
  deserialised lazily and bounded by an LRU;
* :class:`MicroBatcher` coalesces concurrent predict requests into shared
  batched forward passes (bounded latency, bounded batch size);
* :func:`create_server` wraps both in a stdlib ``ThreadingHTTPServer`` JSON
  API — ``GET /models``, ``GET /healthz``, ``POST /models/{name}/predict``,
  and similarity search over :mod:`repro.index` checkpoints via
  ``POST /models/{name}/neighbors`` and ``POST /search`` — with raw items
  embedded through the cached single-item embedding path
  (:func:`repro.embeddings.embed_items`);
* :func:`create_pool_server` scales that single-process server past one
  GIL: a :class:`WorkerPool` of pre-forked worker processes (checkpoints
  shared zero-copy via ``multiprocessing.shared_memory``, WAL recovery run
  once before fork) behind a :class:`PoolRouter` that shards requests by
  model name, sheds overload as ``429 Retry-After``, and fails idempotent
  reads over to sibling workers when a worker dies;
* :class:`JobManager` is the async tier behind ``POST /v1/jobs``: registry
  experiments executed on a bounded worker pool with content-addressed
  submission dedup, cooperative cancellation, crash-safe state files, and
  results negotiated through the pluggable :mod:`repro.export` formats.

The whole surface is versioned under ``/v1`` and declared once in
:mod:`repro.serve.routes` (``GET /v1/openapi.json`` renders it); legacy
unprefixed paths answer with ``Deprecation``/``Link`` successor headers,
and every error uses the :mod:`repro.serve.errors` envelope.

``repro serve --model-dir ...`` is the CLI entry point
(``--workers N`` with ``N > 1`` selects the pool).
"""

from .batching import BatchStats, MicroBatcher
from .errors import ERROR_CODES, error_envelope
from .http import ReproHTTPServer, create_server
from .jobs import JOB_STATUSES, Job, JobManager
from .pool import WorkerConfig, WorkerPool, shard_for
from .registry import LoadedModel, ModelRegistry, servable_names
from .router import PoolRouter, create_pool_server
from .routes import API_PREFIX, ROUTES, openapi_spec
from .service import PredictService

__all__ = [
    "API_PREFIX",
    "BatchStats",
    "ERROR_CODES",
    "JOB_STATUSES",
    "Job",
    "JobManager",
    "MicroBatcher",
    "LoadedModel",
    "ModelRegistry",
    "PoolRouter",
    "PredictService",
    "ReproHTTPServer",
    "ROUTES",
    "WorkerConfig",
    "WorkerPool",
    "create_pool_server",
    "create_server",
    "error_envelope",
    "openapi_spec",
    "servable_names",
    "shard_for",
]
