"""Online inference serving: persist -> load -> serve.

The subsystem turns fitted clusterers into a deployable service, the way
the paper's three tasks would run in production (a new table arrives —
which schema cluster does it belong to?):

* :mod:`repro.serialize` (sibling module) persists any fitted clusterer as
  a versioned NPZ checkpoint;
* :class:`ModelRegistry` exposes a directory of named checkpoints,
  deserialised lazily and bounded by an LRU;
* :class:`MicroBatcher` coalesces concurrent predict requests into shared
  batched forward passes (bounded latency, bounded batch size);
* :func:`create_server` wraps both in a stdlib ``ThreadingHTTPServer`` JSON
  API — ``GET /models``, ``GET /healthz``, ``POST /models/{name}/predict``,
  and similarity search over :mod:`repro.index` checkpoints via
  ``POST /models/{name}/neighbors`` and ``POST /search`` — with raw items
  embedded through the cached single-item embedding path
  (:func:`repro.embeddings.embed_items`).

``repro serve --model-dir ...`` is the CLI entry point.
"""

from .batching import BatchStats, MicroBatcher
from .http import ReproHTTPServer, create_server
from .registry import LoadedModel, ModelRegistry
from .service import PredictService

__all__ = [
    "BatchStats",
    "MicroBatcher",
    "LoadedModel",
    "ModelRegistry",
    "PredictService",
    "ReproHTTPServer",
    "create_server",
]
