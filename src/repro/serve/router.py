"""Front router for the pre-fork worker pool: shard, admit, fail over.

The router is a thin :class:`~http.server.ThreadingHTTPServer` that owns no
model state at all — it maps each request to a worker
(:func:`repro.serve.pool.shard_for` on the model/index name), applies
admission control, and proxies the bytes.  Because every request thread
only ever blocks on one upstream socket, the router's GIL share per
request is tiny and the pool's throughput scales with worker cores.

The router serves the same versioned ``/v1`` surface as a single worker
(legacy unprefixed paths answer with ``Deprecation``/``Link`` successor
headers, errors use the shared envelope), and it is the pool's **job
owner**: ``/v1/jobs`` routes are answered from a router-local
:class:`~repro.serve.jobs.JobManager` rather than proxied, so the
content-addressed submission dedup spans the whole pool.

Admission control and failure semantics (the failure matrix ARCHITECTURE.md
documents):

* **Primary alive, under capacity** — proxy to it.
* **Primary alive, at capacity** (``max_inflight`` requests already in
  flight on that worker) — answer ``429`` with a ``Retry-After`` hint
  immediately.  Overload deliberately does *not* spill onto siblings:
  spilling would melt the whole pool one worker at a time instead of
  shedding load at the edge.
* **Primary dead or unreachable** — retry the (idempotent, read-only)
  request on the next workers in ring order while the supervisor respawns
  the primary; the client never sees the outage.
* **Every worker dead/at capacity with none alive** — ``503`` with
  ``Retry-After``.

All predict/neighbors/search requests are pure reads (models only change
via checkpoint rotation on disk), which is what makes transparent retry
safe.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from ..obs.logging import get_logger
from ..obs.metrics import (get_registry, merge_snapshots, obs_enabled,
                           render_prometheus)
from ..obs.trace import (TRACE_HEADER, get_trace_store, record_span,
                         request_trace, valid_trace_id)
from .errors import classify_exception, default_code, error_envelope
from .http import (_PROMETHEUS_CONTENT_TYPE, match_route, query_flag,
                   query_value, read_request_body)
from .jobs import JobManager
from .pool import WorkerPool, shard_for
from .registry import servable_names
from .routes import API_PREFIX, deprecation_headers, openapi_spec, \
    split_version

__all__ = ["PoolRouter", "create_pool_server"]

#: Seconds a proxied upstream call may take before the router treats the
#: worker as unreachable and fails over.  Generous: micro-batched forwards
#: under heavy load can linger, and a false timeout turns one slow request
#: into two.
_UPSTREAM_TIMEOUT = 60.0
#: Retry-After hint (seconds) on 429/503 — small, because overload on a
#: micro-batching worker drains in milliseconds once clients pause.
_RETRY_AFTER = 1

_LOG = get_logger("router")


class _ConnectionPool:
    """Keep-alive upstream connections, keyed by worker address.

    A fresh TCP connect per proxied request roughly doubles loopback
    latency; pooling by ``(host, port)`` means a respawned worker (new
    port) naturally gets a fresh pool while the dead port's sockets are
    dropped on first error.
    """

    def __init__(self) -> None:
        self._idle: dict[tuple[str, int], list] = {}
        self._lock = threading.Lock()

    def acquire(self, address: tuple[str, int]):
        with self._lock:
            idle = self._idle.get(address)
            if idle:
                return idle.pop()
        return http.client.HTTPConnection(*address,
                                          timeout=_UPSTREAM_TIMEOUT)

    def release(self, address: tuple[str, int], conn) -> None:
        with self._lock:
            self._idle.setdefault(address, []).append(conn)

    def close(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, {}
        for conns in idle.values():
            for conn in conns:
                conn.close()


class PoolRouter(ThreadingHTTPServer):
    """The pool's public HTTP endpoint; owns the pool it routes for."""

    daemon_threads = True
    request_queue_size = 128

    def __init__(self, address, pool: WorkerPool, *,
                 max_inflight: int = 64,
                 jobs: JobManager | None = None) -> None:
        super().__init__(address, _RouterHandler)
        self.pool = pool
        #: The pool's single job owner: jobs routes are handled here in
        #: the parent process (never proxied to a shard), so the
        #: content-addressed dedup is global across the pool.
        self.jobs = jobs
        #: Per-worker admission bound: requests concurrently proxied to
        #: one worker beyond this are answered 429 instead of queued.
        self.max_inflight = int(max_inflight)
        self._inflight = [0] * pool.n_workers
        self._inflight_lock = threading.Lock()
        self.connections = _ConnectionPool()
        #: Router-level counters, surfaced under ``/stats``.
        self.counters = {"routed": 0, "retries": 0, "rejected_overload": 0,
                         "failover": 0, "unavailable": 0}
        self._counter_lock = threading.Lock()
        registry = get_registry()
        self._m_events = registry.counter(
            "repro_router_events_total",
            "Routing decisions: routed/retries/rejected_overload/"
            "failover/unavailable", ("event",))
        self._m_inflight = registry.gauge(
            "repro_router_inflight",
            "Requests currently proxied per worker", ("worker",))
        self._m_requests = registry.counter(
            "repro_router_requests_total",
            "Requests answered by the router", ("endpoint", "status"))
        self._m_latency = registry.histogram(
            "repro_router_request_seconds",
            "End-to-end router handling time (admission + proxy + "
            "failover)", ("endpoint",))

    # ------------------------------------------------------------------
    def try_acquire(self, index: int) -> bool:
        """Reserve an in-flight slot on worker ``index`` (False = full)."""
        with self._inflight_lock:
            if self._inflight[index] >= self.max_inflight:
                return False
            self._inflight[index] += 1
        self._m_inflight.inc(worker=index)
        return True

    def release_slot(self, index: int) -> None:
        with self._inflight_lock:
            self._inflight[index] -= 1
        self._m_inflight.dec(worker=index)

    def count(self, key: str, n: int = 1) -> None:
        with self._counter_lock:
            self.counters[key] += n
        self._m_events.inc(n, event=key)

    def stats_snapshot(self) -> dict:
        with self._counter_lock:
            counters = dict(self.counters)
        with self._inflight_lock:
            counters["inflight"] = list(self._inflight)
        counters["max_inflight"] = self.max_inflight
        return counters

    def server_close(self) -> None:
        """Stop the router socket, then the workers and their segments."""
        super().server_close()
        jobs = getattr(self, "jobs", None)
        if jobs is not None:
            jobs.close()
        pool = getattr(self, "pool", None)
        if pool is not None:
            pool.stop()
        connections = getattr(self, "connections", None)
        if connections is not None:
            connections.close()


class _RouterHandler(BaseHTTPRequestHandler):
    """Shard-route one request; never touch model state locally."""

    server: PoolRouter
    protocol_version = "HTTP/1.1"
    verbose = False

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.verbose:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    def _send_raw(self, status: int, data: bytes, content_type: str,
                  retry_after: int | None = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        self.send_header("Content-Length", str(len(data)))
        trace_id = getattr(self, "_trace_id", None)
        if trace_id:
            self.send_header(TRACE_HEADER, trace_id)
        for name, value in getattr(self, "_extra_headers", ()):
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)
        self._status = status

    def _send_json(self, status: int, body: dict | list,
                   retry_after: int | None = None) -> None:
        self._send_raw(status, json.dumps(body).encode("utf-8"),
                       "application/json", retry_after=retry_after)

    def _send_error_json(self, status: int, message: str,
                         retry_after: int | None = None,
                         code: str | None = None) -> None:
        self._send_json(status, error_envelope(
            code or default_code(status), message,
            trace_id=getattr(self, "_trace_id", None)),
            retry_after=retry_after)

    def _observe_request(self, endpoint: str, started: float) -> None:
        if not obs_enabled():
            return
        server = self.server
        server._m_requests.inc(endpoint=endpoint,
                               status=getattr(self, "_status", 0))
        server._m_latency.observe(time.perf_counter() - started,
                                  endpoint=endpoint)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._handle("POST")

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        self._handle("DELETE")

    def _handle(self, method: str) -> None:
        raw_path, _, query = self.path.partition("?")
        path, versioned = split_version(raw_path)
        if not versioned:
            self._extra_headers = deprecation_headers(path)
        raw = b""
        if method == "POST":
            body = read_request_body(self)
            if body is None:
                return
            raw = body
        route, params = match_route(method, path)
        endpoint = route.endpoint if route is not None else "other"
        started = time.perf_counter()
        try:
            if route is None:
                self._send_error_json(404, f"no such route: {self.path}",
                                      code="not_found")
            elif endpoint in ("predict", "neighbors", "search"):
                self._handle_inference(endpoint, params, path, raw)
            elif endpoint.startswith("jobs_"):
                self._handle_jobs(endpoint, params, query, raw)
            elif endpoint == "healthz":
                self._handle_health()
            elif endpoint == "stats":
                self._handle_stats(verbose=query_flag(query, "verbose"))
            elif endpoint == "metrics":
                self._handle_metrics(query)
            elif endpoint == "openapi":
                self._send_json(200, openapi_spec())
            elif endpoint == "models":
                # Any worker answers identically (headers read from the
                # shared model directory); use the ring so a dead worker
                # is skipped.
                self._route(0, "GET", f"{API_PREFIX}/models", b"")
            else:  # pragma: no cover - table and dispatch kept in sync
                self._send_error_json(404, f"no handler for {endpoint!r}",
                                      code="not_found")
        except Exception as exc:  # noqa: BLE001 - request boundary
            status, code = classify_exception(exc)
            message = (str(exc) if type(exc).__module__.startswith("repro")
                       else f"{type(exc).__name__}: {exc}")
            self._send_error_json(status, message, code=code)
        finally:
            self._observe_request(endpoint, started)

    def _handle_inference(self, endpoint: str, params: dict, path: str,
                          raw: bytes) -> None:
        """Shard-route predict/neighbors/search to a worker."""
        if endpoint == "search":
            primary = self._search_shard(raw)
        else:
            primary = shard_for(params["name"], self.server.pool.n_workers)
        # Mint (or adopt) the trace id here, at the pool's public edge;
        # _proxy_once forwards it so the worker's spans share the id.
        incoming = self.headers.get(TRACE_HEADER)
        trace_id = incoming if valid_trace_id(incoming) else None
        with request_trace(endpoint, trace_id=trace_id) as trace:
            if trace is not None:
                self._trace_id = trace.trace_id
            # Proxy the canonical spelling whatever the client sent; the
            # deprecation headers (when due) are stamped router-side.
            self._route(primary, "POST", f"{API_PREFIX}{path}", raw)

    def _handle_jobs(self, endpoint: str, params: dict, query: str,
                     raw: bytes) -> None:
        """Answer jobs routes from the router-owned :class:`JobManager`."""
        jobs = self.server.jobs
        if jobs is None:
            self._send_error_json(
                503, "the jobs API is not enabled on this pool",
                code="jobs_disabled")
            return
        if endpoint == "jobs_submit":
            try:
                payload = json.loads(raw.decode("utf-8")) if raw else {}
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                self._send_error_json(400, f"invalid JSON body: {exc}")
                return
            description, created = jobs.submit(payload)
            self._trace_id = description.get("trace_id") or None
            self._send_json(201 if created else 200, description)
        elif endpoint == "jobs_list":
            self._send_json(200, {"jobs": jobs.list_jobs()})
        elif endpoint == "jobs_get":
            self._send_json(200, jobs.get(params["id"]))
        elif endpoint == "jobs_cancel":
            self._send_json(200, jobs.cancel(params["id"]))
        else:  # jobs_result
            fmt = query_value(query, "format") or "json"
            data, content_type = jobs.result_bytes(params["id"], fmt)
            self._send_raw(200, data, content_type)

    def _search_shard(self, raw: bytes) -> int:
        """Primary worker for a ``/search`` body.

        The index name may be in the body, or omitted when the directory
        serves exactly one index — resolve the same way the worker will,
        so the request lands on the shard that has it resident.  Any
        parse problem routes to worker 0, whose error answer is as good
        as any sibling's.
        """
        pool = self.server.pool
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
            name = payload.get("index")
        except (ValueError, AttributeError):
            return 0
        if not isinstance(name, str):
            names = servable_names(pool.model_dir)
            if len(names) != 1:
                return 0
            name = names[0]
        return shard_for(name, pool.n_workers)

    # ------------------------------------------------------------------
    def _handle_health(self) -> None:
        workers = self.server.pool.describe()
        alive = sum(1 for row in workers if row["alive"])
        self._send_json(200 if alive else 503, {
            "status": "ok" if alive else "unavailable",
            "model_dir": str(self.server.pool.model_dir),
            "workers": workers,
            "alive": alive,
        })

    def _handle_stats(self, verbose: bool = False) -> None:
        pool = self.server.pool
        per_worker: dict[str, dict] = {}
        worker_path = (f"{API_PREFIX}/stats?verbose=1" if verbose
                       else f"{API_PREFIX}/stats")
        for index in range(pool.n_workers):
            address = pool.address_of(index)
            if address is None:
                continue
            result = self._proxy_once(index, address, "GET", worker_path,
                                      b"")
            if result is not None:
                try:
                    per_worker[str(index)] = json.loads(result[1])
                except ValueError:  # pragma: no cover - worker sent junk
                    pass
        router = self.server.stats_snapshot()
        # Fleet totals: worker batcher counters summed, plus the
        # router-local routing counters.  A respawned worker reports
        # fresh (reset) counters; the sum reflects that honestly and the
        # per-worker 'restarts' field says why.
        totals = {"batcher_requests": 0, "batcher_rows": 0,
                  "batcher_batches": 0}
        for stats in per_worker.values():
            for batcher in stats.get("batchers", {}).values():
                totals["batcher_requests"] += int(batcher.get("requests", 0))
                totals["batcher_rows"] += int(batcher.get("rows", 0))
                totals["batcher_batches"] += int(batcher.get("batches", 0))
        totals["routed"] = router["routed"]
        totals["rejected_overload"] = router["rejected_overload"]
        payload = {"router": router, "workers": per_worker,
                   "pool": pool.describe(), "totals": totals}
        if verbose:
            payload["traces"] = self._merged_traces(per_worker)
        self._send_json(200, payload)

    def _merged_traces(self, per_worker: dict[str, dict]) -> list[dict]:
        """Router-side slowest traces, enriched with worker spans.

        Worker span offsets stay relative to the worker's own trace
        start; each span is tagged with the worker index that recorded
        it so the decomposition stays attributable.
        """
        worker_spans: dict[str, list[dict]] = {}
        for index, stats in per_worker.items():
            for trace in stats.get("traces", []):
                spans = [{**span_doc, "attrs": {
                    **span_doc.get("attrs", {}), "worker": int(index)}}
                    for span_doc in trace.get("spans", [])]
                worker_spans.setdefault(trace["trace_id"], []).extend(spans)
        merged = []
        for trace in get_trace_store().snapshot():
            spans = list(trace.get("spans", []))
            spans.extend(worker_spans.get(trace["trace_id"], []))
            merged.append({**trace, "spans": spans})
        return merged

    def _handle_metrics(self, query: str) -> None:
        """Aggregate worker registries with the router's own and render."""
        pool = self.server.pool
        snapshots = [get_registry().snapshot()]
        for index in range(pool.n_workers):
            address = pool.address_of(index)
            if address is None:
                continue
            result = self._proxy_once(index, address, "GET",
                                      f"{API_PREFIX}/metrics?format=json",
                                      b"")
            if result is not None and result[0] == 200:
                try:
                    snapshots.append(json.loads(result[1]))
                except ValueError:  # pragma: no cover - worker sent junk
                    pass
        merged = merge_snapshots(snapshots)
        if query_value(query, "format") == "json":
            self._send_json(200, merged)
        else:
            self._send_raw(200, render_prometheus(merged).encode("utf-8"),
                           _PROMETHEUS_CONTENT_TYPE)

    # ------------------------------------------------------------------
    def _route(self, primary: int, method: str, path: str,
               body: bytes) -> None:
        """Admission control + ring failover around the proxy call."""
        server = self.server
        pool = server.pool
        attempted_failover = False
        for offset in range(pool.n_workers):
            index = (primary + offset) % pool.n_workers
            address = pool.address_of(index)
            if address is None:
                # Dead primary (or dead sibling): ring on.  This is the
                # failover path, not overload shedding.
                attempted_failover = True
                continue
            if not server.try_acquire(index):
                if offset == 0:
                    # The owner is alive but saturated: shed load at the
                    # edge rather than melting siblings too.
                    server.count("rejected_overload")
                    self._send_error_json(
                        429, f"worker {index} at capacity "
                             f"({server.max_inflight} requests in flight); "
                             f"retry shortly",
                        retry_after=_RETRY_AFTER)
                    return
                attempted_failover = True
                continue
            attempt_started = time.perf_counter()
            result = None
            try:
                result = self._proxy_once(index, address, method, path, body)
            finally:
                server.release_slot(index)
                record_span("router.proxy", attempt_started,
                            time.perf_counter(), worker=index,
                            ok=result is not None)
            if result is None:
                # Transport failure mid-request: the worker died (or was
                # killed).  Tell the pool, then retry the idempotent read
                # on the next shard while the supervisor respawns it.
                pool.note_dead(index)
                server.count("retries")
                _LOG.warning("worker_unreachable", worker=index,
                             path=path)
                attempted_failover = True
                continue
            if attempted_failover:
                server.count("failover")
            server.count("routed")
            status, data, content_type = result
            self._send_raw(status, data, content_type)
            return
        server.count("unavailable")
        _LOG.error("no_worker_available", path=path,
                   workers=pool.n_workers)
        self._send_error_json(
            503, "no worker available for this request; retry shortly",
            retry_after=_RETRY_AFTER)

    def _proxy_once(self, index: int, address: tuple[str, int], method: str,
                    path: str, body: bytes):
        """One upstream attempt; ``None`` means transport-level failure."""
        connections = self.server.connections
        conn = connections.acquire(address)
        headers = {"Content-Type": "application/json",
                   "Content-Length": str(len(body))}
        trace_id = getattr(self, "_trace_id", None)
        if trace_id:
            headers[TRACE_HEADER] = trace_id
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
            content_type = response.getheader("Content-Type",
                                              "application/json")
            status = response.status
        except (OSError, http.client.HTTPException):
            conn.close()
            return None
        connections.release(address, conn)
        return (status, data, content_type)


def create_pool_server(model_dir: str | Path, *, host: str = "127.0.0.1",
                       port: int = 8000, workers: int = 2,
                       max_inflight: int = 64, max_loaded: int = 4,
                       max_batch_rows: int = 256, max_delay: float = 0.002,
                       micro_batching: bool = True,
                       reload_interval: float | None = None,
                       wal_dir: str | Path | None = None,
                       shared_memory: bool = True,
                       start_method: str | None = None,
                       jobs: bool = True,
                       jobs_dir: str | Path | None = None,
                       job_workers: int = 1) -> PoolRouter:
    """Build and start the sharded serving pool behind one router socket.

    The mirror of :func:`repro.serve.create_server` for ``--workers N``:
    WAL recovery runs once in this process, checkpoints are published to
    shared memory, ``workers`` serving processes are forked and
    supervised, and the returned router (bound to ``host:port``; ``port=0``
    for ephemeral) shards requests across them.  ``serve_forever()`` to
    run; ``shutdown()`` + ``server_close()`` stops the router *and* the
    workers.

    Unlike ``create_server`` the workers are already running when this
    returns — construction is the pool's boot.

    The jobs tier (``jobs=True``) lives in *this* process: workers are
    started with their jobs API disabled and the router answers
    ``/v1/jobs`` routes from its own :class:`JobManager` (state under
    ``jobs_dir``, default ``<model_dir>/jobs``), so identical submissions
    dedup globally instead of per shard.
    """
    pool = WorkerPool(model_dir, n_workers=workers, host=host,
                      max_loaded=max_loaded, max_batch_rows=max_batch_rows,
                      max_delay=max_delay, micro_batching=micro_batching,
                      reload_interval=reload_interval, wal_dir=wal_dir,
                      shared_memory=shared_memory, start_method=start_method)
    manager = None
    if jobs:
        manager = JobManager(jobs_dir or Path(model_dir) / "jobs",
                             max_workers=job_workers, identity="router")
    try:
        pool.start()
        return PoolRouter((host, port), pool, max_inflight=max_inflight,
                          jobs=manager)
    except BaseException:
        if manager is not None:
            manager.close()
        pool.stop()
        raise
