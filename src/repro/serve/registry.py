"""Directory-backed model registry with lazy loading, LRU bound, hot reload.

A model directory is simply a folder of ``<name>.npz`` checkpoints written
by :func:`repro.serialize.save_checkpoint` (e.g. by ``repro train --save``
or ``repro run --save-dir``).  The registry lists models by reading only the
cheap checkpoint headers, deserialises a model's weights the first time a
request needs it, and keeps at most ``max_loaded`` models in memory,
evicting the least recently used — so a directory of many large models can
be served from a bounded footprint.

Checkpoints are also *live*: the continuous-learning loop rotates new
generations into the same file (:func:`repro.serialize.rotate_checkpoint`),
and :meth:`ModelRegistry.reload_stale` — polled by the background watcher
started with :meth:`ModelRegistry.start_hot_reload` — notices the newer
mtime, deserialises the new generation **off the request path**, and swaps
it in atomically.  Requests racing the swap keep using the old entry (whose
weights stay valid) or pick up the new one; the retired entry flows through
``on_evict`` so the serving layer shuts its micro-batcher down, and any
``model/<name>/...`` artifacts memoised in :mod:`repro.cache` are
invalidated.  The predict route never 5xxes during an update.
"""

from __future__ import annotations

import re
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from ..cache import get_cache
from ..exceptions import SerializationError, ServingError
from ..obs.logging import get_logger
from ..obs.metrics import get_registry
from ..serialize import (
    attach_shared_checkpoint,
    load_checkpoint,
    read_checkpoint_header,
)

__all__ = ["LoadedModel", "ModelRegistry", "servable_names"]

_LOG = get_logger("registry")

#: Model names the registry (and the HTTP predict route) accept: the stem
#: of the checkpoint file, no path separators, no leading dot.
_VALID_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def servable_names(model_dir: str | Path) -> list[str]:
    """Sorted servable checkpoint names in ``model_dir``.

    The one definition of "what counts as a served model" — shared by the
    registry and by the worker-pool router, which must agree on the name
    set to shard it consistently.  Dot-prefixed sidecars (archived
    generations, AppleDouble files) are skipped.
    """
    return sorted(path.stem for path in Path(model_dir).glob("*.npz")
                  if _VALID_NAME.match(path.stem))


@dataclass(eq=False)
class LoadedModel:
    """A deserialised checkpoint: the model plus its header context.

    Compared (and hashed) by identity: every load produces a distinct
    entry, which is what lets the serving layer key per-load state (the
    micro-batcher) without ever confusing two loads of the same name.
    """

    name: str
    model: object
    header: dict
    path: Path
    #: File mtime at load time; the hot-reload watcher compares against the
    #: current file to detect a rotated-in newer generation.
    mtime_ns: int = 0

    @property
    def metadata(self) -> dict:
        """User metadata stored at save time (task, embedding, dataset...)."""
        return self.header.get("metadata", {})

    @property
    def generation(self) -> int:
        """Checkpoint generation stamped by ``rotate_checkpoint`` (0 if never)."""
        return int(self.metadata.get("generation", 0))

    @property
    def wal_applied(self) -> dict[str, int]:
        """Per-stream WAL watermark stamped by the durable ingestion path.

        Empty for checkpoints that never streamed through a write-ahead
        log; otherwise maps stream name to the last applied batch id.
        """
        stamped = self.metadata.get("wal_applied") or {}
        return {str(stream): int(batch_id)
                for stream, batch_id in stamped.items()}


class ModelRegistry:
    """Named checkpoints in a directory, loaded lazily, LRU-bounded.

    Thread-safe: the stdlib threading HTTP server calls :meth:`get` from
    many request threads; loads of the *same* model serialise while loads of
    different models proceed concurrently.  A loaded model stays resident
    (ignoring later changes to its file) until it falls out of the LRU or is
    explicitly evicted; ``on_evict`` is called with each entry leaving
    memory, which is how the serving layer retires the evicted model's
    micro-batcher instead of pinning the stale object forever.
    """

    def __init__(self, model_dir: str | Path, *, max_loaded: int = 4,
                 on_evict: Callable[[LoadedModel], None] | None = None,
                 shared_manifest: dict | None = None) -> None:
        if max_loaded < 1:
            raise ServingError("max_loaded must be >= 1")
        self.model_dir = Path(model_dir)
        if not self.model_dir.is_dir():
            raise ServingError(f"model directory not found: {self.model_dir}")
        self.max_loaded = int(max_loaded)
        self.on_evict = on_evict
        #: Shared-memory manifest from the pool parent's
        #: :class:`repro.serialize.SharedCheckpointStore` — checkpoints it
        #: covers load as zero-copy views instead of private array copies.
        self.shared_manifest = shared_manifest or {}
        self._loaded: OrderedDict[str, LoadedModel] = OrderedDict()
        self._lock = threading.Lock()
        self._load_locks: dict[str, threading.Lock] = {}
        self._watcher: threading.Thread | None = None
        self._watcher_stop = threading.Event()
        registry_obs = get_registry()
        self._m_load = registry_obs.histogram(
            "repro_checkpoint_load_seconds",
            "Checkpoint deserialisation time", ("model",))
        self._m_reloads = registry_obs.counter(
            "repro_reload_total", "Hot-reload generation swaps", ("model",))
        self._m_generation = registry_obs.gauge(
            "repro_reload_generation",
            "Generation of the resident checkpoint", ("model",))

    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        """Sorted names of every servable checkpoint in the directory.

        Files whose stem is not a valid model name (dot-prefixed sidecar
        files, for example) are skipped rather than breaking the listing.
        """
        return servable_names(self.model_dir)

    def __contains__(self, name: str) -> bool:
        return self._path_for(name).exists()

    def __len__(self) -> int:
        return len(self.names())

    @property
    def loaded_names(self) -> list[str]:
        """Models currently resident in memory (LRU order, oldest first)."""
        with self._lock:
            return list(self._loaded)

    def describe(self) -> list[dict]:
        """One summary dict per model, from the headers only (cheap).

        A corrupt or foreign checkpoint yields an ``error`` row instead of
        failing the whole listing — one bad file must not hide the
        servable models.
        """
        rows = []
        with self._lock:
            resident = set(self._loaded)
        for name in self.names():
            try:
                header = read_checkpoint_header(self._path_for(name))
            except SerializationError as exc:
                rows.append({"name": name, "error": str(exc)})
                continue
            # Registry-computed keys come last so checkpoint metadata can
            # never shadow the name the predict route needs (or the class).
            rows.append({
                **header.get("metadata", {}),
                "name": name,
                "class": header.get("class"),
                "library_version": header.get("library_version"),
                "loaded": name in resident,
            })
        return rows

    def get(self, name: str) -> LoadedModel:
        """Return the loaded model for ``name``, deserialising on first use."""
        with self._lock:
            entry = self._loaded.get(name)
            if entry is not None:
                self._loaded.move_to_end(name)
                return entry
            load_lock = self._load_locks.setdefault(name, threading.Lock())
        try:
            with load_lock:
                with self._lock:
                    entry = self._loaded.get(name)
                    if entry is not None:
                        self._loaded.move_to_end(name)
                        return entry
                path = self._path_for(name)
                if not path.exists():
                    raise ServingError(
                        f"no model named {name!r} in {self.model_dir} "
                        f"(available: {self.names()})")
                # Stat before reading: if the file is replaced mid-load the
                # recorded mtime is older than the winner and the watcher
                # simply reloads once more.
                mtime_ns = path.stat().st_mtime_ns
                load_started = time.perf_counter()
                model = self._load_model(path)
                entry = LoadedModel(name=name, model=model,
                                    header=model.checkpoint_header_,
                                    path=path, mtime_ns=mtime_ns)
                self._m_load.observe(time.perf_counter() - load_started,
                                     model=name)
                self._m_generation.set(entry.generation, model=name)
                evicted: list[LoadedModel] = []
                with self._lock:
                    # Under eviction churn two loads of one name can race
                    # (the per-name lock is dropped between loads); treat a
                    # displaced earlier entry as evicted so its per-load
                    # state (the serving batcher) is retired, not leaked.
                    displaced = self._loaded.get(name)
                    if displaced is not None and displaced is not entry:
                        evicted.append(displaced)
                    self._loaded[name] = entry
                    self._loaded.move_to_end(name)
                    while len(self._loaded) > self.max_loaded:
                        evicted.append(self._loaded.popitem(last=False)[1])
                self._notify_evicted(evicted)
                return entry
        finally:
            with self._lock:
                self._load_locks.pop(name, None)

    def is_current(self, entry: LoadedModel) -> bool:
        """Is ``entry`` still the resident load for its name?"""
        with self._lock:
            return self._loaded.get(entry.name) is entry

    def evict(self, name: str) -> bool:
        """Drop ``name`` from memory (the checkpoint file stays); was it loaded?"""
        with self._lock:
            entry = self._loaded.pop(name, None)
        if entry is not None:
            self._notify_evicted([entry])
        return entry is not None

    # ------------------------------------------------------------------
    # hot reload
    # ------------------------------------------------------------------
    def reload_stale(self) -> list[str]:
        """Swap in newer checkpoint generations; return the reloaded names.

        For every resident model whose file mtime changed since it was
        loaded, the new generation is deserialised *without holding the
        registry lock* (requests keep resolving the old entry meanwhile)
        and then swapped in atomically; the replaced entry is retired
        through ``on_evict`` exactly like an LRU eviction, and the model's
        ``model/<name>/`` cache namespace is invalidated.  A model whose
        file disappeared is evicted; a corrupt replacement file leaves the
        old (valid) weights serving.
        """
        with self._lock:
            snapshot = list(self._loaded.values())
        reloaded: list[str] = []
        for entry in snapshot:
            try:
                mtime_ns = entry.path.stat().st_mtime_ns
            except OSError:
                # Checkpoint removed: stop serving it from memory.
                _LOG.info("checkpoint_removed", model=entry.name)
                self.evict(entry.name)
                continue
            if mtime_ns == entry.mtime_ns:
                continue
            try:
                model = load_checkpoint(entry.path)
            except SerializationError as exc:
                # Never replace valid weights with a broken file; leave the
                # stale mtime unrecorded so the next poll retries.
                _LOG.warning("reload_skipped_corrupt", model=entry.name,
                             reason=str(exc))
                continue
            fresh = LoadedModel(name=entry.name, model=model,
                                header=model.checkpoint_header_,
                                path=entry.path, mtime_ns=mtime_ns)
            with self._lock:
                swapped = self._loaded.get(entry.name) is entry
                if swapped:
                    self._loaded[entry.name] = fresh
                # else: the entry was evicted or replaced while we loaded;
                # discard our load rather than fight the winner.
            if swapped:
                self._notify_evicted([entry])
                get_cache().invalidate_prefix(f"model/{entry.name}/")
                reloaded.append(entry.name)
                self._m_reloads.inc(model=entry.name)
                self._m_generation.set(fresh.generation, model=entry.name)
                _LOG.info("checkpoint_reloaded", model=entry.name,
                          generation=fresh.generation,
                          previous_generation=entry.generation)
        return reloaded

    def start_hot_reload(self, interval: float = 1.0) -> None:
        """Poll for newer checkpoint generations every ``interval`` seconds.

        The watcher is a daemon thread calling :meth:`reload_stale`, so
        deserialisation cost is paid off the request path.  Idempotent;
        :meth:`stop_hot_reload` stops it.
        """
        if interval <= 0:
            raise ServingError("hot-reload interval must be positive")
        with self._lock:
            if self._watcher is not None:
                return
            self._watcher_stop.clear()
            self._watcher = threading.Thread(
                target=self._watch, args=(float(interval),),
                name="repro-hot-reload", daemon=True)
            self._watcher.start()

    def stop_hot_reload(self) -> None:
        """Stop the hot-reload watcher thread (no-op when not running)."""
        with self._lock:
            watcher = self._watcher
            self._watcher = None
        if watcher is not None:
            self._watcher_stop.set()
            watcher.join()

    def _watch(self, interval: float) -> None:
        while not self._watcher_stop.wait(interval):
            try:
                self.reload_stale()
            except Exception:  # pragma: no cover - watchdog must survive
                pass

    # ------------------------------------------------------------------
    def _load_model(self, path: Path):
        """Deserialise ``path``, preferring zero-copy shared-memory arrays.

        A manifest miss — checkpoint not shared at boot, or rotated since
        (mtime mismatch) — falls back to an ordinary private disk load, so
        sharing never blocks hot reload or correctness.
        """
        if self.shared_manifest:
            model = attach_shared_checkpoint(path, self.shared_manifest)
            if model is not None:
                return model
        return load_checkpoint(path)

    def _notify_evicted(self, entries: list[LoadedModel]) -> None:
        """Run the eviction hook outside the registry lock."""
        if self.on_evict is None:
            return
        for entry in entries:
            self.on_evict(entry)

    def _path_for(self, name: str) -> Path:
        if not _VALID_NAME.match(name):
            raise ServingError(f"invalid model name {name!r}")
        return self.model_dir / f"{name}.npz"
