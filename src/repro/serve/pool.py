"""Pre-fork worker pool: N serving processes behind one router.

One :class:`~repro.serve.http.ReproHTTPServer` runs every request thread
under a single GIL, so its micro-batched throughput is one core's.  The
pool escapes that ceiling the way SafarDB shards state across replicated
executors: N worker processes each run the full single-process serving
stack (registry, micro-batchers, hot reload) on an ephemeral port, and the
front router (:mod:`repro.serve.router`) forwards each request to the
worker that owns its model's shard.

Design points:

* **Sharding is a routing policy, not a partition.**  ``shard_for(name,
  n)`` maps a model name to its *primary* worker, so in steady state each
  worker's LRU holds only its shard's models.  But every worker can load
  every checkpoint (the model directory is shared), which is what lets the
  router fail a read over to a sibling when the primary dies — no shard is
  ever lost with the primary.
* **Checkpoints are shared, not copied.**  Before forking, the parent
  loads every checkpoint's arrays once into ``multiprocessing.shared_memory``
  (:class:`repro.serialize.SharedCheckpointStore`) and passes the manifest
  to the workers, whose registries attach zero-copy read-only views — N
  workers, one copy of the weights.
* **Recovery runs once, before fork.**  ``wal_dir`` triggers
  :func:`repro.wal.recover_model_dir` in the parent; workers are started
  with recovery already done, so N processes never race to replay the
  same journal.
* **Workers are supervised.**  A daemon thread respawns any worker whose
  process died (SIGKILL chaos included); the router retries idempotent
  reads on siblings while the respawn is in flight.

Workers are started with the ``forkserver`` method when available (the
supervisor respawns from a threaded parent, where raw ``fork`` can
deadlock) and ``spawn`` otherwise; ``REPRO_POOL_START_METHOD`` overrides.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from ..exceptions import ServingError
from ..obs.logging import get_logger, set_log_context
from ..obs.metrics import get_registry

__all__ = ["WorkerConfig", "WorkerPool", "shard_for"]

#: How long a worker may take to bind its port and report ready.
_READY_TIMEOUT = 30.0
#: Supervisor poll cadence for dead-worker detection.
_SUPERVISE_INTERVAL = 0.1

_LOG = get_logger("pool")


def shard_for(name: str, n_workers: int) -> int:
    """Primary worker index for a model/index name.

    CRC32 is stable across processes and Python versions (unlike
    ``hash``, which is salted per process) — the router and any future
    external client agree on the mapping.
    """
    if n_workers < 1:
        raise ServingError("n_workers must be >= 1")
    return zlib.crc32(name.encode("utf-8")) % n_workers


@dataclass
class WorkerConfig:
    """Everything a worker process needs to build its serving stack.

    Picklable: travels to the child under fork, forkserver *and* spawn.
    """

    model_dir: str
    index: int
    host: str = "127.0.0.1"
    max_loaded: int = 4
    max_batch_rows: int = 256
    max_delay: float = 0.002
    micro_batching: bool = True
    reload_interval: float | None = None
    #: Shared-memory manifest from the parent's checkpoint store.
    shared_manifest: dict = field(default_factory=dict)


def _worker_main(config: WorkerConfig, conn) -> None:
    """Worker process entry point: serve until SIGTERM.

    Reports ``("ready", port)`` or ``("error", message)`` over ``conn``
    exactly once, then serves forever.  SIGTERM triggers a graceful
    shutdown (in-flight requests finish); SIGINT is ignored so a ^C at
    the parent's terminal doesn't kill workers before the pool's own
    orderly stop does.
    """
    from .http import create_server

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # Stamp worker identity onto every structured log record this
    # process emits, so pool-wide stderr is attributable per worker.
    set_log_context(worker=config.index)
    try:
        server = create_server(
            config.model_dir, host=config.host, port=0,
            max_loaded=config.max_loaded,
            max_batch_rows=config.max_batch_rows,
            max_delay=config.max_delay,
            micro_batching=config.micro_batching,
            reload_interval=config.reload_interval,
            shared_manifest=config.shared_manifest or None,
            identity={"worker": config.index, "pid": os.getpid()},
            # The router owns the pool's single JobManager: jobs handled
            # per-shard would fragment the content-addressed dedup.
            jobs=False)
    except Exception as exc:
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
        conn.close()
        return

    def _terminate(signum, frame):
        # shutdown() blocks until serve_forever exits; calling it from
        # the signal frame (inside serve_forever) would deadlock.
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _terminate)
    conn.send(("ready", server.server_address[1]))
    conn.close()
    try:
        server.serve_forever(poll_interval=0.05)
    finally:
        server.server_close()


@dataclass
class _WorkerSlot:
    """Parent-side view of one worker process."""

    index: int
    process: object = None
    port: int | None = None
    restarts: int = 0


class WorkerPool:
    """Start, supervise and stop N serving worker processes.

    The pool owns boot-order invariants (WAL recovery before fork,
    shared-memory publication before fork) and the respawn loop; request
    routing lives in :class:`repro.serve.router.PoolRouter`, which reads
    worker addresses through :meth:`address_of`.

    ``kill_worker`` is the chaos hook the load harness uses: SIGKILL one
    worker and let the supervisor prove the respawn path.
    """

    def __init__(self, model_dir: str | Path, *, n_workers: int,
                 host: str = "127.0.0.1", max_loaded: int = 4,
                 max_batch_rows: int = 256, max_delay: float = 0.002,
                 micro_batching: bool = True,
                 reload_interval: float | None = None,
                 wal_dir: str | Path | None = None,
                 shared_memory: bool = True,
                 start_method: str | None = None) -> None:
        if n_workers < 1:
            raise ServingError("n_workers must be >= 1")
        self.model_dir = Path(model_dir)
        if not self.model_dir.is_dir():
            raise ServingError(f"model directory not found: {self.model_dir}")
        self.n_workers = int(n_workers)
        self.host = host
        self.wal_dir = wal_dir
        self.shared_memory = shared_memory
        self._config_kwargs = dict(
            max_loaded=max_loaded, max_batch_rows=max_batch_rows,
            max_delay=max_delay, micro_batching=micro_batching,
            reload_interval=reload_interval)
        self._context = multiprocessing.get_context(
            _resolve_start_method(start_method))
        self._store = None
        self._slots = [_WorkerSlot(index=i) for i in range(self.n_workers)]
        self._lock = threading.Lock()
        self._stopping = threading.Event()
        self._supervisor: threading.Thread | None = None
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Recover, share, fork, and wait for every worker to bind."""
        if self._started:
            raise ServingError("pool already started")
        # Boot-order invariant 1: WAL recovery happens exactly once, in
        # the parent, before any worker exists — N workers must never
        # race to replay the same journal.
        if self.wal_dir is not None:
            from ..wal import recover_model_dir

            recover_model_dir(self.model_dir, self.wal_dir)
        # Boot-order invariant 2: checkpoints go into shared memory
        # before forking so every worker attaches the same segments.
        manifest: dict = {}
        if self.shared_memory:
            from ..serialize import SharedCheckpointStore

            self._store = SharedCheckpointStore(
                prefix=f"repro-pool-{os.getpid()}")
            try:
                self._store.share_directory(self.model_dir)
                manifest = dict(self._store.manifest)
            except Exception:
                # Sharing is an optimisation; boot without it.
                self._store.close()
                self._store = None
        self._manifest = manifest
        self._started = True
        try:
            for slot in self._slots:
                self._spawn(slot)
        except Exception:
            self.stop()
            raise
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-pool-supervisor", daemon=True)
        self._supervisor.start()

    def _spawn(self, slot: _WorkerSlot) -> None:
        """Start (or restart) the worker in ``slot``; block until ready."""
        config = WorkerConfig(
            model_dir=str(self.model_dir), index=slot.index, host=self.host,
            shared_manifest=self._manifest, **self._config_kwargs)
        parent_conn, child_conn = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_worker_main, args=(config, child_conn),
            name=f"repro-pool-worker-{slot.index}", daemon=True)
        process.start()
        child_conn.close()
        try:
            if not parent_conn.poll(_READY_TIMEOUT):
                raise ServingError(
                    f"worker {slot.index} did not report ready within "
                    f"{_READY_TIMEOUT}s")
            status, value = parent_conn.recv()
        except (EOFError, OSError) as exc:
            process.terminate()
            raise ServingError(
                f"worker {slot.index} died during startup") from exc
        finally:
            parent_conn.close()
        if status != "ready":
            process.join(timeout=5.0)
            _LOG.error("worker_start_failed", worker=slot.index,
                       reason=str(value))
            raise ServingError(f"worker {slot.index} failed to start: {value}")
        with self._lock:
            slot.process = process
            slot.port = int(value)
        _LOG.info("worker_started", worker=slot.index, pid=process.pid,
                  port=int(value), restarts=slot.restarts)

    def _supervise(self) -> None:
        """Respawn any worker whose process died, until the pool stops."""
        respawns = get_registry().counter(
            "repro_pool_respawns_total",
            "Worker processes respawned by the supervisor", ("worker",))
        while not self._stopping.wait(_SUPERVISE_INTERVAL):
            for slot in self._slots:
                with self._lock:
                    process = slot.process
                if process is None or process.is_alive():
                    continue
                if self._stopping.is_set():
                    return
                with self._lock:
                    slot.port = None
                    slot.restarts += 1
                _LOG.warning("worker_died", worker=slot.index,
                             pid=process.pid, exitcode=process.exitcode,
                             restarts=slot.restarts)
                respawns.inc(worker=slot.index)
                try:
                    self._spawn(slot)
                except ServingError as exc:  # pragma: no cover - next tick
                    _LOG.error("worker_respawn_failed", worker=slot.index,
                               reason=str(exc))
                    continue

    # ------------------------------------------------------------------
    def address_of(self, index: int) -> tuple[str, int] | None:
        """``(host, port)`` of a live worker, or ``None`` while it is down."""
        slot = self._slots[index]
        with self._lock:
            process, port = slot.process, slot.port
        if process is None or port is None or not process.is_alive():
            return None
        return (self.host, port)

    def note_dead(self, index: int) -> None:
        """Router hint: drop the cached port so callers stop targeting it.

        The supervisor notices the dead process on its own within one
        poll interval; this just shortens the window in which other
        request threads keep dialling a dead port.
        """
        slot = self._slots[index]
        with self._lock:
            process = slot.process
            if process is not None and not process.is_alive():
                slot.port = None

    def kill_worker(self, index: int) -> int | None:
        """SIGKILL one worker (chaos hook); returns the killed pid."""
        slot = self._slots[index]
        with self._lock:
            process = slot.process
        if process is None or not process.is_alive():
            return None
        pid = process.pid
        os.kill(pid, signal.SIGKILL)
        return pid

    def wait_all_ready(self, timeout: float = 30.0) -> bool:
        """Block until every worker has a live port (after chaos)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if all(self.address_of(i) is not None
                   for i in range(self.n_workers)):
                return True
            time.sleep(0.02)
        return False

    @property
    def restarts(self) -> list[int]:
        """Per-worker respawn counts (chaos/test observability)."""
        with self._lock:
            return [slot.restarts for slot in self._slots]

    def describe(self) -> list[dict]:
        """One status row per worker for the router's health payload."""
        rows = []
        for slot in self._slots:
            with self._lock:
                process, port = slot.process, slot.port
            alive = process is not None and process.is_alive()
            rows.append({"worker": slot.index, "alive": alive,
                         "port": port if alive else None,
                         "pid": process.pid if alive else None,
                         "restarts": slot.restarts})
        return rows

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Terminate every worker and release the shared segments."""
        self._stopping.set()
        supervisor = self._supervisor
        self._supervisor = None
        if supervisor is not None:
            supervisor.join(timeout=5.0)
        for slot in self._slots:
            with self._lock:
                process = slot.process
                slot.process = None
                slot.port = None
            if process is None:
                continue
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.kill()
                process.join(timeout=5.0)
        if self._store is not None:
            self._store.close()
            self._store = None

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def _resolve_start_method(requested: str | None) -> str:
    """Pick the multiprocessing start method for pool workers.

    ``forkserver`` by default: workers are respawned from the parent's
    supervisor *thread*, where raw ``fork`` can deadlock on locks held by
    other threads at fork time.  ``spawn`` is the portable fallback;
    ``REPRO_POOL_START_METHOD`` (or the ``start_method`` argument)
    overrides for debugging.
    """
    choice = requested or os.environ.get("REPRO_POOL_START_METHOD")
    available = multiprocessing.get_all_start_methods()
    if choice:
        if choice not in available:
            raise ServingError(
                f"start method {choice!r} not available (have: {available})")
        return choice
    return "forkserver" if "forkserver" in available else "spawn"
