"""Zero-dependency observability: metrics, tracing, structured logs.

The serving, WAL and streaming layers instrument themselves through this
package; workers expose ``GET /metrics`` (Prometheus text), the pool
router aggregates worker registries, ``/stats?verbose=1`` carries the
slowest-request span breakdowns, and ``repro top`` renders a live view.

Metric naming convention: ``repro_<component>_<what>_<unit>`` with
counters suffixed ``_total`` and latency histograms suffixed
``_seconds`` (e.g. ``repro_http_requests_total``,
``repro_batch_queue_wait_seconds``).
"""

from .logging import (StructuredLogger, configure_logging, get_logger,
                      set_log_context)
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      default_buckets, get_registry, histogram_quantile,
                      merge_snapshots, obs_enabled, render_prometheus,
                      reset_registry, set_enabled,
                      validate_prometheus_text)
from .trace import (TRACE_HEADER, Span, Trace, TraceStore, current_trace,
                    get_trace_store, new_trace_id, record_span,
                    request_trace, span, valid_trace_id)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "StructuredLogger",
    "TRACE_HEADER",
    "Trace",
    "TraceStore",
    "configure_logging",
    "current_trace",
    "default_buckets",
    "get_logger",
    "get_registry",
    "get_trace_store",
    "histogram_quantile",
    "merge_snapshots",
    "new_trace_id",
    "obs_enabled",
    "record_span",
    "render_prometheus",
    "request_trace",
    "reset_registry",
    "set_enabled",
    "set_log_context",
    "span",
    "valid_trace_id",
]
