"""Structured JSON-lines logging with trace and worker context.

Replaces the serving stack's bare prints and silent code paths (pool
respawns, hot reloads, WAL recovery, repair) with one-line JSON records
on stderr::

    {"ts": "2026-08-07T12:00:00.123Z", "level": "info", "component":
     "pool", "event": "worker_respawned", "pid": 4242, "worker": 1, ...}

Every record carries the active trace id (when a request trace is open,
see :mod:`repro.obs.trace`), the process pid, and any process-global
fields registered via :func:`set_log_context` — worker processes set
their worker index there so their log lines are attributable without
grepping pids.  ``REPRO_LOG_LEVEL`` (debug/info/warning/error/off)
controls verbosity; :func:`configure_logging` redirects the stream for
tests.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time

__all__ = [
    "StructuredLogger",
    "configure_logging",
    "get_logger",
    "set_log_context",
]

_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40, "off": 100}

_lock = threading.Lock()
_stream = None  # None -> sys.stderr at call time (survives capture swaps)
_threshold = _LEVELS.get(
    os.environ.get("REPRO_LOG_LEVEL", "info").lower(), 20)
_context: dict[str, object] = {}
_loggers: dict[str, "StructuredLogger"] = {}


def configure_logging(stream=None, level: str | None = None) -> None:
    """Redirect log output and/or change the level threshold.

    ``stream=None`` restores the default (current ``sys.stderr``).
    """
    global _stream, _threshold
    with _lock:
        _stream = stream
        if level is not None:
            if level.lower() not in _LEVELS:
                raise ValueError(f"unknown log level {level!r}")
            _threshold = _LEVELS[level.lower()]


def set_log_context(**fields: object) -> None:
    """Merge process-global fields into every future log record.

    Pass ``field=None`` to remove a field.
    """
    with _lock:
        for name, value in fields.items():
            if value is None:
                _context.pop(name, None)
            else:
                _context[name] = value


def _timestamp() -> str:
    now = time.time()
    base = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(now))
    return f"{base}.{int((now % 1) * 1000):03d}Z"


class StructuredLogger:
    """Component-scoped emitter of JSON-lines log records."""

    __slots__ = ("component",)

    def __init__(self, component: str) -> None:
        self.component = component

    def log(self, level: str, event: str, **fields: object) -> None:
        """Emit one record when ``level`` clears the threshold."""
        severity = _LEVELS.get(level, 20)
        if severity < _threshold:
            return
        record: dict[str, object] = {
            "ts": _timestamp(),
            "level": level,
            "component": self.component,
            "event": event,
            "pid": os.getpid(),
        }
        with _lock:
            record.update(_context)
            stream = _stream
        # Imported here to avoid a cycle (trace imports metrics only,
        # but keeps this module importable standalone).
        from .trace import current_trace
        trace = current_trace()
        if trace is not None:
            record["trace_id"] = trace.trace_id
        record.update(fields)
        line = json.dumps(record, default=str, separators=(",", ":"))
        out = stream if stream is not None else sys.stderr
        try:
            out.write(line + "\n")
            out.flush()
        except (OSError, ValueError):
            pass  # a closed stderr must never take down the server

    def debug(self, event: str, **fields: object) -> None:
        """Emit a debug-level record."""
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: object) -> None:
        """Emit an info-level record."""
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: object) -> None:
        """Emit a warning-level record."""
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: object) -> None:
        """Emit an error-level record."""
        self.log("error", event, **fields)


def get_logger(component: str) -> StructuredLogger:
    """Return the (memoised) logger for one component name."""
    with _lock:
        logger = _loggers.get(component)
        if logger is None:
            logger = StructuredLogger(component)
            _loggers[component] = logger
        return logger
