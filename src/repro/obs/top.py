"""Live terminal dashboard over a serving endpoint: ``repro top``.

Polls ``GET /metrics?format=json`` (the registry snapshot — a single
server's own, or the router's fleet-wide merge) plus ``GET /stats`` and
renders a compact table view:

* per-endpoint requests-per-second (delta between polls), p50/p99 request
  latency estimated from the histogram buckets, and error counts;
* per-stage latency (queue wait, batch forward, embed, WAL append/fsync)
  with observation rates;
* a summary line with inflight requests, 429 rejections, failovers,
  worker respawns and hot-reload generations.

Zero dependencies: stdlib ``urllib`` + ANSI clear codes when stdout is a
terminal.  ``--once`` prints a single frame (scriptable); ``--iterations``
bounds the loop (tests use both).
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request

from .metrics import histogram_quantile

__all__ = ["render_dashboard", "run_top"]

#: Stage histograms shown in the stage table, display order.
_STAGE_HISTOGRAMS = (
    ("queue wait", "repro_batch_queue_wait_seconds"),
    ("batch forward", "repro_batch_forward_seconds"),
    ("embed", "repro_embed_seconds"),
    ("wal append", "repro_wal_append_seconds"),
    ("wal fsync", "repro_wal_fsync_seconds"),
    ("checkpoint load", "repro_checkpoint_load_seconds"),
    ("stream update", "repro_stream_update_seconds"),
)


def _fetch_json(url: str, timeout: float = 5.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def _counter_total(snapshot: dict, name: str, **match: str) -> float:
    """Sum a counter/gauge family's series, optionally filtered by labels."""
    family = snapshot.get(name)
    if not family:
        return 0.0
    total = 0.0
    for series in family.get("series", []):
        labels = series.get("labels", {})
        if all(labels.get(k) == v for k, v in match.items()):
            total += float(series.get("value", 0.0))
    return total


def _histogram_series(snapshot: dict, name: str):
    """Yield ``(labels, counts, sum, count, bounds)`` for one histogram."""
    family = snapshot.get(name)
    if not family or family.get("type") != "histogram":
        return
    bounds = list(family.get("bounds", []))
    for series in family.get("series", []):
        yield (series.get("labels", {}), list(series.get("counts", [])),
               float(series.get("sum", 0.0)), int(series.get("count", 0)),
               bounds)


def _merged_histogram(snapshot: dict, name: str):
    """Collapse a histogram family's series into one (counts, sum, count)."""
    counts: list[int] = []
    total_sum, total_count = 0.0, 0
    bounds: list[float] = []
    for _, series_counts, series_sum, series_count, series_bounds in \
            _histogram_series(snapshot, name):
        if not counts:
            counts = list(series_counts)
            bounds = series_bounds
        elif len(series_counts) == len(counts):
            counts = [a + b for a, b in zip(counts, series_counts)]
        total_sum += series_sum
        total_count += series_count
    return counts, total_sum, total_count, bounds


def _fmt_ms(seconds: float) -> str:
    if seconds <= 0:
        return "-"
    if seconds < 1.0:
        return f"{seconds * 1000:.1f}ms"
    return f"{seconds:.2f}s"


def _fmt_rate(value: float) -> str:
    if value <= 0:
        return "-"
    return f"{value:.1f}/s" if value >= 0.95 else f"{value:.2f}/s"


def _table(headers: list[str], rows: list[list[str]]) -> list[str]:
    widths = [len(header) for header in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(cells, widths)).rstrip()
    lines = [fmt(headers), fmt(["-" * width for width in widths])]
    lines.extend(fmt(row) for row in rows)
    return lines


def _endpoint_rows(snapshot: dict, previous: dict | None,
                   elapsed: float) -> list[list[str]]:
    """One row per endpoint: rps, p50/p99, errors — router or worker view."""
    rows = []
    for counter_name, histogram_name in (
            ("repro_router_requests_total", "repro_router_request_seconds"),
            ("repro_http_requests_total", "repro_http_request_seconds")):
        family = snapshot.get(counter_name)
        if not family:
            continue
        endpoints: dict[str, dict[str, float]] = {}
        for series in family.get("series", []):
            labels = series.get("labels", {})
            endpoint = labels.get("endpoint", "?")
            bucket = endpoints.setdefault(endpoint,
                                          {"total": 0.0, "errors": 0.0})
            value = float(series.get("value", 0.0))
            bucket["total"] += value
            status = str(labels.get("status", ""))
            if status and not status.startswith("2"):
                bucket["errors"] += value
        for endpoint in sorted(endpoints):
            bucket = endpoints[endpoint]
            delta = bucket["total"]
            if previous is not None:
                delta -= sum(
                    float(series.get("value", 0.0))
                    for series in previous.get(counter_name, {})
                    .get("series", [])
                    if series.get("labels", {}).get("endpoint") == endpoint)
            rate = delta / elapsed if elapsed > 0 else 0.0
            p50 = p99 = 0.0
            for labels, counts, _, count, bounds in _histogram_series(
                    snapshot, histogram_name):
                if labels.get("endpoint") == endpoint and count:
                    p50 = histogram_quantile(0.50, counts, bounds)
                    p99 = histogram_quantile(0.99, counts, bounds)
            rows.append([endpoint, f"{int(bucket['total'])}",
                         _fmt_rate(rate), _fmt_ms(p50), _fmt_ms(p99),
                         f"{int(bucket['errors'])}"])
        if rows:
            break  # Prefer the router's view when both families exist.
    return rows


def _stage_rows(snapshot: dict, previous: dict | None,
                elapsed: float) -> list[list[str]]:
    rows = []
    for label, name in _STAGE_HISTOGRAMS:
        counts, _, count, bounds = _merged_histogram(snapshot, name)
        if not count:
            continue
        delta = float(count)
        if previous is not None:
            _, _, previous_count, _ = _merged_histogram(previous, name)
            delta -= previous_count
        rate = delta / elapsed if elapsed > 0 else 0.0
        p50 = histogram_quantile(0.50, counts, bounds) if counts else 0.0
        p99 = histogram_quantile(0.99, counts, bounds) if counts else 0.0
        rows.append([label, f"{count}", _fmt_rate(rate),
                     _fmt_ms(p50), _fmt_ms(p99)])
    return rows


def _summary_line(snapshot: dict, stats: dict | None) -> str:
    parts = []
    inflight = _counter_total(snapshot, "repro_router_inflight")
    parts.append(f"inflight={int(inflight)}")
    rejected = _counter_total(snapshot, "repro_router_events_total",
                              event="rejected_overload")
    parts.append(f"429s={int(rejected)}")
    failovers = _counter_total(snapshot, "repro_router_events_total",
                               event="failover")
    parts.append(f"failovers={int(failovers)}")
    respawns = _counter_total(snapshot, "repro_pool_respawns_total")
    parts.append(f"respawns={int(respawns)}")
    generations = snapshot.get("repro_reload_generation", {})
    gens = {series["labels"].get("model", "?"): int(series["value"])
            for series in generations.get("series", [])}
    if gens:
        rendered = ",".join(f"{model}:g{gen}"
                            for model, gen in sorted(gens.items()))
        parts.append(f"reload={rendered}")
    if stats and "pool" in stats:
        pool = stats["pool"]
        alive = sum(1 for worker in pool.get("workers", [])
                    if worker.get("alive"))
        parts.append(f"workers={alive}/{len(pool.get('workers', []))}")
    return "  ".join(parts)


def render_dashboard(snapshot: dict, stats: dict | None = None, *,
                     previous: dict | None = None,
                     elapsed: float = 0.0, base_url: str = "") -> str:
    """Render one dashboard frame from a metrics snapshot (+ stats)."""
    lines = [f"repro top — {base_url}".rstrip(" —"), ""]
    endpoint_rows = _endpoint_rows(snapshot, previous, elapsed)
    if endpoint_rows:
        lines.extend(_table(
            ["endpoint", "requests", "rps", "p50", "p99", "errors"],
            endpoint_rows))
    else:
        lines.append("no request traffic yet")
    stage_rows = _stage_rows(snapshot, previous, elapsed)
    if stage_rows:
        lines.append("")
        lines.extend(_table(["stage", "obs", "rate", "p50", "p99"],
                            stage_rows))
    lines.append("")
    lines.append(_summary_line(snapshot, stats))
    return "\n".join(lines) + "\n"


def run_top(base_url: str, *, interval: float = 2.0,
            iterations: int | None = None, once: bool = False,
            out=None, fetch=None) -> int:
    """Poll ``base_url`` and render the dashboard until interrupted.

    ``once`` prints a single frame; ``iterations`` bounds the loop.
    ``fetch`` overrides the JSON getter (tests).  Returns an exit code.
    """
    out = out if out is not None else sys.stdout
    fetch = fetch if fetch is not None else _fetch_json
    base = base_url.rstrip("/")
    previous: dict | None = None
    previous_at = 0.0
    frame = 0
    clear = getattr(out, "isatty", lambda: False)() and not once
    while True:
        try:
            snapshot = fetch(f"{base}/metrics?format=json")
        except (urllib.error.URLError, OSError, ValueError) as exc:
            print(f"error: cannot reach {base}/metrics: {exc}",
                  file=sys.stderr)
            return 1
        try:
            stats = fetch(f"{base}/stats")
        except (urllib.error.URLError, OSError, ValueError):
            stats = None
        now = time.monotonic()
        elapsed = (now - previous_at) if previous is not None else 0.0
        if clear:
            out.write("\x1b[2J\x1b[H")
        out.write(render_dashboard(snapshot, stats, previous=previous,
                                   elapsed=elapsed, base_url=base))
        out.flush()
        previous, previous_at = snapshot, now
        frame += 1
        if once or (iterations is not None and frame >= iterations):
            return 0
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0
