"""Thread-safe metrics registry with Prometheus text exposition.

Zero-dependency instrumentation primitives for the serving stack:

* :class:`Counter` — monotonically increasing totals (requests, respawns);
* :class:`Gauge` — point-in-time values (inflight requests, generations);
* :class:`Histogram` — log-bucketed latency distributions with cumulative
  bucket counts, a running sum and a total count, from which p50/p99 are
  estimated via :func:`histogram_quantile`.

All three support a fixed set of label names declared at registration
time; each distinct label-value combination materialises one time series.
A process-wide default registry (:func:`get_registry`) backs the serving
layer; worker processes expose their registry as JSON (``/metrics?format=
json``) so the pool router can :func:`merge_snapshots` and re-render the
fleet-wide view as Prometheus text with :func:`render_prometheus`.

Instrumentation can be globally disabled (:func:`set_enabled`) which turns
every ``inc``/``set``/``observe`` into an early return — the property the
``test_obs_overhead`` bench gate measures.
"""

from __future__ import annotations

import math
import re
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_buckets",
    "get_registry",
    "reset_registry",
    "set_enabled",
    "obs_enabled",
    "merge_snapshots",
    "render_prometheus",
    "validate_prometheus_text",
    "histogram_quantile",
]

_ENABLED = True

#: Valid Prometheus metric / label name.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
#: One exposition sample line: ``name{labels} value``.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>[^ ]+)$")
_LABEL_PAIR_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def set_enabled(enabled: bool) -> None:
    """Globally enable or disable metric recording (and span capture)."""
    global _ENABLED
    _ENABLED = bool(enabled)


def obs_enabled() -> bool:
    """Return True when instrumentation is globally enabled."""
    return _ENABLED


def default_buckets() -> tuple[float, ...]:
    """Geometric latency buckets: 100µs doubling up to ~52s."""
    return tuple(0.0001 * (2.0 ** i) for i in range(20))


class _Metric:
    """Shared label-handling plumbing for the three metric types."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 labelnames: tuple[str, ...] = ()) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_NAME_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._series: dict[tuple[str, ...], object] = {}

    def _key(self, labels: dict[str, object]) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}")
        return tuple(str(labels[name]) for name in self.labelnames)

    def _series_snapshot(self) -> list[dict]:
        raise NotImplementedError

    def snapshot(self) -> dict:
        """Return this metric family as a JSON-able dict."""
        return {
            "type": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "series": self._series_snapshot(),
        }


class Counter(_Metric):
    """Monotonically increasing counter; one value per label set."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Increase the counter by ``amount`` (default 1)."""
        if not _ENABLED:
            return
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        """Current value of one series (0 when never incremented)."""
        with self._lock:
            return float(self._series.get(self._key(labels), 0.0))

    def _series_snapshot(self) -> list[dict]:
        with self._lock:
            return [
                {"labels": dict(zip(self.labelnames, key)), "value": value}
                for key, value in sorted(self._series.items())
            ]


class Gauge(_Metric):
    """Point-in-time value that can go up and down."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        """Set the gauge to ``value``."""
        if not _ENABLED:
            return
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` to the gauge (default +1)."""
        if not _ENABLED:
            return
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        """Subtract ``amount`` from the gauge (default -1)."""
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        """Current value of one series (0 when never set)."""
        with self._lock:
            return float(self._series.get(self._key(labels), 0.0))

    def _series_snapshot(self) -> list[dict]:
        with self._lock:
            return [
                {"labels": dict(zip(self.labelnames, key)), "value": value}
                for key, value in sorted(self._series.items())
            ]


class Histogram(_Metric):
    """Cumulative histogram over geometric buckets plus sum and count."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 labelnames: tuple[str, ...] = (),
                 buckets: tuple[float, ...] | None = None) -> None:
        super().__init__(name, help_text, labelnames)
        bounds = tuple(sorted(buckets if buckets is not None
                              else default_buckets()))
        if not bounds:
            raise ValueError(f"{name}: at least one bucket bound required")
        self.bounds = bounds

    def observe(self, value: float, **labels: object) -> None:
        """Record one observation."""
        if not _ENABLED:
            return
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = {"counts": [0] * (len(self.bounds) + 1),
                          "sum": 0.0, "count": 0}
                self._series[key] = series
            index = len(self.bounds)
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    index = i
                    break
            series["counts"][index] += 1
            series["sum"] += value
            series["count"] += 1

    def _series_snapshot(self) -> list[dict]:
        with self._lock:
            return [
                {
                    "labels": dict(zip(self.labelnames, key)),
                    "counts": list(series["counts"]),
                    "sum": series["sum"],
                    "count": series["count"],
                }
                for key, series in sorted(self._series.items())
            ]

    def snapshot(self) -> dict:
        """Return the histogram family including its bucket bounds."""
        doc = super().snapshot()
        doc["bounds"] = list(self.bounds)
        return doc


class MetricsRegistry:
    """Named registry of metric families; get-or-create semantics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls: type, name: str, help_text: str,
                       labelnames: tuple[str, ...],
                       **kwargs: object) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is not None:
                if not isinstance(metric, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{metric.kind}, not {cls.kind}")
                return metric
            metric = cls(name, help_text, tuple(labelnames), **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "",
                labelnames: tuple[str, ...] = ()) -> Counter:
        """Get or create a :class:`Counter` family."""
        return self._get_or_create(Counter, name, help_text, labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: tuple[str, ...] = ()) -> Gauge:
        """Get or create a :class:`Gauge` family."""
        return self._get_or_create(Gauge, name, help_text, labelnames)

    def histogram(self, name: str, help_text: str = "",
                  labelnames: tuple[str, ...] = (),
                  buckets: tuple[float, ...] | None = None) -> Histogram:
        """Get or create a :class:`Histogram` family."""
        return self._get_or_create(Histogram, name, help_text, labelnames,
                                   buckets=buckets)

    def snapshot(self) -> dict:
        """JSON-able snapshot ``{name: family}`` of every metric family."""
        with self._lock:
            metrics = list(self._metrics.items())
        return {name: metric.snapshot() for name, metric in sorted(metrics)}


_default_registry = MetricsRegistry()
_default_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """Return the process-wide default registry."""
    return _default_registry


def reset_registry() -> MetricsRegistry:
    """Replace the default registry with a fresh one (tests only)."""
    global _default_registry
    with _default_lock:
        _default_registry = MetricsRegistry()
        return _default_registry


def _series_key(labels: dict) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Merge registry snapshots by summing matching series.

    Counters and histograms sum; gauges also sum (the fleet-level reading
    of inflight-style gauges is the sum over workers).  Histogram series
    only merge when bucket bounds match; a mismatched family keeps the
    first snapshot's bounds and drops the incompatible series.
    """
    merged: dict[str, dict] = {}
    for snapshot in snapshots:
        for name, family in snapshot.items():
            target = merged.get(name)
            if target is None:
                target = {
                    "type": family["type"],
                    "help": family.get("help", ""),
                    "labelnames": list(family.get("labelnames", [])),
                    "series": {},
                }
                if family["type"] == "histogram":
                    target["bounds"] = list(family.get("bounds", []))
                merged[name] = target
            if target["type"] != family["type"]:
                continue
            if (family["type"] == "histogram"
                    and list(family.get("bounds", [])) != target["bounds"]):
                continue
            for series in family.get("series", []):
                key = _series_key(series["labels"])
                existing = target["series"].get(key)
                if family["type"] == "histogram":
                    if existing is None:
                        target["series"][key] = {
                            "labels": dict(series["labels"]),
                            "counts": list(series["counts"]),
                            "sum": float(series["sum"]),
                            "count": int(series["count"]),
                        }
                    else:
                        existing["counts"] = [
                            a + b for a, b in zip(existing["counts"],
                                                  series["counts"])]
                        existing["sum"] += float(series["sum"])
                        existing["count"] += int(series["count"])
                else:
                    if existing is None:
                        target["series"][key] = {
                            "labels": dict(series["labels"]),
                            "value": float(series["value"]),
                        }
                    else:
                        existing["value"] += float(series["value"])
    return {
        name: {**family, "series": [family["series"][key]
                                    for key in sorted(family["series"])]}
        for name, family in sorted(merged.items())
    }


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _format_labels(labels: dict, extra: dict | None = None) -> str:
    pairs = dict(labels)
    if extra:
        pairs.update(extra)
    if not pairs:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in sorted(pairs.items()))
    return "{" + body + "}"


def _format_value(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_bound(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else _format_value(bound)


def render_prometheus(snapshot: dict | MetricsRegistry) -> str:
    """Render a registry (or snapshot dict) in Prometheus text format."""
    if isinstance(snapshot, MetricsRegistry):
        snapshot = snapshot.snapshot()
    lines: list[str] = []
    for name, family in sorted(snapshot.items()):
        kind = family["type"]
        lines.append(f"# HELP {name} {_escape_help(family.get('help', ''))}")
        lines.append(f"# TYPE {name} {kind}")
        for series in family.get("series", []):
            labels = series["labels"]
            if kind == "histogram":
                bounds = list(family.get("bounds", []))
                cumulative = 0
                for bound, count in zip(bounds + [math.inf],
                                        series["counts"]):
                    cumulative += count
                    lines.append(
                        f"{name}_bucket"
                        f"{_format_labels(labels, {'le': _format_bound(bound)})}"
                        f" {cumulative}")
                lines.append(f"{name}_sum{_format_labels(labels)} "
                             f"{_format_value(series['sum'])}")
                lines.append(f"{name}_count{_format_labels(labels)} "
                             f"{int(series['count'])}")
            else:
                lines.append(f"{name}{_format_labels(labels)} "
                             f"{_format_value(series['value'])}")
    return "\n".join(lines) + "\n"


def validate_prometheus_text(text: str) -> int:
    """Validate Prometheus exposition text; return the sample count.

    Raises :class:`ValueError` naming the first malformed line.  Checks
    line syntax, metric/label name validity, numeric sample values,
    ``# TYPE`` declarations, and that histogram ``_bucket`` series are
    cumulative (non-decreasing in ``le`` order, ending at ``+Inf``).
    """
    types: dict[str, str] = {}
    samples = 0
    bucket_state: dict[str, tuple[float, float]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {lineno}: malformed comment {line!r}")
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in (
                        "counter", "gauge", "histogram", "summary",
                        "untyped"):
                    raise ValueError(
                        f"line {lineno}: malformed TYPE line {line!r}")
                types[parts[2]] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        label_blob = match.group("labels")
        label_pairs: dict[str, str] = {}
        if label_blob:
            for pair in re.split(r',(?=[a-zA-Z_])', label_blob):
                if not _LABEL_PAIR_RE.match(pair):
                    raise ValueError(
                        f"line {lineno}: malformed label pair {pair!r}")
                label_name, raw = pair.split("=", 1)
                label_pairs[label_name] = raw[1:-1]
        raw_value = match.group("value")
        if raw_value in ("+Inf", "-Inf", "NaN"):
            value = math.inf if raw_value == "+Inf" else (
                -math.inf if raw_value == "-Inf" else math.nan)
        else:
            try:
                value = float(raw_value)
            except ValueError:
                raise ValueError(
                    f"line {lineno}: non-numeric value {raw_value!r}") \
                    from None
        name = match.group("name")
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                base = name[: -len(suffix)]
                break
        if base not in types and name not in types:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no # TYPE declaration")
        if name.endswith("_bucket") and types.get(base) == "histogram":
            le = label_pairs.get("le")
            if le is None:
                raise ValueError(
                    f"line {lineno}: histogram bucket without le label")
            bound = math.inf if le == "+Inf" else float(le)
            series = name + _format_labels(
                {k: v for k, v in label_pairs.items() if k != "le"})
            prev_bound, prev_count = bucket_state.get(
                series, (-math.inf, -1.0))
            if bound <= prev_bound:
                bucket_state[series] = (bound, value)
            elif value < prev_count:
                raise ValueError(
                    f"line {lineno}: non-cumulative histogram bucket "
                    f"{line!r}")
            else:
                bucket_state[series] = (bound, value)
        samples += 1
    return samples


def histogram_quantile(q: float, counts: list[int],
                       bounds: list[float]) -> float:
    """Estimate the ``q`` quantile from cumulative histogram buckets.

    ``counts`` holds per-bucket (non-cumulative) counts, one per bound
    plus a final overflow bucket.  Linearly interpolates within the
    containing bucket; returns 0.0 for an empty histogram.
    """
    total = sum(counts)
    if total <= 0:
        return 0.0
    rank = q * total
    cumulative = 0.0
    for i, count in enumerate(counts):
        if count <= 0:
            continue
        if cumulative + count >= rank:
            lower = bounds[i - 1] if i > 0 else 0.0
            upper = bounds[i] if i < len(bounds) else bounds[-1] * 2
            fraction = (rank - cumulative) / count
            return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        cumulative += count
    return bounds[-1] * 2
