"""Per-request tracing: trace ids, spans, and a slowest-N trace store.

A trace is minted at the HTTP edge (router or single-process server) and
propagated two ways: across processes via the ``X-Repro-Trace`` header,
and within a process via a :mod:`contextvars` variable so deeper layers
(micro-batcher, model forward, embed path, WAL append) can attach spans
without any plumbing through function signatures.

Each span records a name, an offset from trace start, a duration and
free-form attributes.  Completed traces land in a :class:`TraceStore`
which retains the slowest N; the serving layer exposes them under
``/stats?verbose=1`` so one slow predict decomposes into queue-wait /
batch-forward / embed time.

When no trace is active (or instrumentation is globally disabled via
:func:`repro.obs.metrics.set_enabled`), :func:`span` degrades to a no-op
context manager — the cost on untraced paths is one ContextVar read.
"""

from __future__ import annotations

import contextlib
import heapq
import itertools
import re
import threading
import time
import uuid
from contextvars import ContextVar

from .metrics import obs_enabled

__all__ = [
    "TRACE_HEADER",
    "Span",
    "Trace",
    "TraceStore",
    "current_trace",
    "get_trace_store",
    "new_trace_id",
    "record_span",
    "request_trace",
    "span",
    "valid_trace_id",
]

#: HTTP header carrying the trace id across the router -> worker hop.
TRACE_HEADER = "X-Repro-Trace"

_TRACE_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

_current: ContextVar["Trace | None"] = ContextVar("repro_trace",
                                                  default=None)


def new_trace_id() -> str:
    """Mint a fresh 32-hex-char trace id."""
    return uuid.uuid4().hex


def valid_trace_id(value: str | None) -> bool:
    """True when ``value`` is a well-formed incoming trace id."""
    return bool(value) and _TRACE_ID_RE.match(value) is not None


class Span:
    """One recorded stage: name, offset from trace start, duration."""

    __slots__ = ("name", "offset_s", "duration_s", "attrs")

    def __init__(self, name: str, offset_s: float, duration_s: float,
                 attrs: dict | None = None) -> None:
        self.name = name
        self.offset_s = offset_s
        self.duration_s = duration_s
        self.attrs = attrs or {}

    def as_dict(self) -> dict:
        """JSON-able representation with millisecond timings."""
        doc = {
            "name": self.name,
            "offset_ms": round(self.offset_s * 1000.0, 3),
            "duration_ms": round(self.duration_s * 1000.0, 3),
        }
        if self.attrs:
            doc["attrs"] = dict(self.attrs)
        return doc


class Trace:
    """A single request's spans, keyed by a propagated trace id."""

    __slots__ = ("trace_id", "endpoint", "attrs", "started_wall",
                 "_t0", "duration_s", "_spans", "_lock")

    def __init__(self, endpoint: str, trace_id: str | None = None,
                 **attrs: object) -> None:
        self.trace_id = trace_id or new_trace_id()
        self.endpoint = endpoint
        self.attrs = dict(attrs)
        self.started_wall = time.time()
        self._t0 = time.perf_counter()
        self.duration_s = 0.0
        self._spans: list[Span] = []
        self._lock = threading.Lock()

    def record_span(self, name: str, start_perf: float, end_perf: float,
                    **attrs: object) -> None:
        """Attach a span from raw ``perf_counter`` timestamps."""
        span_obj = Span(name, max(start_perf - self._t0, 0.0),
                        max(end_perf - start_perf, 0.0), dict(attrs))
        with self._lock:
            self._spans.append(span_obj)

    def finish(self) -> None:
        """Mark the trace complete; fixes the total duration."""
        self.duration_s = max(time.perf_counter() - self._t0,
                              self.duration_s)

    @property
    def spans(self) -> list[Span]:
        """Spans recorded so far, in recording order."""
        with self._lock:
            return list(self._spans)

    def as_dict(self) -> dict:
        """JSON-able representation sorted by span offset."""
        with self._lock:
            spans = sorted(self._spans, key=lambda s: s.offset_s)
        doc = {
            "trace_id": self.trace_id,
            "endpoint": self.endpoint,
            "started": self.started_wall,
            "duration_ms": round(self.duration_s * 1000.0, 3),
            "spans": [span_obj.as_dict() for span_obj in spans],
        }
        if self.attrs:
            doc["attrs"] = dict(self.attrs)
        return doc


class TraceStore:
    """Bounded store keeping the slowest N completed traces."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._heap: list[tuple[float, int, Trace]] = []
        self._seq = itertools.count()

    def add(self, trace: Trace) -> None:
        """Record a completed trace, evicting the fastest when full."""
        entry = (trace.duration_s, next(self._seq), trace)
        with self._lock:
            if len(self._heap) < self.capacity:
                heapq.heappush(self._heap, entry)
            elif entry[0] > self._heap[0][0]:
                heapq.heapreplace(self._heap, entry)

    def snapshot(self) -> list[dict]:
        """Stored traces as dicts, slowest first."""
        with self._lock:
            entries = sorted(self._heap, reverse=True)
        return [trace.as_dict() for _, _, trace in entries]

    def clear(self) -> None:
        """Drop every stored trace."""
        with self._lock:
            self._heap.clear()


_default_store = TraceStore()


def get_trace_store() -> TraceStore:
    """Return the process-wide slowest-traces store."""
    return _default_store


def current_trace() -> Trace | None:
    """The trace active in this context, or None."""
    return _current.get()


@contextlib.contextmanager
def request_trace(endpoint: str, trace_id: str | None = None,
                  store: TraceStore | None = None, **attrs: object):
    """Open a trace for one request and publish it on completion.

    Sets the context variable for the duration of the block so nested
    :func:`span` calls attach to this trace; on exit the trace is
    finished and added to ``store`` (default: the process store).
    """
    if not obs_enabled():
        yield None
        return
    trace = Trace(endpoint, trace_id=trace_id, **attrs)
    token = _current.set(trace)
    try:
        yield trace
    finally:
        _current.reset(token)
        trace.finish()
        (store if store is not None else _default_store).add(trace)


@contextlib.contextmanager
def span(name: str, **attrs: object):
    """Record a span on the active trace; no-op without one."""
    trace = _current.get()
    if trace is None or not obs_enabled():
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        trace.record_span(name, start, time.perf_counter(), **attrs)


def record_span(name: str, start_perf: float, end_perf: float,
                **attrs: object) -> None:
    """Attach an after-the-fact span (timestamps taken elsewhere)."""
    trace = _current.get()
    if trace is None or not obs_enabled():
        return
    trace.record_span(name, start_perf, end_perf, **attrs)
