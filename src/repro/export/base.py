"""The pluggable exporter protocol: result rows -> serialised bytes.

Every exporter turns the same logical payload — a list of flat row
dictionaries, exactly what :func:`repro.experiments.reporting` renders for
the CLI — into one serialised byte string with a declared content type and
file suffix.  The jobs API (``GET /v1/jobs/{id}/result?format=...``), the
``repro export`` subcommand and any library caller all negotiate formats
through the same registry, so adding a format is one subclass plus one
:func:`register_exporter` call — no HTTP or CLI change.

Exporters are stateless and thread-safe: ``export`` takes rows and returns
bytes, nothing else.  Formats that need round-tripping back into rows
(the NPZ bundle) also implement :meth:`Exporter.load`.
"""

from __future__ import annotations

import abc

from ..exceptions import ExportError

__all__ = ["Exporter", "get_exporter", "exporter_ids", "register_exporter"]


class Exporter(abc.ABC):
    """One result serialisation format behind the jobs/result surface.

    Subclasses declare their identity as class attributes and implement
    :meth:`export`; :meth:`load` is optional (formats that cannot be read
    back raise :class:`~repro.exceptions.ExportError`).
    """

    #: Registry key and the value of the ``?format=`` query parameter.
    format_id: str = ""
    #: ``Content-Type`` announced over HTTP.
    content_type: str = "application/octet-stream"
    #: Suffix for downloaded / ``repro export --output`` files.
    file_suffix: str = ".bin"

    @abc.abstractmethod
    def export(self, rows: list[dict]) -> bytes:
        """Serialise result rows; must not mutate ``rows``."""

    def load(self, data: bytes) -> list[dict]:
        """Parse previously exported bytes back into rows (optional)."""
        raise ExportError(
            f"format {self.format_id!r} does not support loading")


#: The process-wide exporter registry, keyed by ``format_id``.
_EXPORTERS: dict[str, Exporter] = {}


def register_exporter(exporter: Exporter) -> Exporter:
    """Register an exporter instance under its ``format_id``."""
    if not exporter.format_id:
        raise ExportError(
            f"{type(exporter).__name__} declares no format_id")
    _EXPORTERS[exporter.format_id] = exporter
    return exporter


def exporter_ids() -> tuple[str, ...]:
    """Registered format ids, sorted (stable for docs and error text)."""
    return tuple(sorted(_EXPORTERS))


def get_exporter(format_id: str) -> Exporter:
    """Resolve a format id to its exporter or raise :class:`ExportError`."""
    exporter = _EXPORTERS.get(format_id)
    if exporter is None:
        raise ExportError(
            f"unknown export format {format_id!r}; expected one of "
            f"{exporter_ids()!r}")
    return exporter
