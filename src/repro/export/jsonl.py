"""JSON-lines exporter: one result row per line, stream-appendable.

The format of choice for piping job results into ``jq``, log collectors
or another service's bulk-ingest endpoint: each line is an independent
JSON object, so consumers can process results without buffering the whole
payload.  Values that JSON cannot represent are stringified exactly like
the CLI's ``--format json`` renderer (``default=str``).
"""

from __future__ import annotations

import json

from .base import Exporter

__all__ = ["JSONLExporter"]


class JSONLExporter(Exporter):
    """Newline-delimited JSON objects, one per result row."""

    format_id = "jsonl"
    content_type = "application/x-ndjson"
    file_suffix = ".jsonl"

    def export(self, rows: list[dict]) -> bytes:
        lines = [json.dumps(row, sort_keys=True, default=str)
                 for row in rows]
        return ("\n".join(lines) + ("\n" if lines else "")).encode("utf-8")

    def load(self, data: bytes) -> list[dict]:
        return [json.loads(line)
                for line in data.decode("utf-8").splitlines() if line]
