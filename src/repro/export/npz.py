"""NPZ-bundle exporter: columnar numpy arrays, numerics kept as numbers.

The analytics-friendly format (the repo's stand-in for Parquet, without
leaving the numpy toolchain): each result column becomes one named array
in a compressed NPZ archive — numeric columns as ``float64``/``int64``,
everything else as unicode strings — plus a ``__schema__`` JSON entry
recording column order and dtypes.  ``numpy.load`` on the exported bytes
gives per-column arrays directly; :meth:`NPZBundleExporter.load` restores
the original row dictionaries, which the round-trip test asserts.
"""

from __future__ import annotations

import io
import json

import numpy as np

from .base import Exporter

__all__ = ["NPZBundleExporter"]

#: NPZ entry holding the column schema (name/kind per column, row count).
_SCHEMA_KEY = "__schema__"


def _column_array(values: list) -> tuple[np.ndarray, str]:
    """Pack one column as the narrowest lossless array: int, float or str."""
    if all(isinstance(v, bool) or not isinstance(v, (int, float))
           for v in values):
        return np.asarray([str(v) for v in values]), "str"
    if all(isinstance(v, int) and not isinstance(v, bool) for v in values):
        return np.asarray(values, dtype=np.int64), "int"
    if all(isinstance(v, (int, float)) and not isinstance(v, bool)
           for v in values):
        return np.asarray(values, dtype=np.float64), "float"
    return np.asarray([str(v) for v in values]), "str"


class NPZBundleExporter(Exporter):
    """Compressed NPZ archive with one array per result column."""

    format_id = "npz"
    content_type = "application/x-npz"
    file_suffix = ".npz"

    def export(self, rows: list[dict]) -> bytes:
        columns = list(dict.fromkeys(key for row in rows for key in row))
        arrays: dict[str, np.ndarray] = {}
        schema = {"n_rows": len(rows), "columns": []}
        for name in columns:
            array, kind = _column_array([row.get(name) for row in rows])
            # Column names are free-form; "col_<i>" entry names keep the
            # archive valid whatever characters the header used.
            arrays[f"col_{len(schema['columns'])}"] = array
            schema["columns"].append({"name": name, "kind": kind})
        arrays[_SCHEMA_KEY] = np.asarray(json.dumps(schema))
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **arrays)
        return buffer.getvalue()

    def load(self, data: bytes) -> list[dict]:
        with np.load(io.BytesIO(data), allow_pickle=False) as payload:
            schema = json.loads(str(payload[_SCHEMA_KEY]))
            rows = [dict() for _ in range(schema["n_rows"])]
            for index, column in enumerate(schema["columns"]):
                values = payload[f"col_{index}"]
                for row, value in zip(rows, values):
                    if column["kind"] == "int":
                        row[column["name"]] = int(value)
                    elif column["kind"] == "float":
                        row[column["name"]] = float(value)
                    else:
                        row[column["name"]] = str(value)
        return rows
