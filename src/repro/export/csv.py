"""CSV exporter: byte-identical to ``repro run --format csv``.

Delegates to :func:`repro.experiments.reporting.rows_to_csv`, the exact
renderer behind the CLI's ``--format csv`` flag — a job's exported CSV and
the same experiment run foreground therefore compare equal, which the job
lifecycle tests assert.
"""

from __future__ import annotations

import csv as _csv
import io

from ..experiments.reporting import rows_to_csv
from .base import Exporter

__all__ = ["CSVExporter"]


class CSVExporter(Exporter):
    """Comma-separated rows with a header (the union of row keys)."""

    format_id = "csv"
    content_type = "text/csv; charset=utf-8"
    file_suffix = ".csv"

    def export(self, rows: list[dict]) -> bytes:
        return rows_to_csv(rows).encode("utf-8")

    def load(self, data: bytes) -> list[dict]:
        """Rows back as string-valued dicts (CSV is untyped)."""
        reader = _csv.DictReader(io.StringIO(data.decode("utf-8")))
        return [dict(row) for row in reader]
