"""Pluggable result exporters: one protocol, one registry, N formats.

The offline half of the serving story: an experiment executed through the
async jobs API (:mod:`repro.serve.jobs`) or the CLI produces a list of
flat result rows, and this package serialises those rows into whatever a
consumer wants to ingest:

* ``csv`` — byte-identical to ``repro run --format csv`` (spreadsheets,
  diffing against foreground runs);
* ``jsonl`` — newline-delimited JSON objects (``jq``, log pipelines,
  bulk-ingest endpoints);
* ``npz`` — a columnar numpy bundle with numerics kept as numbers (the
  analytics format; round-trips back to rows via ``load``).

All formats implement the :class:`~repro.export.base.Exporter` protocol
and register themselves here; resolve one with :func:`get_exporter` or
serialise directly with :func:`export_rows`.  HTTP format negotiation
(``GET /v1/jobs/{id}/result?format=...``) and ``repro export`` both
dispatch through this registry, so a new format is one subclass away from
being reachable everywhere.
"""

from __future__ import annotations

from .base import Exporter, exporter_ids, get_exporter, register_exporter
from .csv import CSVExporter
from .jsonl import JSONLExporter
from .npz import NPZBundleExporter

__all__ = [
    "Exporter",
    "CSVExporter",
    "JSONLExporter",
    "NPZBundleExporter",
    "export_rows",
    "exporter_ids",
    "get_exporter",
    "register_exporter",
]

register_exporter(CSVExporter())
register_exporter(JSONLExporter())
register_exporter(NPZBundleExporter())


def export_rows(rows: list[dict], format_id: str) -> bytes:
    """Serialise result rows in the named format (see :func:`exporter_ids`)."""
    return get_exporter(format_id).export(rows)
