"""Text normalisation and tokenisation used by the embedding models.

The paper's preprocessing phase (Figure 2) removes "high-level syntactic
errors" before embedding.  The helpers here implement the normalisation used
throughout: lower-casing, punctuation stripping, camel-case and snake-case
splitting (column headers such as ``optical_zoom`` or ``opticalZoom`` should
tokenize identically), and character n-gram extraction for FastText-style
subword embeddings.
"""

from __future__ import annotations

import math
import re
from functools import lru_cache

_CAMEL_RE = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")
_NON_ALNUM_RE = re.compile(r"[^0-9a-zA-Z]+")
_MULTI_SPACE_RE = re.compile(r"\s+")


def normalize_text(text: object) -> str:
    """Normalise arbitrary cell/header content into a clean lowercase string.

    ``None`` and NaN-like values normalise to the empty string; everything
    else is stringified, camel-case split, punctuation collapsed to spaces
    and lower-cased.
    """
    if text is None:
        return ""
    if isinstance(text, float) and text != text:  # NaN
        return ""
    raw = str(text).strip()
    if not raw or raw.lower() in {"nan", "none", "null", "n/a"}:
        return ""
    raw = _CAMEL_RE.sub(" ", raw)
    raw = _NON_ALNUM_RE.sub(" ", raw)
    raw = _MULTI_SPACE_RE.sub(" ", raw)
    return raw.strip().lower()


def tokenize(text: object) -> list[str]:
    """Split normalised text into word tokens."""
    normalised = normalize_text(text)
    if not normalised:
        return []
    return normalised.split(" ")


@lru_cache(maxsize=65536)
def char_ngrams(token: str, n_min: int = 3, n_max: int = 5) -> tuple[str, ...]:
    """Return the character n-grams of ``token`` with boundary markers.

    Mirrors FastText's subword scheme: the token is wrapped in ``<`` and
    ``>`` markers and all n-grams with ``n_min <= n <= n_max`` are produced,
    plus the full wrapped token itself.
    """
    if not token:
        return ()
    wrapped = f"<{token}>"
    grams: list[str] = []
    for n in range(n_min, n_max + 1):
        if len(wrapped) < n:
            continue
        grams.extend(wrapped[i:i + n] for i in range(len(wrapped) - n + 1))
    grams.append(wrapped)
    return tuple(grams)


def is_numeric_token(token: str) -> bool:
    """Return True when ``token`` parses as a *finite* number.

    ``float`` also accepts the words ``inf``/``infinity``/``nan`` (which
    real text produces, e.g. a typo turning ``info`` into ``inf``); those
    carry no magnitude, so they are treated as ordinary words.
    """
    if not token:
        return False
    try:
        value = float(token)
    except ValueError:
        return False
    return math.isfinite(value)
