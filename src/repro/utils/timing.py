"""Wall-clock timing helper used by the scalability experiments (Figure 4)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Context-manager stopwatch accumulating elapsed wall-clock seconds.

    Example
    -------
    >>> timer = Timer()
    >>> with timer:
    ...     _ = sum(range(1000))
    >>> timer.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: float | None = field(default=None, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._start is not None:
            self.elapsed += time.perf_counter() - self._start
            self._start = None

    def reset(self) -> None:
        """Zero the accumulated time."""
        self.elapsed = 0.0
        self._start = None
