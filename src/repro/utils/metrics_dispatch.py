"""Shared pairwise-distance kernel and metric validation.

KNN graph construction, DBSCAN, the silhouette metric and the vector-index
subsystem all dispatch on the same two metrics (``cosine`` and
``euclidean``) and all expand squared Euclidean distances through the same
``||x||^2 + ||y||^2 - 2 x.y`` identity.  Before this module each of them
validated and computed independently; the helpers here are the single
implementation they share, so the numerics (operation order, zero-clamping
before any square root) are bit-identical across every call site.

The kernels are dtype-preserving: float64 input (the training paths)
computes and returns float64, float32 input (the vector-index hot path)
stays float32 end to end — no silent promotion doubling memory bandwidth,
no silent narrowing losing precision.  Every scalar constant below is a
python float so NEP-50 weak promotion keeps the array dtype authoritative.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "SUPPORTED_METRICS",
    "validate_metric",
    "unit_rows",
    "squared_euclidean_distances",
    "pairwise_distances",
]

#: The metrics every distance-dispatching component supports.
SUPPORTED_METRICS = ("cosine", "euclidean")


def validate_metric(metric: str) -> str:
    """Return ``metric`` if supported, raise ``ValueError`` otherwise.

    Validation happens *before* any early return on degenerate inputs so a
    typo fails loudly regardless of data size.
    """
    if metric not in SUPPORTED_METRICS:
        raise ValueError(f"unsupported metric {metric!r}")
    return metric


def unit_rows(X: np.ndarray) -> np.ndarray:
    """Rows of ``X`` scaled to unit L2 norm (zero rows stay zero)."""
    norms = np.linalg.norm(X, axis=1, keepdims=True)
    norms = np.where(norms == 0, 1.0, norms)
    return X / norms


def squared_euclidean_distances(X: np.ndarray,
                                Y: np.ndarray | None = None) -> np.ndarray:
    """Squared Euclidean distances between rows of ``X`` and ``Y``.

    ``Y=None`` computes the self-distance matrix of ``X``.  The classic
    ``||x||^2 + ||y||^2 - 2 x.y`` expansion, clamped at zero so
    floating-point cancellation never produces negative squared distances
    (and never NaNs downstream of a square root).
    """
    x_sq = np.sum(X ** 2, axis=1)
    if Y is None:
        Y = X
        y_sq = x_sq
    else:
        y_sq = np.sum(Y ** 2, axis=1)
    d2 = x_sq[:, None] + y_sq[None, :] - 2.0 * (X @ Y.T)
    np.maximum(d2, 0.0, out=d2)
    return d2


def pairwise_distances(X: np.ndarray, Y: np.ndarray | None = None, *,
                       metric: str = "euclidean") -> np.ndarray:
    """Dense ``(len(X), len(Y))`` distance matrix under ``metric``.

    ``euclidean`` returns true Euclidean distances; ``cosine`` returns the
    cosine *distance* ``1 - cos(x, y)`` (zero rows behave as orthogonal to
    everything).  Both are proper dissimilarities: zero for identical rows,
    larger is farther.
    """
    validate_metric(metric)
    if metric == "euclidean":
        return np.sqrt(squared_euclidean_distances(X, Y))
    ux = unit_rows(X)
    uy = ux if Y is None else unit_rows(Y)
    distances = 1.0 - ux @ uy.T
    # Rounding can push identical rows to ~-1e-16; clamp like the euclidean
    # branch so exact matches report a distance of exactly zero.
    np.maximum(distances, 0.0, out=distances)
    return distances
