"""Shared utilities: validation, text normalisation, timing and IO."""

from .validation import (
    check_matrix,
    check_labels,
    check_same_length,
    check_square,
)
from .metrics_dispatch import (
    SUPPORTED_METRICS,
    pairwise_distances,
    squared_euclidean_distances,
    unit_rows,
    validate_metric,
)
from .text import normalize_text, tokenize, char_ngrams
from .timing import Timer
from .io import read_csv_table, write_csv_table

__all__ = [
    "check_matrix",
    "check_labels",
    "check_same_length",
    "check_square",
    "SUPPORTED_METRICS",
    "validate_metric",
    "unit_rows",
    "squared_euclidean_distances",
    "pairwise_distances",
    "normalize_text",
    "tokenize",
    "char_ngrams",
    "Timer",
    "read_csv_table",
    "write_csv_table",
]
