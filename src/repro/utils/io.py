"""CSV round-tripping for the tabular data model.

The benchmark generators produce in-memory :class:`repro.data.table.Table`
objects; these helpers let examples and downstream users persist and reload
them without requiring pandas.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import TYPE_CHECKING

from ..exceptions import DatasetError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..data.table import Table


def write_csv_table(table: "Table", path: str | Path) -> Path:
    """Write ``table`` to ``path`` as a CSV file with a header row."""
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    with destination.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.column_names)
        for row in table.rows():
            writer.writerow(["" if value is None else value for value in row])
    return destination


def read_csv_table(path: str | Path, *, name: str | None = None) -> "Table":
    """Read a CSV file written by :func:`write_csv_table` back into a Table."""
    from ..data.table import Table

    source = Path(path)
    if not source.exists():
        raise DatasetError(f"CSV file not found: {source}")
    with source.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration as exc:
            raise DatasetError(f"CSV file is empty: {source}") from exc
        data_rows = [row for row in reader]
    columns: dict[str, list[object]] = {column: [] for column in header}
    for row in data_rows:
        for column, value in zip(header, row):
            columns[column].append(value if value != "" else None)
    return Table(name=name or source.stem, columns=columns)
