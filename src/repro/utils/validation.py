"""Input validation helpers shared across clustering and embedding modules."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import DataValidationError


def check_matrix(X, *, name: str = "X", allow_empty: bool = False,
                 dtype=np.float64) -> np.ndarray:
    """Validate a 2-D feature matrix and return it as ``dtype``.

    ``dtype`` defaults to ``float64`` (the training/metrics precision);
    the vector-index hot path passes ``float32``, which halves memory
    bandwidth without changing neighbour orderings.  Raises
    :class:`DataValidationError` when the input is not convertible to
    a 2-D numeric array, contains NaNs/Infs, or is empty (unless
    ``allow_empty`` is set).
    """
    try:
        arr = np.asarray(X, dtype=dtype)
    except (TypeError, ValueError) as exc:
        raise DataValidationError(f"{name} must be numeric") from exc
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise DataValidationError(f"{name} must be 2-dimensional, got {arr.ndim}")
    if not allow_empty and (arr.shape[0] == 0 or arr.shape[1] == 0):
        raise DataValidationError(f"{name} must not be empty, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise DataValidationError(f"{name} contains NaN or infinite values")
    return arr


def check_labels(labels, *, name: str = "labels") -> np.ndarray:
    """Validate a 1-D integer label vector."""
    arr = np.asarray(labels)
    if arr.ndim != 1:
        raise DataValidationError(f"{name} must be 1-dimensional")
    if arr.shape[0] == 0:
        raise DataValidationError(f"{name} must not be empty")
    if arr.dtype.kind not in "iu":
        if arr.dtype.kind == "f" and np.allclose(arr, np.round(arr)):
            arr = arr.astype(np.int64)
        else:
            try:
                arr = arr.astype(np.int64)
            except (TypeError, ValueError) as exc:
                raise DataValidationError(f"{name} must be integer-valued") from exc
    return arr.astype(np.int64)


def check_same_length(a, b, *, names: tuple[str, str] = ("a", "b")) -> None:
    """Raise when two sequences differ in length."""
    if len(a) != len(b):
        raise DataValidationError(
            f"{names[0]} and {names[1]} must have the same length "
            f"({len(a)} != {len(b)})")


def check_square(X, *, name: str = "X") -> np.ndarray:
    """Validate a square 2-D matrix."""
    arr = check_matrix(X, name=name)
    if arr.shape[0] != arr.shape[1]:
        raise DataValidationError(
            f"{name} must be square, got shape {arr.shape}")
    return arr


def as_float_array(values: Sequence[float]) -> np.ndarray:
    """Convert a sequence to a contiguous 1-D float array."""
    return np.ascontiguousarray(np.asarray(values, dtype=np.float64).ravel())
