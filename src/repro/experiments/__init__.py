"""Experiment registry and harness reproducing every table and figure.

Every evaluation artefact of the paper has an entry in
:data:`repro.experiments.registry.EXPERIMENTS`; the runner executes an entry
at a chosen scale and the reporting helpers render the same row/series
layout the paper uses.  The benchmark modules under ``benchmarks/`` are thin
wrappers around these functions.
"""

from .registry import EXPERIMENTS, ExperimentSpec, get_experiment
from .runner import run_experiment, build_dataset
from .reporting import format_results_table, results_to_rows, pivot_results
from .scalability import ScalabilityPoint, run_scalability_study
from .projections import project_2d, separability_report, ProjectionReport
from .heatmaps import similarity_heatmap, HeatmapReport

__all__ = [
    "EXPERIMENTS",
    "ExperimentSpec",
    "get_experiment",
    "run_experiment",
    "build_dataset",
    "format_results_table",
    "results_to_rows",
    "pivot_results",
    "ScalabilityPoint",
    "run_scalability_study",
    "project_2d",
    "separability_report",
    "ProjectionReport",
    "similarity_heatmap",
    "HeatmapReport",
]
