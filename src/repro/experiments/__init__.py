"""Experiment registry and harness reproducing every table and figure.

Every evaluation artefact of the paper has an entry in
:data:`repro.experiments.registry.EXPERIMENTS`.  Running one is a
plan/execute split: :func:`plan_experiment` expands a spec into independent
:class:`Cell` jobs and :class:`ParallelRunner` executes them (serially or on
a thread/process pool) with deterministic results; :func:`run_experiment`
wires the two together at a chosen scale, and the reporting helpers render
the same row/series layout the paper uses (text, JSON or CSV).  The
``python -m repro`` CLI and the benchmark modules under ``benchmarks/`` are
thin wrappers around these functions, and ``EXPERIMENTS.md`` is generated
from the registry by :mod:`repro.experiments.docs`.
"""

from .registry import EXPERIMENTS, ExperimentSpec, get_experiment
from .plan import Cell, ExperimentPlan, plan_experiment
from .parallel import ParallelRunner
from .runner import run_experiment, run_plan, build_dataset
from .reporting import (
    NON_MATRIX_RESULTS,
    RESULT_FORMATS,
    experiment_result_rows,
    format_results_table,
    render_rows,
    results_to_rows,
    pivot_results,
    rows_to_csv,
    rows_to_json,
)
from .docs import render_experiments_md, write_experiments_md
from .api_docs import render_api_md, write_api_md
from .scalability import ScalabilityPoint, run_scalability_study
from .streaming import StreamStepResult, run_stream_scenario
from .projections import project_2d, separability_report, ProjectionReport
from .heatmaps import similarity_heatmap, HeatmapReport

__all__ = [
    "EXPERIMENTS",
    "ExperimentSpec",
    "get_experiment",
    "Cell",
    "ExperimentPlan",
    "plan_experiment",
    "ParallelRunner",
    "run_experiment",
    "run_plan",
    "build_dataset",
    "NON_MATRIX_RESULTS",
    "RESULT_FORMATS",
    "experiment_result_rows",
    "format_results_table",
    "render_rows",
    "results_to_rows",
    "pivot_results",
    "rows_to_csv",
    "rows_to_json",
    "render_experiments_md",
    "write_experiments_md",
    "render_api_md",
    "write_api_md",
    "ScalabilityPoint",
    "run_scalability_study",
    "StreamStepResult",
    "run_stream_scenario",
    "project_2d",
    "separability_report",
    "ProjectionReport",
    "similarity_heatmap",
    "HeatmapReport",
]
