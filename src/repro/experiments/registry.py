"""Registry of the paper's evaluation artefacts (tables and figures).

Each :class:`ExperimentSpec` names the datasets, embedding methods and
clustering algorithms of one table (or the data required by one figure), so
the benchmark harness, the examples, the ``python -m repro`` CLI and the
generated ``EXPERIMENTS.md`` (rendered from this registry by
:mod:`repro.experiments.docs` via ``python -m repro docs``) all share a
single source of truth about what "reproducing Table N" means.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import ExperimentError

__all__ = ["ExperimentSpec", "EXPERIMENTS", "get_experiment"]

#: Clustering algorithms reported in every results table, in paper order.
_TABLE_ALGORITHMS = ("sdcn", "shgp", "edesc", "kmeans", "dbscan", "birch")
#: For entity resolution the SDCN column of Table 4 is the AE variant
#: (Section 6.1 finding i: SDCN never improved on the pre-trained AE).
_ER_ALGORITHMS = ("ae", "edesc", "shgp", "kmeans", "dbscan", "birch")


@dataclass(frozen=True)
class ExperimentSpec:
    """Description of one paper artefact and how to regenerate it."""

    experiment_id: str
    kind: str                      # "table" or "figure"
    title: str
    task: str                      # schema_inference / entity_resolution / ...
    datasets: tuple[str, ...] = ()
    embeddings: tuple[str, ...] = ()
    algorithms: tuple[str, ...] = ()
    notes: str = ""
    extra: dict = field(default_factory=dict)


EXPERIMENTS: dict[str, ExperimentSpec] = {
    "table1": ExperimentSpec(
        experiment_id="table1", kind="table",
        title="Dataset properties for schema inference, entity resolution "
              "and domain discovery",
        task="profiling",
        datasets=("webtables", "tus", "musicbrainz", "geographic",
                  "camera", "monitor"),
    ),
    "table2": ExperimentSpec(
        experiment_id="table2", kind="table",
        title="Schema inference: schema-level clustering results",
        task="schema_inference",
        datasets=("webtables", "tus"),
        embeddings=("sbert", "fasttext"),
        algorithms=_TABLE_ALGORITHMS,
    ),
    "table3": ExperimentSpec(
        experiment_id="table3", kind="table",
        title="Schema inference: schema+instance-level clustering results",
        task="schema_inference",
        datasets=("webtables", "tus"),
        embeddings=("tabtransformer", "tabnet"),
        algorithms=_TABLE_ALGORITHMS,
    ),
    "table4": ExperimentSpec(
        experiment_id="table4", kind="table",
        title="Entity resolution: clustering results with EmbDi and SBERT",
        task="entity_resolution",
        datasets=("musicbrainz", "geographic"),
        embeddings=("embdi", "sbert"),
        algorithms=_ER_ALGORITHMS,
    ),
    "table5": ExperimentSpec(
        experiment_id="table5", kind="table",
        title="Domain discovery: schema-level clustering results",
        task="domain_discovery",
        datasets=("camera", "monitor"),
        embeddings=("sbert", "fasttext"),
        algorithms=_TABLE_ALGORITHMS,
    ),
    "table6": ExperimentSpec(
        experiment_id="table6", kind="table",
        title="Domain discovery: schema+instance-level clustering results",
        task="domain_discovery",
        datasets=("camera", "monitor"),
        embeddings=("sbert_instance", "embdi"),
        algorithms=_TABLE_ALGORITHMS,
    ),
    "figure3": ExperimentSpec(
        experiment_id="figure3", kind="figure",
        title="2-D projections of table embeddings (separability of SBERT vs "
              "FastText, TabNet vs TabTransformer)",
        task="schema_inference",
        datasets=("webtables",),
        embeddings=("sbert", "fasttext", "tabnet", "tabtransformer"),
    ),
    "figure4": ExperimentSpec(
        experiment_id="figure4", kind="figure",
        title="Runtimes for different numbers of instances and clusters",
        task="entity_resolution",
        datasets=("musicbrainz_scalability",),
        embeddings=("sbert",),
        algorithms=("sdcn", "shgp", "edesc", "kmeans", "dbscan", "birch"),
        extra={"instance_grid": (200, 400, 800), "cluster_grid": (50, 100, 200),
               "fixed_clusters": 100, "fixed_instances": 400},
    ),
    "figure5": ExperimentSpec(
        experiment_id="figure5", kind="figure",
        title="Cosine-similarity heat maps of Camera columns (SBERT "
              "schema-level vs EmbDi schema+instance-level)",
        task="domain_discovery",
        datasets=("camera",),
        embeddings=("sbert", "embdi"),
    ),
    "figure4_scalability": ExperimentSpec(
        experiment_id="figure4_scalability", kind="analysis",
        title="Runtime/memory scalability sweep (Figure 4 data, "
              "CLI-runnable; dense vs sparse graph path)",
        task="entity_resolution",
        datasets=("musicbrainz_scalability",),
        embeddings=("sbert",),
        algorithms=("sdcn", "kmeans", "birch", "dbscan"),
        notes="Runs the Figure 4 instance/cluster sweeps through "
              "`repro run`; `--graph sparse` switches the graph-based "
              "models to the CSR/blocked-KNN path and extends the instance "
              "grid 4x beyond the largest dense point; `--batch-size` "
              "enables mini-batch fine-tuning.",
        extra={
            "benchmark": {
                "instance_grid": (200, 400, 800),
                "sparse_extension": (1600, 3200),
                "cluster_grid": (50, 100, 200),
                "fixed_clusters": 100,
            },
            "test": {
                "instance_grid": (60, 120),
                "sparse_extension": (240, 480),
                "cluster_grid": (15, 30),
                "fixed_clusters": 20,
            },
        },
    ),
    "stream_ingestion": ExperimentSpec(
        experiment_id="stream_ingestion", kind="analysis",
        title="Streaming ingestion with incremental model updates "
              "(continuous learning over arrival batches)",
        task="streaming",
        datasets=("webtables", "musicbrainz", "camera"),
        embeddings=("sbert",),
        algorithms=("kmeans", "birch", "dbscan", "ae"),
        notes="Replays each dataset as arrival batches (optionally with "
              "injected drift), fits on the initial portion, and applies "
              "the drift monitor's update-vs-refit decision per batch via "
              "`repro.stream`; `repro stream <task>` exposes every knob "
              "(batches, drift kind/rate, checkpoint rotation for hot "
              "reload), `repro run stream_ingestion` runs this default "
              "matrix.",
        extra={"n_batches": 4, "initial_fraction": 0.5,
               "drift_kinds": ("none", "abbreviate", "typo", "case", "drop")},
    ),
    "ks_density": ExperimentSpec(
        experiment_id="ks_density", kind="analysis",
        title="Kolmogorov-Smirnov density analysis of SBERT features "
              "(explains DBSCAN collapse, Section 8.1 finding 5)",
        task="schema_inference",
        datasets=("webtables",),
        embeddings=("sbert",),
    ),
}


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up an experiment by id (``table2`` ... ``figure5``)."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {sorted(EXPERIMENTS)}") from None
