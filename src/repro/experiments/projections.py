"""2-D embedding projections and separability statistics (Figure 3).

The paper shows UMAP projections of the web-tables embeddings, arguing that
SBERT's space separates the ground-truth classes better than FastText's, and
that the tabular encoders produce no clear cluster structure.  Offline we
use a PCA projection (deterministic, dependency-free) and, because the
figure's purpose is the *comparison*, also report quantitative separability:
the silhouette of the ground-truth labels in the projected space and the
ratio of between-class to within-class distances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..metrics.silhouette import silhouette_score
from ..utils.validation import check_labels, check_matrix, check_same_length

__all__ = ["project_2d", "separability_report", "ProjectionReport"]


def project_2d(X, *, center: bool = True) -> np.ndarray:
    """Project an embedding matrix to 2-D with PCA (top two components)."""
    X = check_matrix(X)
    data = X - X.mean(axis=0) if center else X
    # SVD of the (n, d) matrix; the first two right singular vectors span
    # the projection plane.
    _, _, vt = np.linalg.svd(data, full_matrices=False)
    components = vt[:2] if vt.shape[0] >= 2 else np.vstack(
        [vt, np.zeros((2 - vt.shape[0], vt.shape[1]))])
    return data @ components.T


@dataclass(frozen=True)
class ProjectionReport:
    """Separability summary of one embedding's 2-D projection."""

    embedding: str
    silhouette_2d: float
    between_within_ratio: float
    n_points: int

    def as_row(self) -> dict[str, object]:
        return {
            "embedding": self.embedding,
            "silhouette_2d": round(self.silhouette_2d, 3),
            "between_within_ratio": round(self.between_within_ratio, 3),
            "n_points": self.n_points,
        }


def separability_report(X, labels, *, embedding: str = "") -> ProjectionReport:
    """Quantify how well the ground-truth classes separate in 2-D."""
    X = check_matrix(X)
    labels = check_labels(labels)
    check_same_length(X, labels, names=("X", "labels"))
    projected = project_2d(X)

    silhouette = silhouette_score(projected, labels)

    # Between-class vs within-class mean distances in the projection.
    uniques = np.unique(labels)
    centroids = np.vstack([projected[labels == label].mean(axis=0)
                           for label in uniques])
    within_values = []
    for index, label in enumerate(uniques):
        members = projected[labels == label]
        if len(members) > 1:
            within_values.append(
                np.linalg.norm(members - centroids[index], axis=1).mean())
    within = float(np.mean(within_values)) if within_values else 0.0
    if len(uniques) > 1:
        diffs = centroids[:, None, :] - centroids[None, :, :]
        distances = np.linalg.norm(diffs, axis=2)
        between = float(distances[np.triu_indices(len(uniques), k=1)].mean())
    else:
        between = 0.0
    ratio = between / within if within > 0 else 0.0

    return ProjectionReport(embedding=embedding, silhouette_2d=silhouette,
                            between_within_ratio=ratio, n_points=X.shape[0])
