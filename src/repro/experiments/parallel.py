"""Execute phase of the experiment harness: run cells on a worker pool.

:class:`ParallelRunner` consumes the :class:`~repro.experiments.plan.Cell`
jobs produced by :func:`~repro.experiments.plan.plan_experiment` and runs
them on a ``concurrent.futures`` pool.  Because every cell is independent
and carries its own seed, results are *deterministic*: the runner returns
``TaskResult`` rows in plan order, and the ARI/ACC/K values are identical to
a serial run regardless of the worker count or scheduling.

Two executors are supported:

* ``"thread"`` (default) — shares the process-wide embedding cache, so each
  (dataset, embedding) matrix is computed exactly once no matter how many
  algorithm cells consume it.  The numeric kernels are numpy-bound and
  release the GIL for large operations.
* ``"process"`` — full CPython parallelism.  Each worker process owns a
  private in-memory cache; configure a shared ``cache_dir``
  (:func:`repro.cache.configure_cache`) to deduplicate embedding work
  across processes via the NPZ disk layer.
"""

from __future__ import annotations

import concurrent.futures
import os
from pathlib import Path

from ..cache import configure_cache, get_cache
from ..exceptions import ExperimentError
from ..tasks.base import TaskResult
from .plan import Cell

__all__ = ["ParallelRunner", "execute_cell"]

_EXECUTORS = ("thread", "process")


def execute_cell(task, cell: Cell) -> TaskResult:
    """Run one cell on an already-constructed task pipeline.

    Module-level (rather than a bound method) so the process executor can
    pickle it.
    """
    return task.run(embedding=cell.embedding, algorithm=cell.algorithm,
                    seed=cell.seed)


#: Per-worker-process task table, installed once by the pool initializer so
#: each dataset is pickled to a worker once instead of once per cell.
_WORKER_TASKS: dict[str, object] = {}


def _init_process_worker(tasks: dict[str, object], max_entries: int,
                         cache_dir: Path | None) -> None:
    global _WORKER_TASKS
    _WORKER_TASKS = tasks
    # Re-establish the parent's cache configuration: with the
    # spawn/forkserver start methods the worker re-imports repro and would
    # otherwise fall back to a memory-only default cache, silently losing
    # the cross-process NPZ dedup (and any max_entries sizing).  Under fork
    # the inherited cache already matches, and is kept warm.
    cache = get_cache()
    if cache.max_entries != max_entries or cache.cache_dir != cache_dir:
        configure_cache(max_entries=max_entries, cache_dir=cache_dir)


def _execute_cell_in_worker(cell: Cell) -> TaskResult:
    return execute_cell(_WORKER_TASKS[cell.dataset], cell)


class ParallelRunner:
    """Run independent experiment cells on a thread or process pool."""

    def __init__(self, *, workers: int | None = 1,
                 executor: str = "thread") -> None:
        if executor not in _EXECUTORS:
            raise ExperimentError(
                f"unknown executor {executor!r}; expected one of {_EXECUTORS}")
        if workers is not None and workers < 1:
            raise ExperimentError("workers must be >= 1 (or None for one "
                                  "worker per core)")
        self.workers = workers
        self.executor = executor

    def resolved_workers(self, n_cells: int) -> int:
        """The pool size actually used for ``n_cells`` jobs."""
        workers = self.workers or os.cpu_count() or 1
        return max(1, min(workers, n_cells)) if n_cells else 1

    def execute(self, bound_cells) -> list[TaskResult]:
        """Run ``(task, cell)`` pairs and return results in cell order.

        ``bound_cells`` is an iterable of ``(task, cell)`` tuples, where the
        task is one of the pipelines from :mod:`repro.tasks` built over the
        cell's dataset.  With ``workers == 1`` the pool is skipped entirely
        and the cells run inline (the historical serial path).
        """
        bound = list(bound_cells)
        workers = self.resolved_workers(len(bound))
        if workers == 1:
            return [execute_cell(task, cell) for task, cell in bound]

        if self.executor == "thread":
            with concurrent.futures.ThreadPoolExecutor(
                    max_workers=workers) as pool:
                futures = [pool.submit(execute_cell, task, cell)
                           for task, cell in bound]
                # Collect in submission (= plan) order; exceptions propagate
                # with the cell that caused them.
                return [future.result() for future in futures]

        tasks = {cell.dataset: task for task, cell in bound}
        cache = get_cache()
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_process_worker,
                initargs=(tasks, cache.max_entries, cache.cache_dir)) as pool:
            futures = [pool.submit(_execute_cell_in_worker, cell)
                       for _, cell in bound]
            return [future.result() for future in futures]
