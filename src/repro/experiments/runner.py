"""Experiment runner: build datasets at a chosen scale and execute a spec."""

from __future__ import annotations

import numpy as np

from ..config import BENCHMARK_SCALE, DeepClusteringConfig, ExperimentScale
from ..data import (
    generate_camera,
    generate_geographic_settlements,
    generate_monitor,
    generate_musicbrainz,
    generate_tus,
    generate_webtables,
    profile_datasets,
)
from ..exceptions import ExperimentError
from ..metrics import ks_density_analysis
from ..tasks import (
    DomainDiscoveryTask,
    EntityResolutionTask,
    SchemaInferenceTask,
    TaskResult,
    embed_tables,
)
from .registry import ExperimentSpec, get_experiment

__all__ = ["build_dataset", "run_experiment"]


def build_dataset(name: str, scale: ExperimentScale | None = None, *,
                  seed: int | None = None):
    """Instantiate one named benchmark dataset at the given scale."""
    scale = scale or BENCHMARK_SCALE
    seed = scale.seed if seed is None else seed
    if name == "webtables":
        return generate_webtables(scale.webtables_tables,
                                  scale.webtables_clusters, seed=seed)
    if name == "tus":
        return generate_tus(scale.tus_tables, scale.tus_clusters, seed=seed)
    if name == "musicbrainz":
        return generate_musicbrainz(scale.musicbrainz_records,
                                    scale.musicbrainz_clusters, seed=seed)
    if name == "geographic":
        return generate_geographic_settlements(
            scale.geographic_records, scale.geographic_clusters, seed=seed)
    if name == "camera":
        return generate_camera(scale.camera_columns, None, seed=seed)
    if name == "monitor":
        return generate_monitor(scale.monitor_columns, None, seed=seed)
    raise ExperimentError(f"unknown dataset name {name!r}")


def _task_for(spec: ExperimentSpec, dataset,
              config: DeepClusteringConfig | None):
    if spec.task == "schema_inference":
        return SchemaInferenceTask(dataset, config=config)
    if spec.task == "entity_resolution":
        return EntityResolutionTask(dataset, config=config)
    if spec.task == "domain_discovery":
        return DomainDiscoveryTask(dataset, config=config)
    raise ExperimentError(f"experiment task {spec.task!r} has no pipeline")


def run_experiment(experiment_id: str, *,
                   scale: ExperimentScale | None = None,
                   config: DeepClusteringConfig | None = None,
                   algorithms: tuple[str, ...] | None = None,
                   embeddings: tuple[str, ...] | None = None,
                   datasets: tuple[str, ...] | None = None,
                   seed: int | None = None):
    """Run one registered experiment and return its result rows.

    For the table experiments the return value is a list of
    :class:`repro.tasks.base.TaskResult`; for ``table1`` a list of
    :class:`repro.data.profiles.DatasetProfile`; for ``ks_density`` a
    :class:`repro.metrics.ks.KSDensityReport`.  Figure experiments have
    dedicated entry points (:mod:`repro.experiments.scalability`,
    :mod:`repro.experiments.projections`,
    :mod:`repro.experiments.heatmaps`) — calling them here raises, keeping
    this function's return type predictable.
    """
    spec = get_experiment(experiment_id)
    scale = scale or BENCHMARK_SCALE

    if spec.experiment_id == "table1":
        names = datasets or spec.datasets
        return profile_datasets([build_dataset(name, scale, seed=seed)
                                 for name in names])

    if spec.experiment_id == "ks_density":
        dataset = build_dataset("webtables", scale, seed=seed)
        X = embed_tables(dataset, "sbert")
        return ks_density_analysis(X, seed=seed)

    if spec.kind == "figure":
        raise ExperimentError(
            f"experiment {experiment_id!r} is a figure; use the dedicated "
            "scalability/projections/heatmaps entry points")

    results: list[TaskResult] = []
    for dataset_name in (datasets or spec.datasets):
        dataset = build_dataset(dataset_name, scale, seed=seed)
        task = _task_for(spec, dataset, config)
        results.extend(task.run_matrix(
            embeddings=tuple(embeddings or spec.embeddings),
            algorithms=tuple(algorithms or spec.algorithms),
            seed=seed))
    return results
