"""Experiment runner: plan a spec, build datasets, execute the cells.

``run_experiment`` is the single entry point behind the benchmarks, the
examples and the ``python -m repro`` CLI.  It delegates the expansion of a
spec into independent jobs to :func:`repro.experiments.plan.plan_experiment`
and the (optionally parallel) execution of those jobs to
:class:`repro.experiments.parallel.ParallelRunner`; dataset construction and
the special non-matrix experiments (``table1`` profiling, ``ks_density``)
live here.
"""

from __future__ import annotations

from ..config import (
    BENCHMARK_SCALE,
    TEST_SCALE,
    DeepClusteringConfig,
    ExperimentScale,
)
from ..data import (
    generate_camera,
    generate_geographic_settlements,
    generate_monitor,
    generate_musicbrainz,
    generate_tus,
    generate_webtables,
    profile_datasets,
)
from ..exceptions import ExperimentError
from ..metrics import ks_density_analysis
from ..tasks import (
    DomainDiscoveryTask,
    EntityResolutionTask,
    SchemaInferenceTask,
    TaskResult,
    embed_tables,
)
from .parallel import ParallelRunner
from .plan import ExperimentPlan, plan_experiment
from .registry import ExperimentSpec
from .scalability import run_scalability_study
from .streaming import run_stream_scenario

__all__ = ["build_dataset", "run_experiment", "run_plan"]

#: Which task pipeline each streamable dataset belongs to (the streaming
#: scenario spans all three tasks, one dataset per task by default).
_STREAM_DATASET_TASKS = {
    "webtables": "schema_inference",
    "tus": "schema_inference",
    "musicbrainz": "entity_resolution",
    "geographic": "entity_resolution",
    "camera": "domain_discovery",
    "monitor": "domain_discovery",
}


def build_dataset(name: str, scale: ExperimentScale | None = None, *,
                  seed: int | None = None):
    """Instantiate one named benchmark dataset at the given scale."""
    scale = scale or BENCHMARK_SCALE
    seed = scale.seed if seed is None else seed
    if name == "webtables":
        return generate_webtables(scale.webtables_tables,
                                  scale.webtables_clusters, seed=seed)
    if name == "tus":
        return generate_tus(scale.tus_tables, scale.tus_clusters, seed=seed)
    if name == "musicbrainz":
        return generate_musicbrainz(scale.musicbrainz_records,
                                    scale.musicbrainz_clusters, seed=seed)
    if name == "geographic":
        return generate_geographic_settlements(
            scale.geographic_records, scale.geographic_clusters, seed=seed)
    if name == "camera":
        return generate_camera(scale.camera_columns, None, seed=seed)
    if name == "monitor":
        return generate_monitor(scale.monitor_columns, None, seed=seed)
    raise ExperimentError(f"unknown dataset name {name!r}")


def _task_for(spec: ExperimentSpec, dataset,
              config: DeepClusteringConfig | None):
    if spec.task == "schema_inference":
        return SchemaInferenceTask(dataset, config=config)
    if spec.task == "entity_resolution":
        return EntityResolutionTask(dataset, config=config)
    if spec.task == "domain_discovery":
        return DomainDiscoveryTask(dataset, config=config)
    raise ExperimentError(f"experiment task {spec.task!r} has no pipeline")


def run_plan(plan: ExperimentPlan, *,
             config: DeepClusteringConfig | None = None,
             config_updates: dict | None = None,
             workers: int | None = 1,
             executor: str = "thread",
             save_dir=None) -> list[TaskResult]:
    """Execute a planned experiment matrix and return ordered results.

    Each dataset is built once and shared by all of its cells; the embedding
    cache (:mod:`repro.cache`) then deduplicates the embedding step across
    the algorithm cells, so the expensive work of a table is
    ``O(datasets x embeddings)`` regardless of the algorithm count.
    ``config_updates`` are field overrides layered on top of each task's
    *resolved* config, so partial overrides (``graph``, ``batch_size``)
    keep task-specific defaults intact.  ``save_dir`` persists every cell's
    fitted model as an NPZ checkpoint (see
    :attr:`repro.tasks.base.ClusteringTask.save_dir`).
    """
    tasks = {}
    for name in plan.datasets:
        task = _task_for(plan.spec,
                         build_dataset(name, plan.scale, seed=plan.seed),
                         config)
        task.config_updates = config_updates
        task.save_dir = save_dir
        tasks[name] = task
    runner = ParallelRunner(workers=workers, executor=executor)
    return runner.execute((tasks[cell.dataset], cell) for cell in plan.cells)


def run_experiment(experiment_id: str, *,
                   scale: ExperimentScale | None = None,
                   config: DeepClusteringConfig | None = None,
                   algorithms: tuple[str, ...] | None = None,
                   embeddings: tuple[str, ...] | None = None,
                   datasets: tuple[str, ...] | None = None,
                   graph: str | None = None,
                   graph_backend: str | None = None,
                   batch_size: int | None = None,
                   seed: int | None = None,
                   workers: int | None = 1,
                   executor: str = "thread",
                   save_dir=None):
    """Run one registered experiment and return its result rows.

    For the table experiments the return value is a list of
    :class:`repro.tasks.base.TaskResult`; for ``table1`` a list of
    :class:`repro.data.profiles.DatasetProfile`; for ``ks_density`` a
    :class:`repro.metrics.ks.KSDensityReport`.  Figure experiments have
    dedicated entry points (:mod:`repro.experiments.scalability`,
    :mod:`repro.experiments.projections`,
    :mod:`repro.experiments.heatmaps`) — calling them here raises, keeping
    this function's return type predictable.

    ``graph`` ("dense"/"sparse"), ``graph_backend`` ("exact" or a
    :mod:`repro.index` ANN backend for the sparse top-k search) and
    ``batch_size`` are partial config overrides: they are layered on top
    of each task's own resolved config (so e.g. entity resolution's longer
    pre-training default survives a ``graph`` switch), and flow to
    :func:`run_scalability_study` for ``figure4_scalability``.

    ``workers`` > 1 (or ``None`` for one worker per core) fans the
    independent cells out on a pool; see
    :class:`~repro.experiments.parallel.ParallelRunner` for the ``executor``
    choices and determinism guarantees.  Overrides that an experiment cannot
    honour raise :class:`~repro.exceptions.ExperimentError` at plan time.

    ``save_dir`` persists every cell's fitted model as an NPZ checkpoint
    (:mod:`repro.serialize`) named
    ``<task>__<dataset>__<embedding>__<algorithm>.npz`` — a directory
    ``repro serve`` can serve directly.  Only the table experiments fit
    persistable models; other experiments reject the option.
    """
    plan = plan_experiment(experiment_id, scale=scale, datasets=datasets,
                           embeddings=embeddings, algorithms=algorithms,
                           seed=seed)

    if save_dir is not None and plan.spec.experiment_id in (
            "table1", "ks_density", "figure4_scalability", "stream_ingestion"):
        raise ExperimentError(
            f"experiment {experiment_id!r} does not fit persistable models; "
            "'save_dir' only applies to the table experiments")

    if plan.spec.experiment_id == "table1":
        return profile_datasets([build_dataset(name, plan.scale, seed=seed)
                                 for name in plan.datasets])

    if plan.spec.experiment_id == "ks_density":
        dataset = build_dataset("webtables", plan.scale, seed=seed)
        X = embed_tables(dataset, "sbert", seed=seed)
        return ks_density_analysis(X, seed=seed)

    if plan.spec.experiment_id == "figure4_scalability":
        return _run_scalability_spec(plan, config, graph=graph,
                                     graph_backend=graph_backend,
                                     batch_size=batch_size)

    if plan.spec.experiment_id == "stream_ingestion":
        return _run_stream_spec(plan, config)

    updates = {}
    if graph is not None:
        updates["graph"] = graph
    if graph_backend is not None:
        updates["graph_backend"] = graph_backend
    if batch_size is not None:
        updates["batch_size"] = batch_size
    return run_plan(plan, config=config, config_updates=updates or None,
                    workers=workers, executor=executor, save_dir=save_dir)


def _run_stream_spec(plan: ExperimentPlan,
                     config: DeepClusteringConfig | None) -> list[dict]:
    """Run the default streaming matrix: one scenario per (dataset, algorithm).

    Each scenario replays the dataset without injected drift (the
    `repro stream` CLI exposes the drift knobs); the per-step rows are
    flattened with their dataset/algorithm identity so the CLI renders one
    table for the whole matrix.
    """
    rows: list[dict] = []
    n_batches = int(plan.spec.extra.get("n_batches", 4))
    fraction = float(plan.spec.extra.get("initial_fraction", 0.5))
    embedding = plan.embeddings[0]
    for dataset_name in plan.datasets:
        task = _STREAM_DATASET_TASKS[dataset_name]
        for algorithm in plan.algorithms:
            steps = run_stream_scenario(
                task, dataset=dataset_name, embedding=embedding,
                algorithm=algorithm, n_batches=n_batches,
                initial_fraction=fraction, scale=plan.scale,
                config=config, seed=plan.seed)
            rows.extend({"dataset": dataset_name, "algorithm": algorithm,
                         **step.as_row()} for step in steps)
    return rows


def _run_scalability_spec(plan: ExperimentPlan,
                          config: DeepClusteringConfig | None, *,
                          graph: str | None = None,
                          graph_backend: str | None = None,
                          batch_size: int | None = None):
    """Run the Figure 4 sweeps with grids matched to the chosen scale.

    With the sparse graph path active the instance grid is extended past
    the largest dense point (the CSR adjacency keeps memory at O(n * k),
    so those sizes are only reachable there).
    """
    small = plan.scale.musicbrainz_records <= TEST_SCALE.musicbrainz_records
    grids = plan.spec.extra["test" if small else "benchmark"]
    effective_graph = graph or (config.graph if config is not None else "dense")
    instance_grid = tuple(grids["instance_grid"])
    if effective_graph == "sparse":
        instance_grid += tuple(grids["sparse_extension"])
    return run_scalability_study(
        instance_grid=instance_grid,
        cluster_grid=tuple(grids["cluster_grid"]),
        fixed_clusters=grids["fixed_clusters"],
        algorithms=plan.algorithms,
        config=config, graph=graph, graph_backend=graph_backend,
        batch_size=batch_size, seed=plan.seed)
