"""Generate ``EXPERIMENTS.md`` from the experiment registry.

The registry (:data:`repro.experiments.registry.EXPERIMENTS`) is the single
source of truth about what "reproducing Table N" means; this module renders
it as the human-readable ``EXPERIMENTS.md`` at the repository root.  The
file is *generated* — edit the registry (or this renderer) and run
``python -m repro docs`` to refresh it; ``tests/test_cli.py`` asserts the
committed file is in sync.
"""

from __future__ import annotations

from pathlib import Path

from ..config import BENCHMARK_SCALE, TEST_SCALE
from .registry import EXPERIMENTS, ExperimentSpec

__all__ = ["render_experiments_md", "write_experiments_md"]

_HEADER = """\
# EXPERIMENTS

<!-- GENERATED FILE — do not edit by hand.
     This file is rendered from `repro.experiments.registry.EXPERIMENTS`
     by `python -m repro docs`; `tests/test_cli.py` checks it is in sync. -->

Every evaluation artefact of *Deep Clustering for Data Cleaning and
Integration* (Rauf, Freitas & Paton, EDBT 2024) is described by one
`ExperimentSpec` in `repro.experiments.registry`.  Tables, the KS
analysis and the `figure4_scalability` sweep run through one entry point:

```bash
python -m repro run <experiment_id> [--scale test] [--workers N] \\
    [--format table|json|csv]
```

Figures use the dedicated helpers named in their section below (the
`benchmarks/` harness wraps them; `pytest benchmarks/ --benchmark-only`
regenerates everything).  Embedding matrices are cached per
(dataset content, method, seed) by `repro.cache`, so re-running a table —
or running its cells in parallel — computes each embedding exactly once.
"""

_FIGURE_ENTRY_POINTS = {
    "figure3": "`repro.experiments.projections.separability_report` "
               "(bench: `benchmarks/bench_figure3_projections.py`)",
    "figure4": "`repro.experiments.scalability.run_scalability_study` "
               "(bench: `benchmarks/bench_figure4_scalability.py`)",
    "figure5": "`repro.experiments.heatmaps.similarity_heatmap` "
               "(bench: `benchmarks/bench_figure5_heatmaps.py`)",
}


def _spec_section(spec: ExperimentSpec) -> str:
    lines = [f"## `{spec.experiment_id}` — {spec.title}", ""]
    lines.append(f"- **Kind:** {spec.kind}")
    lines.append(f"- **Task:** {spec.task}")
    if spec.datasets:
        lines.append("- **Datasets:** "
                     + ", ".join(f"`{name}`" for name in spec.datasets))
    if spec.embeddings:
        lines.append("- **Embeddings:** "
                     + ", ".join(f"`{name}`" for name in spec.embeddings))
    if spec.algorithms:
        lines.append("- **Algorithms:** "
                     + ", ".join(f"`{name}`" for name in spec.algorithms))
    if spec.extra:
        rendered = ", ".join(f"{key}={value!r}"
                             for key, value in sorted(spec.extra.items()))
        lines.append(f"- **Parameters:** {rendered}")
    if spec.kind == "figure":
        entry = _FIGURE_ENTRY_POINTS.get(
            spec.experiment_id, "see `repro.experiments`")
        lines.append(f"- **Entry point:** {entry}")
    else:
        lines.append(f"- **Entry point:** `python -m repro run "
                     f"{spec.experiment_id}` / "
                     f"`repro.run_experiment({spec.experiment_id!r})`")
    if spec.notes:
        lines.append(f"- **Notes:** {spec.notes}")
    lines.append("")
    return "\n".join(lines)


def _scale_section() -> str:
    fields = [name for name in BENCHMARK_SCALE.__dataclass_fields__
              if name != "seed"]
    lines = [
        "## Scales",
        "",
        "The synthetic benchmark generators accept explicit sizes; two named",
        "scales are defined in `repro.config`.  `--scale test` is what the",
        "unit tests and CLI smoke runs use; `--scale benchmark` is the",
        "default recorded throughout this file.",
        "",
        "| Parameter | `test` | `benchmark` |",
        "| --- | --- | --- |",
    ]
    for name in fields:
        lines.append(f"| `{name}` | {getattr(TEST_SCALE, name)} "
                     f"| {getattr(BENCHMARK_SCALE, name)} |")
    lines.append(f"\nBoth scales default to seed {BENCHMARK_SCALE.seed}.")
    lines.append("")
    return "\n".join(lines)


def render_experiments_md() -> str:
    """Render the full EXPERIMENTS.md content (deterministic)."""
    sections = [_HEADER]
    for experiment_id in EXPERIMENTS:
        sections.append(_spec_section(EXPERIMENTS[experiment_id]))
    sections.append(_scale_section())
    return "\n".join(sections)


def write_experiments_md(path: str | Path) -> Path:
    """Write the rendered document to ``path`` and return it."""
    destination = Path(path)
    destination.write_text(render_experiments_md(), encoding="utf-8")
    return destination
