"""Generate ``API.md``, a public-API reference, from the package itself.

Complementing the experiment-registry-driven ``EXPERIMENTS.md``
(:mod:`repro.experiments.docs`), this module walks the installed ``repro``
package and renders one section per module: the module's one-line summary
plus every public name (from ``__all__`` where declared, otherwise the
module-level definitions) with its kind and first docstring line.  The
output is deterministic, so ``tests/test_cli.py`` can assert the committed
``API.md`` is in sync; regenerate with ``python -m repro docs --api``.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
from pathlib import Path

__all__ = ["iter_public_modules", "render_api_md", "write_api_md"]

_HEADER = """\
# API

<!-- GENERATED FILE — do not edit by hand.
     This file is rendered from the package's modules, __all__ lists and
     docstrings by `python -m repro docs --api`; `tests/test_cli.py`
     checks it is in sync. -->

Public API of the `repro` package, one section per module.  Every entry
shows the name's kind and the first line of its docstring; see the source
docstrings for shapes, dtypes and full parameter documentation.
"""


def iter_public_modules():
    """Yield ``(dotted_name, module)`` for ``repro`` and every submodule.

    Modules are ordered by dotted name so the rendered document is
    deterministic; ``__main__`` entry points are skipped.
    """
    package = importlib.import_module("repro")
    yield "repro", package
    infos = sorted(pkgutil.walk_packages(package.__path__, prefix="repro."),
                   key=lambda info: info.name)
    for info in infos:
        if info.name.rsplit(".", 1)[-1] == "__main__":
            continue
        yield info.name, importlib.import_module(info.name)


def _public_names(module) -> list[str]:
    """Public names of a module: ``__all__`` if declared, else definitions."""
    declared = getattr(module, "__all__", None)
    if declared is not None:
        return [name for name in declared if hasattr(module, name)]
    names = []
    for name, value in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(value, "__module__", None) == module.__name__:
            names.append(name)
    return names


def _first_doc_line(obj) -> str:
    """First non-empty docstring line of ``obj`` (or a placeholder)."""
    doc = inspect.getdoc(obj)
    if not doc:
        return "(undocumented)"
    for line in doc.splitlines():
        if line.strip():
            return line.strip()
    return "(undocumented)"


def _entry_line(name: str, obj) -> str:
    """One bullet for a public name: kind tag plus docstring summary."""
    if inspect.isclass(obj):
        return f"- **`{name}`** (class) — {_first_doc_line(obj)}"
    if callable(obj):
        return f"- **`{name}`** (function) — {_first_doc_line(obj)}"
    # Constants: a builtin value's docstring is its type's help text
    # ("dict() -> new empty dictionary"), which is noise — only repro-typed
    # instances (configs, scales) carry a meaningful class docstring.
    type_name = type(obj).__name__
    if type(obj).__module__.startswith("repro"):
        return f"- **`{name}`** (constant `{type_name}`) — {_first_doc_line(obj)}"
    return f"- **`{name}`** (constant `{type_name}`)"


def _module_section(name: str, module) -> str:
    """Render one module's section of the reference."""
    lines = [f"## `{name}`", "", _first_doc_line(module), ""]
    entries = _public_names(module)
    for entry in entries:
        obj = getattr(module, entry)
        if inspect.ismodule(obj):
            continue
        lines.append(_entry_line(entry, obj))
    if lines[-1] != "":
        lines.append("")
    return "\n".join(lines)


def render_api_md() -> str:
    """Render the full API.md content (deterministic).

    The "HTTP API" section comes straight from the serving route table
    (:func:`repro.serve.routes.render_http_api_md`), so this document,
    ``GET /v1/openapi.json`` and the dispatching servers can never
    disagree about the wire surface.
    """
    from ..serve.routes import render_http_api_md

    sections = [_HEADER, render_http_api_md()]
    for name, module in iter_public_modules():
        sections.append(_module_section(name, module))
    return "\n".join(sections)


def write_api_md(path: str | Path) -> Path:
    """Write the rendered reference to ``path`` and return it."""
    destination = Path(path)
    destination.write_text(render_api_md(), encoding="utf-8")
    return destination
