"""End-to-end continuous-learning scenario: ingest -> monitor -> update.

``run_stream_scenario`` is the executable behind the ``stream_ingestion``
registry entry and the ``repro stream`` CLI: it replays one dataset as
arrival batches (:class:`repro.stream.StreamSource`), fits an initial model
on the first portion, and then — batch by batch — embeds the arrivals,
lets the :class:`repro.stream.DriftMonitor` decide **update vs refit**,
applies the chosen action (:func:`repro.stream.incremental_update` or a
fresh fit on everything seen), scores the result against the batch's
ground truth, and optionally rotates a servable checkpoint generation per
step (:func:`repro.serialize.rotate_checkpoint`) for a hot-reloading
``repro serve`` to pick up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..clustering import relabel_noise_as_singletons
from ..config import BENCHMARK_SCALE, DeepClusteringConfig, ExperimentScale
from ..exceptions import StreamingError
from ..metrics import adjusted_rand_index, clustering_accuracy
from ..obs.logging import get_logger
from ..serialize import rotate_checkpoint
from ..stream import DriftMonitor, StreamSource, incremental_update
from ..wal import WriteAheadLog, stamp_wal_metadata, wal_namespace
from ..tasks import embed_columns, embed_records, embed_tables
from ..tasks.base import make_clusterer
from ..utils.timing import Timer

__all__ = ["StreamStepResult", "run_stream_scenario", "STREAMABLE_EMBEDDINGS"]

_LOG = get_logger("stream")

#: Embeddings whose vectors depend on the item alone — the only ones where
#: a batch embedded today lands in the space the model was fitted in
#: yesterday.  Corpus-dependent methods (EmbDi, TabNet/TabTransformer)
#: would re-derive a new space per batch and are rejected.
STREAMABLE_EMBEDDINGS = {
    "schema_inference": ("sbert", "fasttext"),
    "entity_resolution": ("sbert",),
    "domain_discovery": ("sbert", "fasttext", "sbert_instance"),
}

_EMBED_FNS = {
    "schema_inference": embed_tables,
    "entity_resolution": embed_records,
    "domain_discovery": embed_columns,
}


@dataclass
class StreamStepResult:
    """Outcome of one stream step (the initial fit or one arrival batch)."""

    step: int                       # -1 for the initial fit
    action: str                     # "fit", "update" or "refit"
    n_items: int
    n_seen: int
    seconds: float
    ari: float
    acc: float
    mean_shift: float = 0.0
    silhouette: float = 0.0
    drifted: bool = False
    reasons: tuple[str, ...] = ()
    details: dict = field(default_factory=dict, repr=False)

    def as_row(self) -> dict[str, object]:
        """Flat dict for table/JSON/CSV rendering."""
        return {
            "step": self.step,
            "action": self.action,
            "n_items": self.n_items,
            "n_seen": self.n_seen,
            "seconds": round(self.seconds, 4),
            "ARI": round(self.ari, 3),
            "ACC": round(self.acc, 3),
            "mean_shift": round(self.mean_shift, 3),
            "silhouette": round(self.silhouette, 3),
            "drifted": self.drifted,
            "reasons": ";".join(self.reasons),
        }


def _score(model, X: np.ndarray, labels_true: np.ndarray) -> tuple[float, float]:
    predicted = relabel_noise_as_singletons(model.predict(X))
    labels_true = np.asarray(labels_true, dtype=np.int64)
    return (adjusted_rand_index(labels_true, predicted),
            clustering_accuracy(labels_true, predicted))


def run_stream_scenario(task: str, *, dataset, embedding: str = "sbert",
                        algorithm: str = "kmeans",
                        n_batches: int = 4,
                        drift: str | None = None,
                        drift_rate: float = 0.5,
                        initial_fraction: float = 0.5,
                        scale: ExperimentScale | None = None,
                        config: DeepClusteringConfig | None = None,
                        seed: int | None = None,
                        save_path: str | Path | None = None,
                        keep_generations: int = 3,
                        monitor: DriftMonitor | None = None,
                        with_index: str | None = None,
                        wal_dir: str | Path | None = None,
                        stream_name: str = "stream",
                        ) -> list[StreamStepResult]:
    """Run the continuous-learning loop over one dataset; return step rows.

    ``dataset`` is either a built container from :mod:`repro.data` or a
    dataset *name* resolved through the experiment runner at ``scale``.
    ``save_path`` rotates a checkpoint generation after the initial fit and
    after every batch, with metadata a ``repro serve`` hot-reloader can
    consume.  ``with_index`` (a :mod:`repro.index` backend name) keeps a
    similarity-search index over everything streamed so far — built on the
    initial fit, extended with incremental ``add`` per batch — and rotates
    it as ``<save stem>.index.npz`` in lockstep with the model
    generations, so a serving process hot-reloads both together.

    ``wal_dir`` (requires ``save_path``) makes ingestion *durable*: every
    arrival batch's embeddings are journaled to the
    ``<checkpoint stem>/<stream_name>.wal`` namespace (fsync'd, CRC'd —
    see :mod:`repro.wal`) **before** any update or refit touches the
    model, and the rotated checkpoint stamps the applied watermark so a
    crash at any point is recovered by
    :func:`repro.wal.recover_checkpoint` with exactly-once semantics.
    Refit decisions journal the full seen history alongside the batch so
    recovery reproduces the exact fresh fit; with ``with_index`` the
    rotated index carries its own stamped watermark and recovery replays
    pending batches into it too.  WAL segments rotate with the checkpoint
    generations and are pruned at the watermark.  The returned list has
    one entry for the initial fit (step ``-1``) followed by one per
    arrival batch.
    """
    supported = STREAMABLE_EMBEDDINGS.get(task)
    if supported is None:
        raise StreamingError(
            f"unknown task {task!r}; expected one of "
            f"{sorted(STREAMABLE_EMBEDDINGS)}")
    embedding = embedding.lower()
    if embedding not in supported:
        raise StreamingError(
            f"embedding {embedding!r} is corpus-dependent or unknown; "
            f"streaming supports {supported} for task {task!r}")
    if isinstance(dataset, str):
        from .runner import build_dataset
        dataset = build_dataset(dataset, scale or BENCHMARK_SCALE, seed=seed)

    embed = _EMBED_FNS[task]
    source = StreamSource(dataset, n_batches=n_batches, drift=drift,
                          drift_rate=drift_rate,
                          initial_fraction=initial_fraction, seed=seed)
    initial = source.initial()
    X0 = embed(initial, embedding, seed=seed)
    n_clusters = int(np.unique(initial.labels).size)

    timer = Timer()
    with timer:
        model = make_clusterer(algorithm, n_clusters, config=config,
                               seed=seed)
        model.fit(X0)
    ari, acc = _score(model, X0, initial.labels)
    results = [StreamStepResult(
        step=-1, action="fit", n_items=X0.shape[0], n_seen=X0.shape[0],
        seconds=timer.elapsed, ari=ari, acc=acc)]

    monitor = monitor or DriftMonitor()
    # Same noise convention as assess() below (DBSCAN noise becomes
    # singletons on both sides), so the silhouette decay carries no
    # systematic offset.
    monitor.observe_reference(
        X0, relabel_noise_as_singletons(np.asarray(model.labels_)))

    metadata = {"task": task, "dataset": dataset.name, "embedding": embedding,
                "algorithm": algorithm, "seed": seed,
                "n_features": int(X0.shape[1])}
    wal = None
    if wal_dir is not None:
        if save_path is None:
            raise StreamingError(
                "wal_dir requires a checkpoint save path (the journal's "
                "applied watermark lives in checkpoint metadata)")
        wal = WriteAheadLog(
            wal_namespace(wal_dir, Path(save_path).stem, stream_name))
        # The fresh fit supersedes anything already journaled: stamp the
        # watermark at the journal's current tail so a recovery never
        # replays pre-fit batches over the new model.
        metadata["wal_applied"] = {stream_name: wal.last_batch_id}
        metadata["wal_updates_applied"] = 0
    if save_path is not None:
        rotate_checkpoint(save_path, model, metadata=metadata,
                          keep=keep_generations)

    index = None
    index_path = None
    if with_index is not None:
        if save_path is None:
            raise StreamingError(
                "with_index requires a checkpoint save path (the index is "
                "rotated alongside the model)")
        from ..index import create_index

        save_path = Path(save_path)
        index_path = save_path.with_name(save_path.stem + ".index.npz")
        index = create_index(with_index, metric="cosine")
        index.build(X0)
        index_metadata = {**metadata, "kind": "vector-index",
                          "backend": with_index}
        rotate_checkpoint(index_path, index, metadata=index_metadata,
                          keep=keep_generations)

    seen = [X0]
    seen_labels = [np.asarray(initial.labels, dtype=np.int64)]
    try:
        for batch in source.batches():
            Xb = embed(batch.dataset, embedding, seed=seed)
            predicted = relabel_noise_as_singletons(model.predict(Xb))
            decision = monitor.assess(
                Xb, predicted,
                model_refit_flag=bool(
                    getattr(model, "refit_recommended_", False)))
            batch_id = None
            if wal is not None:
                # Journal-first: the batch is on stable storage before any
                # model state changes, so a crash below is recoverable.
                arrays = {"X": Xb,
                          "labels": np.asarray(batch.labels, dtype=np.int64)}
                meta = {"seed": seed, "action": decision.action,
                        "algorithm": algorithm}
                if decision.action == "refit":
                    # A refit cannot be replayed from the batch alone:
                    # journal the full pre-batch history and the clusterer
                    # context so recover_checkpoint reproduces the exact
                    # fresh fit (see repro.wal.recovery._replay_refit).
                    arrays["X_seen"] = np.vstack(seen)
                    meta["n_clusters"] = int(np.unique(np.concatenate(
                        seen_labels + [np.asarray(batch.labels,
                                                  dtype=np.int64)])).size)
                    if config is not None:
                        from dataclasses import asdict
                        meta["config"] = asdict(config)
                batch_id = wal.append(arrays, meta=meta)
            details: dict = {}
            timer = Timer()
            with timer:
                if decision.action == "refit":
                    X_all = np.vstack(seen + [Xb])
                    y_all = np.concatenate(seen_labels + [batch.labels])
                    model = make_clusterer(
                        algorithm, int(np.unique(y_all).size), config=config,
                        seed=seed)
                    model.fit(X_all)
                    monitor.observe_reference(
                        X_all, relabel_noise_as_singletons(
                            np.asarray(model.labels_)))
                else:
                    report = incremental_update(model, Xb, seed=seed)
                    details = dict(report.details)
            seen.append(Xb)
            seen_labels.append(np.asarray(batch.labels, dtype=np.int64))
            _LOG.info("stream_batch_applied", step=batch.index,
                      action=decision.action, n_items=int(Xb.shape[0]),
                      batch_id=batch_id, drifted=bool(batch.drifted),
                      seconds=round(timer.elapsed, 4))
            ari, acc = _score(model, Xb, batch.labels)
            results.append(StreamStepResult(
                step=batch.index, action=decision.action,
                n_items=int(Xb.shape[0]),
                n_seen=int(sum(x.shape[0] for x in seen)),
                seconds=timer.elapsed, ari=ari, acc=acc,
                mean_shift=decision.mean_shift,
                silhouette=decision.silhouette,
                drifted=batch.drifted, reasons=decision.reasons,
                details=details))
            if batch_id is not None:
                stamp_wal_metadata(metadata, stream=stream_name,
                                   batch_id=batch_id)
            if save_path is not None:
                rotate_checkpoint(save_path, model, metadata=metadata,
                                  keep=keep_generations)
            if index is not None:
                # The streaming write path: absorb the arrivals incrementally
                # and rotate the index generation in lockstep with the model,
                # stamping the same watermark so recovery knows which batches
                # the index already contains.
                if batch_id is not None:
                    stamp_wal_metadata(index_metadata, stream=stream_name,
                                       batch_id=batch_id)
                index.add(Xb)
                rotate_checkpoint(index_path, index, metadata=index_metadata,
                                  keep=keep_generations)
            if wal is not None:
                # Seal the segment only once it is large enough (one fsync
                # per append in steady state); everything at or below the
                # stamped watermark in sealed segments is prunable.  Pruning
                # runs after the index rotation so a record is only dropped
                # once both artifacts durably contain it.
                wal.maybe_rotate()
                wal.prune(batch_id)
    finally:
        if wal is not None:
            wal.close()
    return results
