"""Column-similarity heat maps (Figure 5).

Figure 5 compares, for a handful of Camera columns, the pairwise cosine
similarities under (a) SBERT schema-level embeddings and (b) EmbDi
schema+instance-level embeddings with SDCN, showing that adding
instance-level data with EmbDi turns true negatives into false positives
(every pair looks similar).  :func:`similarity_heatmap` computes the same
matrices for any subset of columns and reports the aggregate statistic the
figure illustrates: the mean off-diagonal similarity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graphs.knn import cosine_similarity_matrix
from ..utils.validation import check_matrix

__all__ = ["HeatmapReport", "similarity_heatmap"]


@dataclass(frozen=True)
class HeatmapReport:
    """A labelled cosine-similarity matrix plus its off-diagonal summary."""

    embedding: str
    labels: tuple[str, ...]
    matrix: np.ndarray = field(repr=False)
    mean_off_diagonal: float

    def as_row(self) -> dict[str, object]:
        return {
            "embedding": self.embedding,
            "n_columns": len(self.labels),
            "mean_off_diagonal_similarity": round(self.mean_off_diagonal, 3),
        }


def similarity_heatmap(X, labels: list[str], *, embedding: str = "",
                       indices: list[int] | None = None) -> HeatmapReport:
    """Cosine-similarity heat map over (a subset of) embedding rows.

    Parameters
    ----------
    X:
        Embedding matrix (one row per column of the dataset).
    labels:
        Human-readable label per row (typically the column header).
    indices:
        Optional subset of rows to include (Figure 5 uses four hand-picked
        columns); defaults to all rows.
    """
    X = check_matrix(X)
    if len(labels) != X.shape[0]:
        raise ValueError("labels must have one entry per embedding row")
    if indices is not None:
        X = X[np.asarray(indices, dtype=np.int64)]
        labels = [labels[i] for i in indices]
    similarity = cosine_similarity_matrix(X)
    n = similarity.shape[0]
    if n > 1:
        off_diagonal = similarity[~np.eye(n, dtype=bool)]
        mean_off = float(off_diagonal.mean())
    else:
        mean_off = 1.0
    return HeatmapReport(embedding=embedding, labels=tuple(labels),
                         matrix=similarity, mean_off_diagonal=mean_off)
