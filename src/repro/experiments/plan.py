"""Plan phase of the experiment harness: expand a spec into independent jobs.

``plan_experiment`` turns one registered :class:`ExperimentSpec` (plus any
dataset/embedding/algorithm overrides) into an :class:`ExperimentPlan` — an
ordered tuple of :class:`Cell` jobs, one per (dataset, embedding, algorithm)
combination.  Each cell is self-describing and independent of every other
cell, which is what lets :class:`repro.experiments.parallel.ParallelRunner`
execute them on a thread or process pool while the embedding cache
(:mod:`repro.cache`) deduplicates the shared embedding work.

Validation happens here, at plan time: overrides that the experiment cannot
honour (clustering algorithms for the ``table1`` profiling run, embeddings
for ``ks_density``, unknown algorithm names, datasets outside the spec)
raise :class:`~repro.exceptions.ExperimentError` instead of being silently
ignored.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import BENCHMARK_SCALE, ExperimentScale
from ..exceptions import ExperimentError
from ..tasks import (
    DD_INSTANCE_EMBEDDINGS,
    DD_SCHEMA_EMBEDDINGS,
    ER_EMBEDDINGS,
    INSTANCE_LEVEL_EMBEDDINGS,
    SCHEMA_LEVEL_EMBEDDINGS,
)
from ..tasks.base import CLUSTERER_NAMES
from .registry import ExperimentSpec, get_experiment

__all__ = ["Cell", "ExperimentPlan", "plan_experiment"]

#: Embedding methods each task pipeline can actually execute.
_TASK_EMBEDDINGS = {
    "schema_inference": SCHEMA_LEVEL_EMBEDDINGS + INSTANCE_LEVEL_EMBEDDINGS,
    "entity_resolution": ER_EMBEDDINGS,
    "domain_discovery": DD_SCHEMA_EMBEDDINGS + DD_INSTANCE_EMBEDDINGS,
    # Streaming spans all three tasks but only the per-item stateless
    # encoders keep batches in the training space (see
    # repro.experiments.streaming.STREAMABLE_EMBEDDINGS).
    "streaming": ("sbert", "fasttext", "sbert_instance"),
}


@dataclass(frozen=True)
class Cell:
    """One independent job of an experiment: cluster one embedding matrix.

    ``seed`` is fixed at plan time (``None`` defers to the deep clustering
    config's own seed, exactly like the serial code path), so a cell's
    result is fully determined by its fields regardless of which worker
    executes it or in which order.
    """

    experiment_id: str
    task: str
    dataset: str
    embedding: str
    algorithm: str
    seed: int | None
    index: int

    def label(self) -> str:
        return (f"{self.experiment_id}[{self.index}] "
                f"{self.dataset}/{self.embedding}/{self.algorithm}")


@dataclass(frozen=True)
class ExperimentPlan:
    """The expanded job list for one experiment run."""

    spec: ExperimentSpec
    scale: ExperimentScale
    datasets: tuple[str, ...]
    embeddings: tuple[str, ...]
    algorithms: tuple[str, ...]
    seed: int | None
    cells: tuple[Cell, ...]

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    @property
    def unique_embeddings(self) -> int:
        """Number of distinct (dataset, embedding) artifacts the plan needs."""
        return len({(cell.dataset, cell.embedding) for cell in self.cells})


def _check_overrides(spec: ExperimentSpec,
                     datasets: tuple[str, ...] | None,
                     embeddings: tuple[str, ...] | None,
                     algorithms: tuple[str, ...] | None) -> None:
    if datasets:
        unknown = sorted(set(datasets) - set(spec.datasets))
        if unknown:
            raise ExperimentError(
                f"dataset override {unknown!r} not part of experiment "
                f"{spec.experiment_id!r} (expected a subset of "
                f"{spec.datasets!r})")
    if spec.experiment_id in ("table1", "ks_density"):
        # These runs have no embedding x algorithm matrix: table1 profiles
        # raw datasets, ks_density analyses one fixed embedding.  Accepting
        # overrides here and ignoring them would misreport what ran.
        if algorithms:
            raise ExperimentError(
                f"experiment {spec.experiment_id!r} does not cluster, so "
                f"'algorithms' overrides have no effect; drop them")
        if embeddings and tuple(embeddings) != tuple(spec.embeddings):
            raise ExperimentError(
                f"experiment {spec.experiment_id!r} uses the fixed embedding "
                f"set {spec.embeddings!r}; 'embeddings' overrides have no "
                f"effect")
        return
    if embeddings:
        supported = _TASK_EMBEDDINGS.get(spec.task, ())
        unknown = sorted(set(e.lower() for e in embeddings) - set(supported))
        if unknown:
            raise ExperimentError(
                f"embedding override {unknown!r} not supported by task "
                f"{spec.task!r} (expected names from {supported!r})")
    if algorithms:
        unknown = sorted(set(algorithms) - set(CLUSTERER_NAMES))
        if unknown:
            raise ExperimentError(
                f"unknown clustering algorithm override {unknown!r}; "
                f"expected names from {CLUSTERER_NAMES!r}")


def plan_experiment(experiment_id: str, *,
                    scale: ExperimentScale | None = None,
                    datasets: tuple[str, ...] | None = None,
                    embeddings: tuple[str, ...] | None = None,
                    algorithms: tuple[str, ...] | None = None,
                    seed: int | None = None) -> ExperimentPlan:
    """Expand one experiment into an ordered list of independent cells.

    The cell order matches the historical serial execution order (datasets
    outermost, then embeddings, then algorithms), so result lists are
    comparable across runner implementations.
    """
    spec = get_experiment(experiment_id)
    scale = scale or BENCHMARK_SCALE
    _check_overrides(spec, datasets, embeddings, algorithms)
    if spec.kind == "figure":
        raise ExperimentError(
            f"experiment {experiment_id!r} is a figure; use the dedicated "
            "scalability/projections/heatmaps entry points")

    chosen_datasets = tuple(datasets or spec.datasets)
    chosen_embeddings = tuple(embeddings or spec.embeddings)
    chosen_algorithms = tuple(algorithms or spec.algorithms)

    cells: list[Cell] = []
    for dataset in chosen_datasets:
        for embedding in chosen_embeddings:
            for algorithm in chosen_algorithms:
                cells.append(Cell(
                    experiment_id=spec.experiment_id,
                    task=spec.task,
                    dataset=dataset,
                    embedding=embedding,
                    algorithm=algorithm,
                    seed=seed,
                    index=len(cells),
                ))
    return ExperimentPlan(
        spec=spec,
        scale=scale,
        datasets=chosen_datasets,
        embeddings=chosen_embeddings,
        algorithms=chosen_algorithms,
        seed=seed,
        cells=tuple(cells),
    )
