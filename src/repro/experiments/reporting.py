"""Result formatting: render TaskResults in the paper's table layout."""

from __future__ import annotations

from collections import defaultdict

from ..tasks.base import TaskResult

__all__ = ["results_to_rows", "pivot_results", "format_results_table"]


def results_to_rows(results: list[TaskResult]) -> list[dict[str, object]]:
    """Flat row dictionaries (one per dataset x embedding x algorithm)."""
    return [result.as_row() for result in results]


def pivot_results(results: list[TaskResult]) -> dict[str, dict[str, dict[str, dict[str, float]]]]:
    """Nest results as ``dataset -> metric -> algorithm -> embedding -> value``.

    This mirrors the layout of the paper's Tables 2-6, where each dataset
    block has K / ARI / ACC rows and one column per (algorithm, embedding)
    pair.
    """
    pivot: dict[str, dict[str, dict[str, dict[str, float]]]] = defaultdict(
        lambda: defaultdict(lambda: defaultdict(dict)))
    for result in results:
        cell = pivot[result.dataset]
        cell["K"][result.algorithm][result.embedding] = result.n_clusters_predicted
        cell["ARI"][result.algorithm][result.embedding] = round(result.ari, 3)
        cell["ACC"][result.algorithm][result.embedding] = round(result.acc, 3)
    return {dataset: {metric: {algo: dict(emb) for algo, emb in algos.items()}
                      for metric, algos in metrics.items()}
            for dataset, metrics in pivot.items()}


def format_results_table(results: list[TaskResult], *, title: str = "") -> str:
    """Render results as a fixed-width text table grouped like the paper."""
    if not results:
        return "(no results)"
    algorithms = list(dict.fromkeys(r.algorithm for r in results))
    embeddings = list(dict.fromkeys(r.embedding for r in results))
    datasets = list(dict.fromkeys(r.dataset for r in results))
    pivot = pivot_results(results)

    lines: list[str] = []
    if title:
        lines.append(title)
    header_cells = ["Dataset", "Metric"]
    for algorithm in algorithms:
        for embedding in embeddings:
            header_cells.append(f"{algorithm}/{embedding}")
    widths = [max(12, len(cell)) for cell in header_cells]
    lines.append(" | ".join(cell.ljust(width)
                            for cell, width in zip(header_cells, widths)))
    lines.append("-+-".join("-" * width for width in widths))

    for dataset in datasets:
        for metric in ("K", "ARI", "ACC"):
            cells = [dataset, metric]
            for algorithm in algorithms:
                for embedding in embeddings:
                    value = pivot.get(dataset, {}).get(metric, {}) \
                        .get(algorithm, {}).get(embedding, "")
                    cells.append(str(value))
            lines.append(" | ".join(cell.ljust(width)
                                    for cell, width in zip(cells, widths)))
    return "\n".join(lines)
