"""Result formatting: render experiment results as text, JSON or CSV.

``format_results_table`` renders :class:`TaskResult` lists in the paper's
table layout; ``rows_to_json`` / ``rows_to_csv`` serialise any list of row
dictionaries (task results, Table 1 dataset profiles, scalability points)
for machine consumption — they back the ``--format {table,json,csv}`` flag
of the ``python -m repro`` CLI.
"""

from __future__ import annotations

import csv
import io
import json
from collections import defaultdict

from ..exceptions import ExperimentError
from ..tasks.base import TaskResult

__all__ = [
    "NON_MATRIX_RESULTS",
    "results_to_rows",
    "experiment_result_rows",
    "pivot_results",
    "format_results_table",
    "rows_to_json",
    "rows_to_csv",
    "render_rows",
    "RESULT_FORMATS",
]

#: Output formats understood by :func:`render_rows` and the CLI.
RESULT_FORMATS = ("table", "json", "csv")


def results_to_rows(results: list[TaskResult]) -> list[dict[str, object]]:
    """Flat row dictionaries (one per dataset x embedding x algorithm)."""
    return [result.as_row() for result in results]


#: Experiments whose ``run_experiment`` return value is *not* a list of
#: :class:`TaskResult` (so cannot feed ``pivot_results``).
NON_MATRIX_RESULTS = frozenset(
    {"table1", "ks_density", "figure4_scalability", "stream_ingestion"})


def experiment_result_rows(experiment_id: str,
                           result: object) -> list[dict[str, object]]:
    """Flatten any ``run_experiment`` return value into result rows.

    Each experiment family returns a different shape — dataset profiles
    for ``table1``, a KS summary for ``ks_density``, scalability points
    for ``figure4_scalability``, raw dictionaries for
    ``stream_ingestion``, :class:`TaskResult` lists for the matrix
    experiments.  This is the single mapping from those shapes to the flat
    rows that every renderer and exporter consumes, shared by the CLI and
    the async jobs API so a job's exported CSV is byte-identical to the
    foreground ``repro run --format csv`` output.
    """
    if experiment_id == "table1":
        return [profile.as_row() for profile in result]
    if experiment_id == "ks_density":
        return [{
            "mean_KS_statistic": round(result.mean_statistic, 4),
            "mean_p_value": round(result.mean_p_value, 4),
            "n_features": result.n_features,
            "n_pairs": result.n_pairs,
            "same_distribution": result.same_distribution,
        }]
    if experiment_id == "figure4_scalability":
        return [point.as_row() for point in result]
    if experiment_id == "stream_ingestion":
        return list(result)
    return results_to_rows(result)


def pivot_results(results: list[TaskResult]) -> dict[str, dict[str, dict[str, dict[str, float]]]]:
    """Nest results as ``dataset -> metric -> algorithm -> embedding -> value``.

    This mirrors the layout of the paper's Tables 2-6, where each dataset
    block has K / ARI / ACC rows and one column per (algorithm, embedding)
    pair.
    """
    pivot: dict[str, dict[str, dict[str, dict[str, float]]]] = defaultdict(
        lambda: defaultdict(lambda: defaultdict(dict)))
    for result in results:
        cell = pivot[result.dataset]
        cell["K"][result.algorithm][result.embedding] = result.n_clusters_predicted
        cell["ARI"][result.algorithm][result.embedding] = round(result.ari, 3)
        cell["ACC"][result.algorithm][result.embedding] = round(result.acc, 3)
    return {dataset: {metric: {algo: dict(emb) for algo, emb in algos.items()}
                      for metric, algos in metrics.items()}
            for dataset, metrics in pivot.items()}


def format_results_table(results: list[TaskResult], *, title: str = "") -> str:
    """Render results as a fixed-width text table grouped like the paper."""
    if not results:
        return "(no results)"
    algorithms = list(dict.fromkeys(r.algorithm for r in results))
    embeddings = list(dict.fromkeys(r.embedding for r in results))
    datasets = list(dict.fromkeys(r.dataset for r in results))
    pivot = pivot_results(results)

    lines: list[str] = []
    if title:
        lines.append(title)
    header_cells = ["Dataset", "Metric"]
    for algorithm in algorithms:
        for embedding in embeddings:
            header_cells.append(f"{algorithm}/{embedding}")
    widths = [max(12, len(cell)) for cell in header_cells]
    lines.append(" | ".join(cell.ljust(width)
                            for cell, width in zip(header_cells, widths)))
    lines.append("-+-".join("-" * width for width in widths))

    for dataset in datasets:
        for metric in ("K", "ARI", "ACC"):
            cells = [dataset, metric]
            for algorithm in algorithms:
                for embedding in embeddings:
                    value = pivot.get(dataset, {}).get(metric, {}) \
                        .get(algorithm, {}).get(embedding, "")
                    cells.append(str(value))
            lines.append(" | ".join(cell.ljust(width)
                                    for cell, width in zip(cells, widths)))
    return "\n".join(lines)


def rows_to_json(rows: list[dict[str, object]], *, indent: int = 2) -> str:
    """Serialise row dictionaries as a JSON array (stable key order)."""
    return json.dumps(rows, indent=indent, default=str)


def rows_to_csv(rows: list[dict[str, object]]) -> str:
    """Serialise row dictionaries as CSV with a header row.

    The header is the union of the keys across all rows, in first-seen
    order; rows missing a key emit an empty cell.
    """
    if not rows:
        return ""
    fieldnames = list(dict.fromkeys(key for row in rows for key in row))
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames, restval="")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def _rows_to_text(rows: list[dict[str, object]]) -> str:
    """Render generic row dictionaries as a fixed-width text table."""
    if not rows:
        return "(no results)"
    fieldnames = list(dict.fromkeys(key for row in rows for key in row))
    table = [[str(row.get(name, "")) for name in fieldnames] for row in rows]
    widths = [max(len(name), *(len(line[i]) for line in table))
              for i, name in enumerate(fieldnames)]
    lines = [" | ".join(name.ljust(width)
                        for name, width in zip(fieldnames, widths))]
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(" | ".join(cell.ljust(width)
                            for cell, width in zip(line, widths))
                 for line in table)
    return "\n".join(lines)


def render_rows(rows: list[dict[str, object]], fmt: str = "table", *,
                title: str = "") -> str:
    """Render row dictionaries in one of :data:`RESULT_FORMATS`."""
    if fmt not in RESULT_FORMATS:
        raise ExperimentError(
            f"unknown result format {fmt!r}; expected one of {RESULT_FORMATS}")
    if fmt == "json":
        return rows_to_json(rows)
    if fmt == "csv":
        return rows_to_csv(rows)
    text = _rows_to_text(rows)
    return f"{title}\n{text}" if title else text
