"""Runtime scalability study (Figure 4).

The paper measures clustering runtime on subsets of MusicBrainz 200K:

* Figure 4a — runtime vs number of instances at fixed K = 200 (entities are
  duplicated so K stays constant while the record count grows);
* Figure 4b — runtime vs number of clusters K (the instance count follows
  the chosen K).

The study reproduces both sweeps for any subset of the six clustering
algorithms, returning wall-clock seconds per (algorithm, point).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DeepClusteringConfig
from ..data import generate_musicbrainz_scalability
from ..tasks.base import evaluate_clustering
from ..tasks.entity_resolution import embed_records

__all__ = ["ScalabilityPoint", "run_scalability_study"]

_DEFAULT_ALGORITHMS = ("sdcn", "shgp", "edesc", "kmeans", "dbscan", "birch")


@dataclass(frozen=True)
class ScalabilityPoint:
    """One measured point of Figure 4."""

    sweep: str                # "instances" or "clusters"
    algorithm: str
    n_instances: int
    n_clusters: int
    runtime_seconds: float
    ari: float

    def as_row(self) -> dict[str, object]:
        return {
            "sweep": self.sweep,
            "algorithm": self.algorithm,
            "n_instances": self.n_instances,
            "n_clusters": self.n_clusters,
            "runtime_s": round(self.runtime_seconds, 4),
            "ARI": round(self.ari, 3),
        }


def run_scalability_study(*, instance_grid: tuple[int, ...] = (200, 400, 800),
                          cluster_grid: tuple[int, ...] = (50, 100, 200),
                          fixed_clusters: int = 100,
                          records_per_cluster: int = 4,
                          algorithms: tuple[str, ...] = _DEFAULT_ALGORITHMS,
                          config: DeepClusteringConfig | None = None,
                          embedding: str = "sbert",
                          seed: int | None = None) -> list[ScalabilityPoint]:
    """Measure clustering runtimes over instance and cluster sweeps."""
    config = config or DeepClusteringConfig(pretrain_epochs=10, train_epochs=10)
    points: list[ScalabilityPoint] = []

    # Sweep 1: vary the number of instances at a fixed number of clusters.
    for n_instances in instance_grid:
        dataset = generate_musicbrainz_scalability(
            n_instances, min(fixed_clusters, n_instances), seed=seed)
        X = embed_records(dataset, embedding, seed=seed)
        for algorithm in algorithms:
            result = evaluate_clustering(
                X, dataset.labels, algorithm=algorithm, dataset=dataset.name,
                task="entity_resolution", embedding=embedding, config=config,
                seed=seed)
            points.append(ScalabilityPoint(
                sweep="instances", algorithm=algorithm,
                n_instances=n_instances,
                n_clusters=min(fixed_clusters, n_instances),
                runtime_seconds=result.runtime_seconds, ari=result.ari))

    # Sweep 2: vary the number of clusters (instances follow K).
    for n_clusters in cluster_grid:
        n_instances = n_clusters * records_per_cluster
        dataset = generate_musicbrainz_scalability(
            n_instances, n_clusters, seed=seed)
        X = embed_records(dataset, embedding, seed=seed)
        for algorithm in algorithms:
            result = evaluate_clustering(
                X, dataset.labels, algorithm=algorithm, dataset=dataset.name,
                task="entity_resolution", embedding=embedding, config=config,
                seed=seed)
            points.append(ScalabilityPoint(
                sweep="clusters", algorithm=algorithm,
                n_instances=n_instances, n_clusters=n_clusters,
                runtime_seconds=result.runtime_seconds, ari=result.ari))
    return points
