"""Runtime scalability study (Figure 4).

The paper measures clustering runtime on subsets of MusicBrainz 200K:

* Figure 4a — runtime vs number of instances at fixed K = 200 (entities are
  duplicated so K stays constant while the record count grows);
* Figure 4b — runtime vs number of clusters K (the instance count follows
  the chosen K).

The study reproduces both sweeps for any subset of the six clustering
algorithms, returning wall-clock seconds (and the peak traced memory) per
(algorithm, point).  ``graph="sparse"`` routes the graph-based models
through the CSR adjacency / blocked-KNN path of :mod:`repro.graphs.knn`,
which keeps memory at O(n * k) and unlocks instance counts the dense
O(n^2) path cannot reach; ``batch_size`` additionally enables mini-batch
fine-tuning (see :class:`repro.config.DeepClusteringConfig`).
"""

from __future__ import annotations

import tracemalloc
from dataclasses import dataclass

from ..config import DeepClusteringConfig
from ..data import generate_musicbrainz_scalability
from ..tasks.base import evaluate_clustering
from ..tasks.entity_resolution import embed_records

__all__ = ["ScalabilityPoint", "run_scalability_study"]

_DEFAULT_ALGORITHMS = ("sdcn", "shgp", "edesc", "kmeans", "dbscan", "birch")


@dataclass(frozen=True)
class ScalabilityPoint:
    """One measured point of Figure 4."""

    sweep: str                # "instances" or "clusters"
    algorithm: str
    n_instances: int
    n_clusters: int
    runtime_seconds: float
    ari: float
    graph: str = "dense"      # adjacency representation used by DC models
    peak_mem_mb: float = 0.0  # peak traced allocation during the fit

    def as_row(self) -> dict[str, object]:
        """Flat row for table/JSON/CSV rendering."""
        return {
            "sweep": self.sweep,
            "algorithm": self.algorithm,
            "graph": self.graph,
            "n_instances": self.n_instances,
            "n_clusters": self.n_clusters,
            "runtime_s": round(self.runtime_seconds, 4),
            "peak_mem_mb": round(self.peak_mem_mb, 2),
            "ARI": round(self.ari, 3),
        }


def _measured_cell(X, labels, *, algorithm: str, dataset: str,
                   embedding: str, config: DeepClusteringConfig,
                   seed: int | None):
    """Run one cell under tracemalloc and return (result, peak MiB).

    When a caller is already tracing, its trace is left untouched (no
    ``reset_peak``, which would destroy the caller's measurement); the
    reported per-cell value is then the cumulative peak so far.
    """
    nested = tracemalloc.is_tracing()
    if not nested:
        tracemalloc.start()
        tracemalloc.reset_peak()
    try:
        result = evaluate_clustering(
            X, labels, algorithm=algorithm, dataset=dataset,
            task="entity_resolution", embedding=embedding, config=config,
            seed=seed)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        if not nested:
            tracemalloc.stop()
    return result, peak / (1024.0 * 1024.0)


def run_scalability_study(*, instance_grid: tuple[int, ...] = (200, 400, 800),
                          cluster_grid: tuple[int, ...] = (50, 100, 200),
                          fixed_clusters: int = 100,
                          records_per_cluster: int = 4,
                          algorithms: tuple[str, ...] = _DEFAULT_ALGORITHMS,
                          config: DeepClusteringConfig | None = None,
                          embedding: str = "sbert",
                          graph: str | None = None,
                          graph_backend: str | None = None,
                          batch_size: int | None = None,
                          seed: int | None = None) -> list[ScalabilityPoint]:
    """Measure clustering runtimes and peak memory over both sweeps.

    ``graph`` / ``graph_backend`` / ``batch_size`` override the
    corresponding fields of ``config`` when given (``graph="sparse"`` is
    what pushes the instance sweep past the dense O(n^2) wall;
    ``graph_backend="ivf"``/``"hnsw"`` additionally drops graph
    *construction* below the blocked exact scan).
    """
    config = config or DeepClusteringConfig(pretrain_epochs=10, train_epochs=10)
    if graph is not None:
        config = config.with_updates(graph=graph)
    if graph_backend is not None:
        config = config.with_updates(graph_backend=graph_backend)
    if batch_size is not None:
        config = config.with_updates(batch_size=batch_size)
    points: list[ScalabilityPoint] = []

    # Sweep 1: vary the number of instances at a fixed number of clusters.
    for n_instances in instance_grid:
        dataset = generate_musicbrainz_scalability(
            n_instances, min(fixed_clusters, n_instances), seed=seed)
        X = embed_records(dataset, embedding, seed=seed)
        for algorithm in algorithms:
            result, peak_mb = _measured_cell(
                X, dataset.labels, algorithm=algorithm, dataset=dataset.name,
                embedding=embedding, config=config, seed=seed)
            points.append(ScalabilityPoint(
                sweep="instances", algorithm=algorithm,
                n_instances=n_instances,
                n_clusters=min(fixed_clusters, n_instances),
                runtime_seconds=result.runtime_seconds, ari=result.ari,
                graph=config.graph, peak_mem_mb=peak_mb))

    # Sweep 2: vary the number of clusters (instances follow K).
    for n_clusters in cluster_grid:
        n_instances = n_clusters * records_per_cluster
        dataset = generate_musicbrainz_scalability(
            n_instances, n_clusters, seed=seed)
        X = embed_records(dataset, embedding, seed=seed)
        for algorithm in algorithms:
            result, peak_mb = _measured_cell(
                X, dataset.labels, algorithm=algorithm, dataset=dataset.name,
                embedding=embedding, config=config, seed=seed)
            points.append(ScalabilityPoint(
                sweep="clusters", algorithm=algorithm,
                n_instances=n_instances, n_clusters=n_clusters,
                runtime_seconds=result.runtime_seconds, ari=result.ari,
                graph=config.graph, peak_mem_mb=peak_mb))
    return points
