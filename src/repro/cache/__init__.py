"""Artifact caching for the experiment harness.

See :mod:`repro.cache.artifact` for the cache implementation.  The default
process-wide cache makes every (dataset, embedding) matrix compute exactly
once per process; point it at a directory (``configure_cache(cache_dir=...)``
or ``python -m repro run ... --cache-dir ...``) to persist artifacts as NPZ
files shared across processes and runs.
"""

from .artifact import (
    ArtifactCache,
    CacheStats,
    configure_cache,
    dataset_fingerprint,
    embedding_cache_key,
    get_cache,
    reset_cache,
    set_cache,
)

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "configure_cache",
    "dataset_fingerprint",
    "embedding_cache_key",
    "get_cache",
    "reset_cache",
    "set_cache",
]
