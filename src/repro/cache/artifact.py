"""Content-addressed caching of expensive experiment artifacts.

The paper's evaluation is a large cross-product (tasks x datasets x
embedding methods x clustering algorithms) in which the embedding step is by
far the most expensive repeated computation: every clustering algorithm of a
table re-uses the same (dataset, embedding) matrix.  :class:`ArtifactCache`
stores those matrices under a content-addressed key so that each matrix is
computed exactly once per process — and, with a cache directory configured,
exactly once per machine.

Keys are derived from the *content* of the dataset (name, labels, cell
values) plus the embedding method, seed and encoder parameters, so two
datasets generated at different scales or seeds never collide even though
they share a name.  The cache has two layers:

* an in-memory LRU layer (bounded by ``max_entries``), and
* an optional NPZ disk layer (``cache_dir``), written atomically so that
  concurrent worker processes can share one directory.

A process-wide default cache is used by the task embedding helpers
(:func:`repro.tasks.embed_tables` and friends); tests and the CLI can swap
it via :func:`set_cache` / :func:`configure_cache`.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from ..exceptions import ReproError

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "configure_cache",
    "dataset_fingerprint",
    "embedding_cache_key",
    "get_cache",
    "reset_cache",
    "set_cache",
]


@dataclass
class CacheStats:
    """Counters describing how a cache instance has been used."""

    hits: int = 0
    misses: int = 0
    computes: int = 0
    disk_hits: int = 0
    disk_writes: int = 0
    evictions: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "computes": self.computes,
            "disk_hits": self.disk_hits,
            "disk_writes": self.disk_writes,
            "evictions": self.evictions,
        }


def _update_hash(digest, *parts: object) -> None:
    for part in parts:
        digest.update(repr(part).encode("utf-8", errors="replace"))
        digest.update(b"\x1f")


#: Metadata slot caching a container's content fingerprint between calls.
_FINGERPRINT_KEY = "_repro_content_fingerprint"


def dataset_fingerprint(dataset) -> str:
    """Hash the content of a clustering dataset container.

    Accepts any of the containers from :mod:`repro.data.table`
    (tables/records/columns).  The fingerprint covers the dataset name, the
    ground-truth labels and every item's identifying content, so datasets
    generated at different scales or seeds hash differently even when they
    share a name.

    The result is memoised in ``dataset.metadata`` — every cell of an
    experiment keys its embedding lookup off this value, and re-hashing the
    full corpus per cell would dominate the cost of a cache hit.  Callers
    that mutate a dataset's items after the first fingerprint call must
    drop the ``_repro_content_fingerprint`` metadata entry themselves.
    """
    if not any(hasattr(dataset, attr)
               for attr in ("tables", "records", "columns")):
        raise ReproError(
            f"cannot fingerprint object of type {type(dataset).__name__}")
    metadata = getattr(dataset, "metadata", None)
    if isinstance(metadata, dict):
        cached = metadata.get(_FINGERPRINT_KEY)
        if cached is not None:
            return cached
    digest = hashlib.sha256()
    _update_hash(digest, type(dataset).__name__, dataset.name)
    labels = np.ascontiguousarray(np.asarray(dataset.labels, dtype=np.int64))
    digest.update(labels.tobytes())
    if hasattr(dataset, "tables"):
        for table in dataset.tables:
            _update_hash(digest, table.name, tuple(table.column_names))
            for values in table.columns.values():
                _update_hash(digest, tuple(values))
    elif hasattr(dataset, "records"):
        for record in dataset.records:
            _update_hash(digest, record.source, record.identifier,
                         tuple(record.values.items()))
    elif hasattr(dataset, "columns"):
        for column in dataset.columns:
            _update_hash(digest, column.header, column.table_name,
                         tuple(column.values))
    fingerprint = digest.hexdigest()
    if isinstance(metadata, dict):
        metadata[_FINGERPRINT_KEY] = fingerprint
    return fingerprint


def embedding_cache_key(kind: str, dataset, method: str,
                        seed: int | None = None, **params: object) -> str:
    """Build the cache key for one (dataset, embedding method) artifact."""
    extras = "&".join(f"{name}={value!r}"
                      for name, value in sorted(params.items()))
    return (f"{kind}/{dataset.name}/{method}/seed={seed}/{extras}/"
            f"{dataset_fingerprint(dataset)}")


class ArtifactCache:
    """Two-layer (memory LRU + optional NPZ disk) array cache.

    Thread-safe: concurrent :meth:`get_or_compute` calls for the *same* key
    serialise on a per-key lock so the compute callback runs exactly once
    per process, while different keys compute concurrently.
    """

    def __init__(self, *, max_entries: int = 64,
                 cache_dir: str | Path | None = None) -> None:
        if max_entries < 1:
            raise ReproError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.stats = CacheStats()
        self._entries: OrderedDict[str, np.ndarray] = OrderedDict()
        self._lock = threading.Lock()
        self._key_locks: dict[str, threading.Lock] = {}

    # ------------------------------------------------------------------
    # public API
    def get(self, key: str) -> np.ndarray | None:
        """Return the cached array for ``key`` or ``None`` (counts stats)."""
        with self._lock:
            value = self._memory_lookup(key)
        if value is not None:
            return value
        return self._promote_from_disk(key)

    def put(self, key: str, value: np.ndarray) -> np.ndarray:
        """Store ``value`` under ``key`` in memory (and on disk if enabled)."""
        value = self._freeze(value)
        with self._lock:
            self._store_memory(key, value)
        self._write_to_disk(key, value)
        return value

    def get_or_compute(self, key: str,
                       compute: Callable[[], np.ndarray]) -> np.ndarray:
        """Return the artifact for ``key``, computing it at most once.

        Concurrent callers with the same key block until the first caller's
        ``compute()`` finishes and then share its result.  Disk I/O and the
        compute callback run outside the cache-wide lock, so workers on
        different keys never serialise on each other's NPZ traffic.
        """
        with self._lock:
            value = self._memory_lookup(key)
            if value is not None:
                return value
            key_lock = self._key_locks.setdefault(key, threading.Lock())
        try:
            with key_lock:
                with self._lock:
                    value = self._memory_lookup(key)
                if value is None:
                    value = self._promote_from_disk(key)
                if value is None:
                    value = self._freeze(compute())
                    with self._lock:
                        self.stats.misses += 1
                        self.stats.computes += 1
                        self._store_memory(key, value)
                    self._write_to_disk(key, value)
        finally:
            with self._lock:
                self._key_locks.pop(key, None)
        return value

    def clear(self) -> None:
        """Drop every in-memory entry (disk files are left in place)."""
        with self._lock:
            self._entries.clear()

    def invalidate_prefix(self, prefix: str) -> int:
        """Drop every entry whose key starts with ``prefix``; return the count.

        Used by the serving layer when a model's checkpoint generation is
        hot-swapped: anything memoised under the ``model/<name>/`` namespace
        describes the *old* weights and must not outlive them.  Matching
        disk-layer files are removed too (disk filenames hash the full key,
        so only keys currently resident in memory can be matched — callers
        that persist generation-dependent artifacts on disk should embed the
        generation in the key instead of relying on invalidation).
        """
        with self._lock:
            doomed = [key for key in self._entries
                      if key.startswith(prefix)]
            for key in doomed:
                del self._entries[key]
        for key in doomed:
            path = self._disk_path(key)
            if path is not None:
                try:
                    path.unlink()
                except OSError:
                    pass
        return len(doomed)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    # ------------------------------------------------------------------
    # internals
    @staticmethod
    def _freeze(value: np.ndarray) -> np.ndarray:
        value = np.asarray(value)
        value.setflags(write=False)
        return value

    def _memory_lookup(self, key: str) -> np.ndarray | None:
        """LRU lookup; call with ``self._lock`` held."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return self._entries[key]
        return None

    def _promote_from_disk(self, key: str) -> np.ndarray | None:
        """Load ``key`` from the disk layer into memory (lock-free I/O)."""
        value = self._load_from_disk(key)
        if value is None:
            return None
        with self._lock:
            self.stats.hits += 1
            self.stats.disk_hits += 1
            self._store_memory(key, value)
        return value

    def _store_memory(self, key: str, value: np.ndarray) -> None:
        """Insert into the LRU layer; call with ``self._lock`` held."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def _disk_path(self, key: str) -> Path | None:
        if self.cache_dir is None:
            return None
        name = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return self.cache_dir / f"{name}.npz"

    def _load_from_disk(self, key: str) -> np.ndarray | None:
        path = self._disk_path(key)
        if path is None or not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as payload:
                if str(payload["key"]) != key:  # collision or foreign file
                    return None
                return self._freeze(payload["value"])
        except Exception:
            # A truncated, corrupt or foreign file is a cache miss, not a
            # reason to fail the run; the entry will be rewritten.
            return None

    def _write_to_disk(self, key: str, value: np.ndarray) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        # Write to a temporary file and rename so concurrent processes
        # sharing one cache directory never observe a partial NPZ.
        handle, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(handle, "wb") as tmp:
                np.savez_compressed(tmp, key=np.asarray(key), value=value)
            os.replace(tmp_name, path)
            with self._lock:
                self.stats.disk_writes += 1
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise


# ----------------------------------------------------------------------
# process-wide default cache
_default_cache = ArtifactCache()
_default_lock = threading.Lock()


def get_cache() -> ArtifactCache:
    """Return the process-wide default :class:`ArtifactCache`."""
    return _default_cache


def set_cache(cache: ArtifactCache) -> ArtifactCache:
    """Replace the process-wide default cache and return the new one."""
    global _default_cache
    with _default_lock:
        _default_cache = cache
    return cache


def configure_cache(*, max_entries: int = 64,
                    cache_dir: str | Path | None = None) -> ArtifactCache:
    """Install a fresh default cache with the given settings."""
    return set_cache(ArtifactCache(max_entries=max_entries,
                                   cache_dir=cache_dir))


def reset_cache() -> ArtifactCache:
    """Restore a pristine default cache (used by tests and the CLI)."""
    return set_cache(ArtifactCache())
