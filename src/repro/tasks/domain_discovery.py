"""Domain discovery as column clustering (Section 7).

Given a set of columns drawn from many sources, identify the subsets that
instantiate the same application concept (domain).  Schema-level evidence
embeds only the column headers (SBERT or FastText); schema+instance-level
evidence embeds headers and values jointly — with SBERT the two embeddings
are averaged (as described in Section 7), with EmbDi the schema-matching
variant produces column-node embeddings from the tripartite graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cache import embedding_cache_key, get_cache
from ..config import DeepClusteringConfig
from ..data.table import ColumnClusteringDataset
from ..embeddings import EmbDiEmbedder, FastTextEncoder, SBERTEncoder
from ..exceptions import ConfigurationError
from .base import ClusteringTask
from .preprocessing import preprocess_columns

__all__ = ["DomainDiscoveryTask", "embed_columns",
           "DD_SCHEMA_EMBEDDINGS", "DD_INSTANCE_EMBEDDINGS"]

#: Header-only column representations (Table 5).
DD_SCHEMA_EMBEDDINGS = ("sbert", "fasttext")
#: Header+value column representations (Table 6).
DD_INSTANCE_EMBEDDINGS = ("sbert_instance", "embdi")


def embed_columns(dataset: ColumnClusteringDataset, method: str, *,
                  seed: int | None = None, max_values: int = 20,
                  embdi_dim: int = 64) -> np.ndarray:
    """Embed every column of ``dataset`` with the requested method.

    Results are memoised in the process-wide :mod:`repro.cache`; see
    :func:`repro.tasks.embed_tables` for the caching contract.
    """
    key = embedding_cache_key("columns", dataset, method.lower(), seed,
                              max_values=max_values, embdi_dim=embdi_dim)
    return get_cache().get_or_compute(
        key, lambda: _embed_columns(dataset, method, seed=seed,
                                    max_values=max_values,
                                    embdi_dim=embdi_dim))


def _embed_columns(dataset: ColumnClusteringDataset, method: str, *,
                   seed: int | None = None, max_values: int = 20,
                   embdi_dim: int = 64) -> np.ndarray:
    method = method.lower()
    columns = preprocess_columns(dataset.columns)
    if method == "sbert":
        encoder = SBERTEncoder()
        return encoder.encode_texts([column.header for column in columns])
    if method == "fasttext":
        encoder = FastTextEncoder()
        return encoder.encode_texts([column.header for column in columns])
    if method == "sbert_instance":
        encoder = SBERTEncoder()
        header_vectors = encoder.encode_texts(
            [column.header for column in columns])
        value_vectors = encoder.encode_texts(
            [" ".join(str(v) for v in column.values[:max_values])
             for column in columns])
        # Section 7: the column embedding is the mean of the header and
        # value embeddings.
        return (header_vectors + value_vectors) / 2.0
    if method == "embdi":
        embedder = EmbDiEmbedder(dim=embdi_dim, seed=seed)
        return embedder.embed_columns(columns)
    raise ConfigurationError(
        f"unknown column embedding {method!r}; expected one of "
        f"{DD_SCHEMA_EMBEDDINGS + DD_INSTANCE_EMBEDDINGS}")


@dataclass
class DomainDiscoveryTask(ClusteringTask):
    """End-to-end domain discovery pipeline."""

    dataset: ColumnClusteringDataset
    config: DeepClusteringConfig | None = None

    task_name = "domain_discovery"

    def embed(self, method: str, *, seed: int | None = None) -> np.ndarray:
        return embed_columns(self.dataset, method, seed=seed)
