"""Domain discovery as column clustering (Section 7).

Given a set of columns drawn from many sources, identify the subsets that
instantiate the same application concept (domain).  Schema-level evidence
embeds only the column headers (SBERT or FastText); schema+instance-level
evidence embeds headers and values jointly — with SBERT the two embeddings
are averaged (as described in Section 7), with EmbDi the schema-matching
variant produces column-node embeddings from the tripartite graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import DeepClusteringConfig
from ..data.table import ColumnClusteringDataset
from ..embeddings import EmbDiEmbedder, FastTextEncoder, SBERTEncoder
from ..exceptions import ConfigurationError
from .base import TaskResult, evaluate_clustering
from .preprocessing import preprocess_columns

__all__ = ["DomainDiscoveryTask", "embed_columns",
           "DD_SCHEMA_EMBEDDINGS", "DD_INSTANCE_EMBEDDINGS"]

#: Header-only column representations (Table 5).
DD_SCHEMA_EMBEDDINGS = ("sbert", "fasttext")
#: Header+value column representations (Table 6).
DD_INSTANCE_EMBEDDINGS = ("sbert_instance", "embdi")


def embed_columns(dataset: ColumnClusteringDataset, method: str, *,
                  seed: int | None = None, max_values: int = 20,
                  embdi_dim: int = 64) -> np.ndarray:
    """Embed every column of ``dataset`` with the requested method."""
    method = method.lower()
    columns = preprocess_columns(dataset.columns)
    if method == "sbert":
        encoder = SBERTEncoder()
        return encoder.encode_texts([column.header for column in columns])
    if method == "fasttext":
        encoder = FastTextEncoder()
        return encoder.encode_texts([column.header for column in columns])
    if method == "sbert_instance":
        encoder = SBERTEncoder()
        header_vectors = encoder.encode_texts(
            [column.header for column in columns])
        value_vectors = encoder.encode_texts(
            [" ".join(str(v) for v in column.values[:max_values])
             for column in columns])
        # Section 7: the column embedding is the mean of the header and
        # value embeddings.
        return (header_vectors + value_vectors) / 2.0
    if method == "embdi":
        embedder = EmbDiEmbedder(dim=embdi_dim, seed=seed)
        return embedder.embed_columns(columns)
    raise ConfigurationError(
        f"unknown column embedding {method!r}; expected one of "
        f"{DD_SCHEMA_EMBEDDINGS + DD_INSTANCE_EMBEDDINGS}")


@dataclass
class DomainDiscoveryTask:
    """End-to-end domain discovery pipeline."""

    dataset: ColumnClusteringDataset
    config: DeepClusteringConfig | None = None

    def run(self, *, embedding: str, algorithm: str,
            seed: int | None = None) -> TaskResult:
        """Embed the columns and cluster them with one algorithm."""
        X = embed_columns(self.dataset, embedding, seed=seed)
        return evaluate_clustering(
            X, self.dataset.labels, algorithm=algorithm,
            dataset=self.dataset.name, task="domain_discovery",
            embedding=embedding, config=self.config, seed=seed)

    def run_matrix(self, *, embeddings: tuple[str, ...],
                   algorithms: tuple[str, ...],
                   seed: int | None = None) -> list[TaskResult]:
        """Run every embedding x algorithm combination (Tables 5-6)."""
        results: list[TaskResult] = []
        for embedding in embeddings:
            X = embed_columns(self.dataset, embedding, seed=seed)
            for algorithm in algorithms:
                results.append(evaluate_clustering(
                    X, self.dataset.labels, algorithm=algorithm,
                    dataset=self.dataset.name, task="domain_discovery",
                    embedding=embedding, config=self.config, seed=seed))
        return results
