"""Preprocessing phase of the experimental framework (Figure 2, left).

The paper removes "high-level syntactic errors" before embedding: empty or
constant columns, whitespace/case inconsistencies, placeholder null strings.
These helpers normalise the dataset containers in place-independent fashion
(returning new objects) so that every embedding method sees the same cleaned
input.
"""

from __future__ import annotations

from ..data.table import Column, Record, Table
from ..utils.text import normalize_text

__all__ = ["preprocess_tables", "preprocess_records", "preprocess_columns",
           "clean_value"]

_NULL_STRINGS = {"", "nan", "none", "null", "n/a", "na", "-", "unknown"}


def clean_value(value: object) -> object:
    """Map placeholder null strings to ``None`` and strip whitespace."""
    if value is None:
        return None
    text = str(value).strip()
    if text.lower() in _NULL_STRINGS:
        return None
    return text


def preprocess_tables(tables: list[Table]) -> list[Table]:
    """Clean every table: normalise values, drop fully empty columns."""
    cleaned: list[Table] = []
    for table in tables:
        columns: dict[str, list[object]] = {}
        for header, values in table.columns.items():
            cleaned_values = [clean_value(value) for value in values]
            if all(value is None for value in cleaned_values):
                continue
            columns[header] = cleaned_values
        if not columns:
            # Keep the table (schema inference needs every input row) but
            # with a placeholder column so downstream encoders see something.
            columns = {"empty": [None] * table.n_rows}
        cleaned.append(Table(name=table.name, columns=columns,
                             metadata=dict(table.metadata)))
    return cleaned


def preprocess_records(records: list[Record]) -> list[Record]:
    """Clean every record: normalise values, drop attributes that are null."""
    cleaned: list[Record] = []
    for record in records:
        values = {attribute: clean_value(value)
                  for attribute, value in record.values.items()}
        cleaned.append(Record(values=values, source=record.source,
                              identifier=record.identifier,
                              metadata=dict(record.metadata)))
    return cleaned


def preprocess_columns(columns: list[Column]) -> list[Column]:
    """Clean every column: normalise values and drop nulls from the cells."""
    cleaned: list[Column] = []
    for column in columns:
        values = [clean_value(value) for value in column.values]
        values = [value for value in values if value is not None]
        if not values:
            values = [normalize_text(column.header) or "empty"]
        cleaned.append(Column(header=column.header, values=values,
                              table_name=column.table_name,
                              metadata=dict(column.metadata)))
    return cleaned
