"""Data-integration tasks expressed as clustering pipelines.

Each task follows the three-phase framework of Figure 2: preprocessing,
embedding, clustering.  The pipelines accept the dataset containers from
:mod:`repro.data`, an embedding method name and a clustering algorithm name,
and return a :class:`repro.tasks.base.TaskResult` with the ARI/ACC metrics
the paper reports.
"""

from .base import (
    TaskResult,
    ClusteringTask,
    make_clusterer,
    evaluate_clustering,
    CLUSTERER_NAMES,
)
from .preprocessing import preprocess_tables, preprocess_records, preprocess_columns
from .schema_inference import (
    SchemaInferenceTask,
    embed_tables,
    SCHEMA_LEVEL_EMBEDDINGS,
    INSTANCE_LEVEL_EMBEDDINGS,
)
from .entity_resolution import EntityResolutionTask, embed_records, ER_EMBEDDINGS
from .domain_discovery import (
    DomainDiscoveryTask,
    embed_columns,
    DD_SCHEMA_EMBEDDINGS,
    DD_INSTANCE_EMBEDDINGS,
)

__all__ = [
    "TaskResult",
    "ClusteringTask",
    "make_clusterer",
    "evaluate_clustering",
    "CLUSTERER_NAMES",
    "preprocess_tables",
    "preprocess_records",
    "preprocess_columns",
    "SchemaInferenceTask",
    "embed_tables",
    "SCHEMA_LEVEL_EMBEDDINGS",
    "INSTANCE_LEVEL_EMBEDDINGS",
    "EntityResolutionTask",
    "embed_records",
    "ER_EMBEDDINGS",
    "DomainDiscoveryTask",
    "embed_columns",
    "DD_SCHEMA_EMBEDDINGS",
    "DD_INSTANCE_EMBEDDINGS",
]
