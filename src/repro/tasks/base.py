"""Shared task plumbing: clusterer factory, evaluation, result container."""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..clustering import DBSCAN, Birch, KMeans, relabel_noise_as_singletons
from ..clustering.base import ClusteringResult
from ..config import DeepClusteringConfig
from ..dc import EDESC, SDCN, SHGP, AutoencoderClustering
from ..exceptions import ConfigurationError
from ..metrics import adjusted_rand_index, clustering_accuracy
from ..serialize import save_checkpoint
from ..utils.timing import Timer

__all__ = ["TaskResult", "ClusteringTask", "make_clusterer",
           "evaluate_clustering", "CLUSTERER_NAMES"]

#: Algorithm names accepted by :func:`make_clusterer`.  ``"sdcn"``/``"ae"``
#: correspond to the SDCN/AE rows of the paper's tables; the silhouette rule
#: inside SDCN decides between the two automatically when ``"sdcn"`` is used.
CLUSTERER_NAMES = ("sdcn", "ae", "ae_kmeans", "edesc", "shgp",
                   "kmeans", "birch", "dbscan")

#: The deep clustering methods (for reporting convenience).
DC_ALGORITHMS = ("sdcn", "ae", "ae_kmeans", "edesc", "shgp")
#: The standard clustering baselines.
SC_ALGORITHMS = ("kmeans", "birch", "dbscan")


@dataclass
class TaskResult:
    """One cell group of a result table: algorithm x embedding x dataset."""

    dataset: str
    task: str
    embedding: str
    algorithm: str
    n_clusters_true: int
    n_clusters_predicted: int
    ari: float
    acc: float
    runtime_seconds: float
    clustering: ClusteringResult | None = field(default=None, repr=False)

    def as_row(self) -> dict[str, object]:
        """Row dictionary matching the layout of the paper's tables."""
        return {
            "Dataset": self.dataset,
            "Task": self.task,
            "Embedding": self.embedding,
            "Algorithm": self.algorithm,
            "K": self.n_clusters_predicted,
            "ARI": round(self.ari, 3),
            "ACC": round(self.acc, 3),
            "runtime_s": round(self.runtime_seconds, 3),
        }


class ClusteringTask:
    """Shared plan/execute plumbing for the three task pipelines.

    Subclasses are dataclasses with ``dataset`` and ``config`` fields plus a
    ``task_name`` class attribute, and implement :meth:`embed`.  ``run``
    executes one cell (embed + cluster + score) and ``run_matrix`` executes
    a whole embedding x algorithm matrix serially.  Because the embedding
    step goes through the process-wide :mod:`repro.cache`, running the
    matrix cell-by-cell costs each embedding exactly once — which is what
    lets :class:`repro.experiments.parallel.ParallelRunner` schedule the
    same cells concurrently without duplicated work.
    """

    task_name = ""

    #: Field overrides (e.g. ``{"graph": "sparse"}``) applied *on top of*
    #: the task's resolved config, so task-specific defaults (entity
    #: resolution's longer pre-training) survive a partial override.
    config_updates: dict | None = None

    #: When set, every executed cell persists its fitted model as an NPZ
    #: checkpoint ``<task>__<dataset>__<embedding>__<algorithm>.npz`` in
    #: this directory (see :mod:`repro.serialize`), ready for
    #: ``repro serve``.
    save_dir: Path | None = None

    def embed(self, method: str, *, seed: int | None = None) -> np.ndarray:
        """Return the embedding matrix for ``method`` (cached)."""
        raise NotImplementedError

    def task_config(self) -> DeepClusteringConfig | None:
        """The deep clustering config used for this task's cells."""
        return self.config

    def resolved_config(self) -> DeepClusteringConfig | None:
        """Task config with any :attr:`config_updates` layered on top."""
        config = self.task_config()
        updates = self.config_updates
        if updates:
            config = (config or DeepClusteringConfig()).with_updates(**updates)
        return config

    def run(self, *, embedding: str, algorithm: str,
            seed: int | None = None) -> TaskResult:
        """Execute one cell: embed the dataset and cluster it once."""
        X = self.embed(embedding, seed=seed)
        save_path = None
        if self.save_dir is not None:
            # Sanitise each component so the file stem is a valid serving
            # model name (dataset names like "web tables" contain spaces,
            # which the HTTP predict route does not accept).
            parts = (self.task_name, self.dataset.name, embedding, algorithm)
            stem = "__".join(re.sub(r"[^A-Za-z0-9._-]+", "-", part)
                             for part in parts)
            save_path = Path(self.save_dir) / f"{stem}.npz"
        return evaluate_clustering(
            X, self.dataset.labels, algorithm=algorithm,
            dataset=self.dataset.name, task=self.task_name,
            embedding=embedding, config=self.resolved_config(), seed=seed,
            save_path=save_path)

    def run_matrix(self, *, embeddings: tuple[str, ...],
                   algorithms: tuple[str, ...],
                   seed: int | None = None) -> list[TaskResult]:
        """Run every embedding x algorithm combination (one paper table)."""
        return [self.run(embedding=embedding, algorithm=algorithm, seed=seed)
                for embedding in embeddings for algorithm in algorithms]


def make_clusterer(name: str, n_clusters: int, *,
                   config: DeepClusteringConfig | None = None,
                   seed: int | None = None):
    """Instantiate a clusterer by its table name.

    ``n_clusters`` is the ground-truth K.  SC methods receive it directly
    (the "unfair advantage" the paper notes); DC methods use it only to
    initialise their centres.
    """
    name = name.lower()
    if name not in CLUSTERER_NAMES:
        raise ConfigurationError(
            f"unknown clustering algorithm {name!r}; expected one of {CLUSTERER_NAMES}")
    config = config or DeepClusteringConfig()
    if seed is not None:
        config = config.with_updates(seed=seed)
    if name == "sdcn":
        return SDCN(n_clusters, config=config)
    if name == "ae":
        return AutoencoderClustering(n_clusters, clusterer="birch", config=config)
    if name == "ae_kmeans":
        return AutoencoderClustering(n_clusters, clusterer="kmeans", config=config)
    if name == "edesc":
        # Section 4.2: the EDESC latent size is n_clusters * subspace_dim;
        # keep the product bounded so very large K stays tractable.
        subspace_dim = 5 if n_clusters <= 100 else 2
        return EDESC(n_clusters, subspace_dim=subspace_dim, config=config)
    if name == "shgp":
        return SHGP(n_clusters, config=config)
    if name == "kmeans":
        return KMeans(n_clusters, seed=config.seed)
    if name == "birch":
        return Birch(n_clusters, seed=config.seed)
    return DBSCAN(min_samples=max(2, min(n_clusters, 10)))


def evaluate_clustering(X: np.ndarray, labels_true: np.ndarray, *,
                        algorithm: str, dataset: str, task: str,
                        embedding: str,
                        config: DeepClusteringConfig | None = None,
                        seed: int | None = None,
                        save_path: str | Path | None = None) -> TaskResult:
    """Run one clusterer on an embedding matrix and score it against GT.

    With ``save_path`` set, the fitted model is additionally persisted as an
    NPZ checkpoint (:mod:`repro.serialize`) whose metadata records the full
    training context — task, dataset, embedding, metrics — which is what the
    serving layer needs to embed and assign raw items later.
    """
    labels_true = np.asarray(labels_true, dtype=np.int64)
    n_clusters = int(np.unique(labels_true).size)
    clusterer = make_clusterer(algorithm, n_clusters, config=config, seed=seed)

    timer = Timer()
    with timer:
        result = clusterer.fit_predict(X)
    predicted = relabel_noise_as_singletons(result.labels)

    task_result = TaskResult(
        dataset=dataset,
        task=task,
        embedding=embedding,
        algorithm=algorithm,
        n_clusters_true=n_clusters,
        n_clusters_predicted=result.n_clusters,
        ari=adjusted_rand_index(labels_true, predicted),
        acc=clustering_accuracy(labels_true, predicted),
        runtime_seconds=timer.elapsed,
        clustering=result,
    )
    if save_path is not None:
        save_checkpoint(save_path, clusterer, metadata={
            "task": task,
            "dataset": dataset,
            "embedding": embedding,
            "algorithm": algorithm,
            "seed": seed,
            "n_items": int(X.shape[0]),
            "n_features": int(X.shape[1]),
            "n_clusters_true": n_clusters,
            "n_clusters_predicted": result.n_clusters,
            "ari": round(task_result.ari, 6),
            "acc": round(task_result.acc, 6),
        })
    return task_result
