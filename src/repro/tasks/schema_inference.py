"""Schema inference as table clustering (Section 5).

Given a set of tables, identify the subsets that can share a common schema.
Schema-level evidence represents each table by its concatenated attribute
names, embedded with a sentence (SBERT) or word (FastText) encoder;
schema+instance-level evidence uses tabular encoders (TabNet,
TabTransformer) whose variable-sized outputs are normalised by interpolation
(Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cache import embedding_cache_key, get_cache
from ..config import DeepClusteringConfig
from ..data.table import TableClusteringDataset
from ..embeddings import (
    FastTextEncoder,
    SBERTEncoder,
    TabNetEncoder,
    TabTransformerEncoder,
    normalize_dimensions,
)
from ..exceptions import ConfigurationError
from .base import ClusteringTask
from .preprocessing import preprocess_tables

__all__ = ["SchemaInferenceTask", "embed_tables",
           "SCHEMA_LEVEL_EMBEDDINGS", "INSTANCE_LEVEL_EMBEDDINGS"]

#: Embeddings usable with schema-level (header-only) evidence.
SCHEMA_LEVEL_EMBEDDINGS = ("sbert", "fasttext")
#: Embeddings usable with schema+instance-level evidence.
INSTANCE_LEVEL_EMBEDDINGS = ("tabnet", "tabtransformer")


def embed_tables(dataset: TableClusteringDataset, method: str, *,
                 seed: int | None = None) -> np.ndarray:
    """Embed every table of ``dataset`` with the requested method.

    Results are memoised in the process-wide :mod:`repro.cache` keyed by the
    dataset content, the method and the seed, so repeated calls (e.g. one
    per clustering algorithm of a table) compute the embedding only once.
    """
    key = embedding_cache_key("tables", dataset, method.lower(), seed)
    return get_cache().get_or_compute(
        key, lambda: _embed_tables(dataset, method, seed=seed))


def _embed_tables(dataset: TableClusteringDataset, method: str, *,
                  seed: int | None = None) -> np.ndarray:
    method = method.lower()
    tables = preprocess_tables(dataset.tables)
    if method == "sbert":
        encoder = SBERTEncoder()
        return encoder.encode_texts([table.header_text() for table in tables])
    if method == "fasttext":
        encoder = FastTextEncoder()
        return encoder.encode_texts([table.header_text() for table in tables])
    if method == "tabnet":
        encoder = TabNetEncoder()
        return normalize_dimensions(encoder.encode_tables(tables))
    if method == "tabtransformer":
        encoder = TabTransformerEncoder()
        return normalize_dimensions(encoder.encode_tables(tables),
                                    drop_last=True)
    raise ConfigurationError(
        f"unknown table embedding {method!r}; expected one of "
        f"{SCHEMA_LEVEL_EMBEDDINGS + INSTANCE_LEVEL_EMBEDDINGS}")


@dataclass
class SchemaInferenceTask(ClusteringTask):
    """End-to-end schema inference pipeline."""

    dataset: TableClusteringDataset
    config: DeepClusteringConfig | None = None

    task_name = "schema_inference"

    def embed(self, method: str, *, seed: int | None = None) -> np.ndarray:
        return embed_tables(self.dataset, method, seed=seed)
