"""Schema inference as table clustering (Section 5).

Given a set of tables, identify the subsets that can share a common schema.
Schema-level evidence represents each table by its concatenated attribute
names, embedded with a sentence (SBERT) or word (FastText) encoder;
schema+instance-level evidence uses tabular encoders (TabNet,
TabTransformer) whose variable-sized outputs are normalised by interpolation
(Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import DeepClusteringConfig
from ..data.table import TableClusteringDataset
from ..embeddings import (
    FastTextEncoder,
    SBERTEncoder,
    TabNetEncoder,
    TabTransformerEncoder,
    normalize_dimensions,
)
from ..exceptions import ConfigurationError
from .base import TaskResult, evaluate_clustering
from .preprocessing import preprocess_tables

__all__ = ["SchemaInferenceTask", "embed_tables",
           "SCHEMA_LEVEL_EMBEDDINGS", "INSTANCE_LEVEL_EMBEDDINGS"]

#: Embeddings usable with schema-level (header-only) evidence.
SCHEMA_LEVEL_EMBEDDINGS = ("sbert", "fasttext")
#: Embeddings usable with schema+instance-level evidence.
INSTANCE_LEVEL_EMBEDDINGS = ("tabnet", "tabtransformer")


def embed_tables(dataset: TableClusteringDataset, method: str, *,
                 seed: int | None = None) -> np.ndarray:
    """Embed every table of ``dataset`` with the requested method."""
    method = method.lower()
    tables = preprocess_tables(dataset.tables)
    if method == "sbert":
        encoder = SBERTEncoder()
        return encoder.encode_texts([table.header_text() for table in tables])
    if method == "fasttext":
        encoder = FastTextEncoder()
        return encoder.encode_texts([table.header_text() for table in tables])
    if method == "tabnet":
        encoder = TabNetEncoder()
        return normalize_dimensions(encoder.encode_tables(tables))
    if method == "tabtransformer":
        encoder = TabTransformerEncoder()
        return normalize_dimensions(encoder.encode_tables(tables),
                                    drop_last=True)
    raise ConfigurationError(
        f"unknown table embedding {method!r}; expected one of "
        f"{SCHEMA_LEVEL_EMBEDDINGS + INSTANCE_LEVEL_EMBEDDINGS}")


@dataclass
class SchemaInferenceTask:
    """End-to-end schema inference pipeline."""

    dataset: TableClusteringDataset
    config: DeepClusteringConfig | None = None

    def run(self, *, embedding: str, algorithm: str,
            seed: int | None = None) -> TaskResult:
        """Embed the tables and cluster them with one algorithm."""
        X = embed_tables(self.dataset, embedding, seed=seed)
        return evaluate_clustering(
            X, self.dataset.labels, algorithm=algorithm,
            dataset=self.dataset.name, task="schema_inference",
            embedding=embedding, config=self.config, seed=seed)

    def run_matrix(self, *, embeddings: tuple[str, ...],
                   algorithms: tuple[str, ...],
                   seed: int | None = None) -> list[TaskResult]:
        """Run every embedding x algorithm combination (one paper table)."""
        results: list[TaskResult] = []
        for embedding in embeddings:
            X = embed_tables(self.dataset, embedding, seed=seed)
            for algorithm in algorithms:
                results.append(evaluate_clustering(
                    X, self.dataset.labels, algorithm=algorithm,
                    dataset=self.dataset.name, task="schema_inference",
                    embedding=embedding, config=self.config, seed=seed))
        return results
