"""Entity resolution as record clustering (Section 6).

Given a set of records, identify the subsets that refer to the same
real-world entity.  Schema-level information is ignored (all records of the
MusicBrainz-style data share the same attributes); the paper compares two
row representations: EmbDi embeddings of the tuple nodes (``idx_`` prefix)
and SBERT embeddings of the attribute-value rendering of each row.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cache import embedding_cache_key, get_cache
from ..config import DeepClusteringConfig
from ..data.table import RecordClusteringDataset
from ..embeddings import EmbDiEmbedder, SBERTEncoder
from ..exceptions import ConfigurationError
from .base import ClusteringTask
from .preprocessing import preprocess_records

__all__ = ["EntityResolutionTask", "embed_records", "ER_EMBEDDINGS"]

#: Row representations evaluated in Table 4.
ER_EMBEDDINGS = ("embdi", "sbert")


def embed_records(dataset: RecordClusteringDataset, method: str, *,
                  seed: int | None = None,
                  embdi_dim: int = 64) -> np.ndarray:
    """Embed every record of ``dataset`` with the requested method.

    Results are memoised in the process-wide :mod:`repro.cache`; see
    :func:`repro.tasks.embed_tables` for the caching contract.
    """
    key = embedding_cache_key("records", dataset, method.lower(), seed,
                              embdi_dim=embdi_dim)
    return get_cache().get_or_compute(
        key, lambda: _embed_records(dataset, method, seed=seed,
                                    embdi_dim=embdi_dim))


def _embed_records(dataset: RecordClusteringDataset, method: str, *,
                   seed: int | None = None,
                   embdi_dim: int = 64) -> np.ndarray:
    method = method.lower()
    records = preprocess_records(dataset.records)
    if method == "sbert":
        encoder = SBERTEncoder()
        return encoder.encode_texts([record.text() for record in records])
    if method == "embdi":
        embedder = EmbDiEmbedder(dim=embdi_dim, seed=seed)
        return embedder.embed_records(records)
    raise ConfigurationError(
        f"unknown record embedding {method!r}; expected one of {ER_EMBEDDINGS}")


@dataclass
class EntityResolutionTask(ClusteringTask):
    """End-to-end entity resolution pipeline."""

    dataset: RecordClusteringDataset
    config: DeepClusteringConfig | None = None

    task_name = "entity_resolution"

    def embed(self, method: str, *, seed: int | None = None) -> np.ndarray:
        return embed_records(self.dataset, method, seed=seed)

    def task_config(self) -> DeepClusteringConfig:
        """Entity resolution uses longer pre-training (Section 4.2)."""
        config = self.config or DeepClusteringConfig()
        if config.pretrain_epochs < 100 and self.config is None:
            config = config.with_updates(pretrain_epochs=100)
        return config
