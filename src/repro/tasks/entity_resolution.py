"""Entity resolution as record clustering (Section 6).

Given a set of records, identify the subsets that refer to the same
real-world entity.  Schema-level information is ignored (all records of the
MusicBrainz-style data share the same attributes); the paper compares two
row representations: EmbDi embeddings of the tuple nodes (``idx_`` prefix)
and SBERT embeddings of the attribute-value rendering of each row.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import DeepClusteringConfig
from ..data.table import RecordClusteringDataset
from ..embeddings import EmbDiEmbedder, SBERTEncoder
from ..exceptions import ConfigurationError
from .base import TaskResult, evaluate_clustering
from .preprocessing import preprocess_records

__all__ = ["EntityResolutionTask", "embed_records", "ER_EMBEDDINGS"]

#: Row representations evaluated in Table 4.
ER_EMBEDDINGS = ("embdi", "sbert")


def embed_records(dataset: RecordClusteringDataset, method: str, *,
                  seed: int | None = None,
                  embdi_dim: int = 64) -> np.ndarray:
    """Embed every record of ``dataset`` with the requested method."""
    method = method.lower()
    records = preprocess_records(dataset.records)
    if method == "sbert":
        encoder = SBERTEncoder()
        return encoder.encode_texts([record.text() for record in records])
    if method == "embdi":
        embedder = EmbDiEmbedder(dim=embdi_dim, seed=seed)
        return embedder.embed_records(records)
    raise ConfigurationError(
        f"unknown record embedding {method!r}; expected one of {ER_EMBEDDINGS}")


@dataclass
class EntityResolutionTask:
    """End-to-end entity resolution pipeline."""

    dataset: RecordClusteringDataset
    config: DeepClusteringConfig | None = None

    def run(self, *, embedding: str, algorithm: str,
            seed: int | None = None) -> TaskResult:
        """Embed the records and cluster them with one algorithm."""
        X = embed_records(self.dataset, embedding, seed=seed)
        return evaluate_clustering(
            X, self.dataset.labels, algorithm=algorithm,
            dataset=self.dataset.name, task="entity_resolution",
            embedding=embedding, config=self._config_for_er(), seed=seed)

    def run_matrix(self, *, embeddings: tuple[str, ...],
                   algorithms: tuple[str, ...],
                   seed: int | None = None) -> list[TaskResult]:
        """Run every embedding x algorithm combination (Table 4)."""
        results: list[TaskResult] = []
        for embedding in embeddings:
            X = embed_records(self.dataset, embedding, seed=seed)
            for algorithm in algorithms:
                results.append(evaluate_clustering(
                    X, self.dataset.labels, algorithm=algorithm,
                    dataset=self.dataset.name, task="entity_resolution",
                    embedding=embedding, config=self._config_for_er(),
                    seed=seed))
        return results

    def _config_for_er(self) -> DeepClusteringConfig:
        """Entity resolution uses longer pre-training (Section 4.2)."""
        config = self.config or DeepClusteringConfig()
        if config.pretrain_epochs < 100 and self.config is None:
            config = config.with_updates(pretrain_epochs=100)
        return config
