"""Wire format of one write-ahead-log record: length-prefixed, CRC-checked.

A record is one ingestion batch, encoded as::

    +--------+------------+-------------+-------+-------------+---------+
    | magic  | header_len | payload_len | crc32 | header JSON | payload |
    | 4 B    | u32        | u64         | u32   | variable    | arrays  |
    +--------+------------+-------------+-------+-------------+---------+

All preamble integers are little-endian (``<4sIQI``, 20 bytes).  The
header JSON carries the monotonic ``batch_id``, the record ``kind``,
free-form ``meta`` (replay parameters: seed, epochs, ...) and one entry
per payload array — name, dtype string, shape and byte extent — so the
payload is the plain concatenation of the arrays' raw buffers and
round-trips **bit-identically** (same guarantee as the NPZ checkpoints).
The CRC32 covers header JSON + payload; any torn write or byte flip is
detected before a single array byte is handed to a model.

Decoding is defensive: a bad magic, an implausible length, a body that
runs past the file, a CRC mismatch or malformed JSON all raise
:class:`WALCorruption` carrying the byte offset of the *last good record
boundary* — the truncation point recovery and ``repro repair`` use.
"""

from __future__ import annotations

import io
import json
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import BinaryIO, Iterator

import numpy as np

from ..exceptions import WALError

__all__ = [
    "MAX_HEADER_BYTES",
    "MAX_PAYLOAD_BYTES",
    "WAL_MAGIC",
    "WALCorruption",
    "WALRecord",
    "decode_record",
    "encode_record",
    "iter_records",
    "scan_records",
]

#: Identifies the start of a WAL record (vs arbitrary bytes).
WAL_MAGIC = b"RWA1"
#: Preamble layout: magic, header length, payload length, CRC32 of the body.
_PREAMBLE = struct.Struct("<4sIQI")
#: Sanity ceiling on the header JSON; anything larger is corruption.
MAX_HEADER_BYTES = 16 * 2**20
#: Sanity ceiling on one record's payload; anything larger is corruption.
MAX_PAYLOAD_BYTES = 4 * 2**30


class WALCorruption(WALError):
    """A journal byte stream stopped being a valid record sequence.

    ``offset`` is the position of the last *good* record boundary — every
    byte before it decoded cleanly, everything from it on is suspect.
    Truncating the file at ``offset`` restores a valid (prefix) journal.
    """

    def __init__(self, message: str, *, offset: int) -> None:
        super().__init__(f"{message} (last good record boundary: "
                         f"byte {offset})")
        self.offset = int(offset)


@dataclass
class WALRecord:
    """One journaled ingestion batch: id, payload arrays, replay context."""

    batch_id: int
    arrays: dict[str, np.ndarray]
    meta: dict = field(default_factory=dict)
    kind: str = "batch"


def encode_record(record: WALRecord) -> bytes:
    """Serialise ``record`` to its on-disk bytes (see the module format)."""
    if record.batch_id < 1:
        raise WALError(f"batch_id must be >= 1, got {record.batch_id}")
    entries = []
    chunks = []
    offset = 0
    for name, value in record.arrays.items():
        # np.ascontiguousarray promotes 0-d to 1-d; only call it when the
        # layout actually needs fixing so scalar arrays round-trip 0-d.
        array = np.asarray(value)
        if not array.flags["C_CONTIGUOUS"]:
            array = np.ascontiguousarray(array)
        if array.dtype.hasobject:
            raise WALError(
                f"WAL array {name!r} has dtype=object; records store "
                "numeric/bytes arrays only")
        raw = array.tobytes()
        entries.append({"name": str(name), "dtype": array.dtype.str,
                        "shape": list(array.shape),
                        "offset": offset, "nbytes": len(raw)})
        chunks.append(raw)
        offset += len(raw)
    header = {"batch_id": int(record.batch_id), "kind": str(record.kind),
              "meta": record.meta, "arrays": entries}
    try:
        header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    except TypeError as exc:
        raise WALError(f"WAL record meta must be JSON-able: {exc}") from exc
    payload = b"".join(chunks)
    if len(header_bytes) > MAX_HEADER_BYTES:
        raise WALError("WAL record header exceeds the format ceiling")
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise WALError("WAL record payload exceeds the format ceiling")
    crc = zlib.crc32(header_bytes + payload) & 0xFFFFFFFF
    return (_PREAMBLE.pack(WAL_MAGIC, len(header_bytes), len(payload), crc)
            + header_bytes + payload)


def _parse_body(header_bytes: bytes, payload: bytes,
                offset: int) -> WALRecord:
    """Decode a CRC-validated body; malformed content is still corruption."""
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WALCorruption(f"record header is not valid JSON: {exc}",
                            offset=offset) from exc
    if not isinstance(header, dict) or "batch_id" not in header \
            or not isinstance(header.get("arrays"), list):
        raise WALCorruption("record header is incomplete", offset=offset)
    arrays: dict[str, np.ndarray] = {}
    for entry in header["arrays"]:
        try:
            name = entry["name"]
            dtype = np.dtype(entry["dtype"])
            shape = tuple(int(dim) for dim in entry["shape"])
            start = int(entry["offset"])
            nbytes = int(entry["nbytes"])
        except (KeyError, TypeError, ValueError) as exc:
            raise WALCorruption(f"record array entry is malformed: {exc}",
                                offset=offset) from exc
        if any(dim < 0 for dim in shape) or nbytes < 0 or start < 0:
            raise WALCorruption(
                f"record array {name!r} has a negative extent",
                offset=offset)
        expected = int(dtype.itemsize * int(np.prod(shape, dtype=np.int64)))
        if nbytes != expected or start + nbytes > len(payload):
            raise WALCorruption(
                f"record array {name!r} extent is inconsistent",
                offset=offset)
        count = expected // dtype.itemsize if dtype.itemsize else 0
        try:
            array = np.frombuffer(payload, dtype=dtype, count=count,
                                  offset=start).reshape(shape)
        except ValueError as exc:
            # A CRC-valid record from a buggy writer must still fail the
            # decode contract cleanly, never escape as a bare ValueError.
            raise WALCorruption(
                f"record array {name!r} does not decode: {exc}",
                offset=offset) from exc
        arrays[name] = array.copy()  # writable, detached from the buffer
    return WALRecord(batch_id=int(header["batch_id"]), arrays=arrays,
                     meta=header.get("meta") or {},
                     kind=str(header.get("kind", "batch")))


def _read_one(handle: BinaryIO, offset: int,
              file_size: int | None) -> WALRecord | None:
    """Read the record starting at ``offset``; ``None`` at clean EOF."""
    preamble = handle.read(_PREAMBLE.size)
    if not preamble:
        return None
    if len(preamble) < _PREAMBLE.size:
        raise WALCorruption("truncated record preamble", offset=offset)
    magic, header_len, payload_len, crc = _PREAMBLE.unpack(preamble)
    if magic != WAL_MAGIC:
        raise WALCorruption(f"bad record magic {magic!r}", offset=offset)
    if header_len > MAX_HEADER_BYTES or payload_len > MAX_PAYLOAD_BYTES:
        raise WALCorruption("implausible record length", offset=offset)
    body_len = header_len + payload_len
    if file_size is not None and offset + _PREAMBLE.size + body_len > file_size:
        raise WALCorruption("record body runs past end of file",
                            offset=offset)
    body = handle.read(body_len)
    if len(body) < body_len:
        raise WALCorruption("truncated record body", offset=offset)
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise WALCorruption("record CRC mismatch", offset=offset)
    return _parse_body(body[:header_len], body[header_len:], offset)


def scan_records(source: str | Path | bytes) -> Iterator[tuple[int, WALRecord]]:
    """Yield ``(offset, record)`` for every valid record, front to back.

    Raises :class:`WALCorruption` at the first byte that is not part of a
    valid record; the exception's ``offset`` is where a truncation would
    restore validity.  A clean EOF ends the iteration normally.
    """
    if isinstance(source, (str, Path)):
        path = Path(source)
        file_size = path.stat().st_size
        handle: BinaryIO = path.open("rb")
        close = True
    else:
        handle = io.BytesIO(source)
        file_size = len(source)
        close = False
    try:
        offset = 0
        while True:
            record = _read_one(handle, offset, file_size)
            if record is None:
                return
            yield offset, record
            offset = handle.tell()
    finally:
        if close:
            handle.close()


def decode_record(data: bytes) -> WALRecord:
    """Decode exactly one record from ``data`` (must contain no extra bytes)."""
    records = list(scan_records(data))
    if len(records) != 1:
        raise WALError(f"expected exactly one record, found {len(records)}")
    return records[0][1]


def iter_records(source: str | Path | bytes, *,
                 on_corruption: str = "raise"
                 ) -> Iterator[tuple[int, WALRecord]]:
    """Like :func:`scan_records`, with a policy for corrupt tails.

    ``on_corruption="raise"`` propagates :class:`WALCorruption` (strict
    readers); ``"stop"`` ends the iteration at the last good record —
    replay-after-crash semantics: a torn tail yields a strict prefix,
    never a wrong array.
    """
    if on_corruption not in ("raise", "stop"):
        raise WALError(f"unknown on_corruption policy {on_corruption!r}")
    iterator = scan_records(source)
    while True:
        try:
            yield next(iterator)
        except StopIteration:
            return
        except WALCorruption:
            if on_corruption == "raise":
                raise
            return
