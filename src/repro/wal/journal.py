"""Append-only, fsync'd, segmented write-ahead journal of ingestion batches.

One :class:`WriteAheadLog` owns one *namespace directory* — by convention
``<wal_dir>/<model>/<stream>.wal/`` (see :func:`wal_namespace`), so many
streams can feed many models under one server without sharing files.  The
directory holds segment files::

    <namespace>/segment-0000000000000001.wal
    <namespace>/segment-0000000000000007.wal      # first batch id per segment
    ...

Records (:mod:`repro.wal.record`) carry monotonic batch ids starting at 1;
a segment is named after the first batch id it contains, so the journal
can prune whole segments without scanning them: a segment is obsolete as
soon as a later segment exists and every id it could contain has been
applied (stamped into checkpoint metadata by the durable ingestion path).

Durability discipline:

* :meth:`WriteAheadLog.append` writes the encoded record, flushes and
  ``fsync``\\ s before returning — a returned batch id is on stable
  storage;
* opening a journal *heals the torn tail*: a crash mid-append leaves a
  partial record at the end of the last segment, which is truncated away
  (the batch was never acknowledged, so dropping it is correct);
* :meth:`WriteAheadLog.maybe_rotate` seals the current segment once it
  grows past a size threshold (:data:`DEFAULT_SEGMENT_BYTES`) — steady
  state pays one fsync per append, no per-batch file churn — while
  :meth:`WriteAheadLog.rotate_segment` seals unconditionally (recovery
  and single-shot ``repro update`` use it so their segments become
  immediately prunable); :meth:`WriteAheadLog.prune` drops sealed
  segments made obsolete by the applied watermark stamped into
  checkpoint metadata.
"""

from __future__ import annotations

import os
import re
import time
from pathlib import Path
from typing import Iterator

import numpy as np

from ..exceptions import WALError
from ..obs.logging import get_logger
from ..obs.metrics import get_registry, obs_enabled
from ..obs.trace import record_span
from ..serialize import fsync_directory
from .record import WALCorruption, WALRecord, encode_record, scan_records

__all__ = ["DEFAULT_SEGMENT_BYTES", "WriteAheadLog", "replay_wal",
           "wal_namespace"]

#: Size threshold at which :meth:`WriteAheadLog.maybe_rotate` seals the
#: current segment.  Large enough that steady-state ingestion pays one
#: fsync per append (no per-batch file creation), small enough that
#: pruning reclaims space promptly.
DEFAULT_SEGMENT_BYTES = 4 * 2**20

#: Segment file layout: ``segment-<first batch id, 16 digits>.wal``.
_SEGMENT_RE = re.compile(r"^segment-(\d{16})\.wal$")

#: Namespace components (model and stream names) the journal accepts: the
#: same shape the serving registry accepts for model names.
_VALID_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

_LOG = get_logger("wal")


def wal_namespace(wal_dir: str | Path, model: str,
                  stream: str = "stream") -> Path:
    """Namespace directory for one (model, stream) pair: ``model/stream.wal``.

    Validates both components so a hostile or mangled name can never
    escape ``wal_dir`` or collide with another namespace.
    """
    for part, label in ((model, "model"), (stream, "stream")):
        if not _VALID_NAME.match(part):
            raise WALError(f"invalid WAL {label} name {part!r}")
    return Path(wal_dir) / model / f"{stream}.wal"


def _segment_first_id(path: Path) -> int:
    match = _SEGMENT_RE.match(path.name)
    if match is None:  # pragma: no cover - guarded by the globs below
        raise WALError(f"not a WAL segment file: {path}")
    return int(match.group(1))


class WriteAheadLog:
    """One stream's append-only journal in a namespace directory.

    Not thread-safe by design: one stream has one writer (the ingestion
    loop), which is the whole point of per-stream namespaces.
    """

    def __init__(self, directory: str | Path, *, fsync: bool = True) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = bool(fsync)
        self._handle = None
        self._force_new_segment = False
        #: Bytes removed from the last segment's torn tail at open time.
        self.truncated_bytes_ = 0
        self.last_batch_id = self._establish_tail()

    # ------------------------------------------------------------------
    def segments(self) -> list[Path]:
        """Segment files of this namespace, oldest first."""
        return sorted(path for path in self.directory.glob("segment-*.wal")
                      if _SEGMENT_RE.match(path.name))

    @property
    def current_segment(self) -> Path | None:
        """The newest segment file (``None`` before the first append)."""
        segments = self.segments()
        return segments[-1] if segments else None

    def _establish_tail(self) -> int:
        """Heal the last segment's torn tail; return the last durable id."""
        segments = self.segments()
        for path in reversed(segments):
            last_id = 0
            try:
                for _, record in scan_records(path):
                    last_id = record.batch_id
            except WALCorruption as exc:
                # Crash mid-append: keep the good prefix, drop the tail.
                # Only the *last* segment can legitimately be torn, but a
                # truncated earlier segment is healed the same way — the
                # records it lost were never acknowledged either.
                size = path.stat().st_size
                self.truncated_bytes_ += size - exc.offset
                with path.open("r+b") as handle:
                    handle.truncate(exc.offset)
                    handle.flush()
                    os.fsync(handle.fileno())
                fsync_directory(self.directory)
                _LOG.warning("torn_tail_healed", segment=path.name,
                             truncated_bytes=size - exc.offset)
                get_registry().counter(
                    "repro_wal_torn_tails_total",
                    "Torn WAL segment tails healed at open").inc()
            if last_id:
                return last_id
            # Segment empty (or emptied by healing): its name still records
            # where numbering stood when it was created.
            if path is segments[-1] and _segment_first_id(path) > 1:
                return _segment_first_id(path) - 1
        return 0

    # ------------------------------------------------------------------
    def append(self, arrays: dict[str, np.ndarray], *, meta: dict | None = None,
               kind: str = "batch") -> int:
        """Journal one batch; returns its id once it is on stable storage."""
        instrumented = obs_enabled()
        started = time.perf_counter() if instrumented else 0.0
        batch_id = self.last_batch_id + 1
        data = encode_record(WALRecord(batch_id=batch_id, arrays=dict(arrays),
                                       meta=dict(meta or {}), kind=kind))
        handle = self._writable_handle(batch_id)
        handle.write(data)
        handle.flush()
        if self.fsync:
            fsync_started = time.perf_counter() if instrumented else 0.0
            os.fsync(handle.fileno())
            if instrumented:
                self._metrics()[1].observe(
                    time.perf_counter() - fsync_started)
        self.last_batch_id = batch_id
        if instrumented:
            append_seconds, _, appends, append_bytes = self._metrics()
            append_seconds.observe(time.perf_counter() - started)
            appends.inc()
            append_bytes.inc(len(data))
            record_span("wal.append", started, time.perf_counter(),
                        batch_id=batch_id, bytes=len(data))
        return batch_id

    def _metrics(self):
        """(append histogram, fsync histogram, appends, bytes) handles."""
        handles = getattr(self, "_m_handles", None)
        if handles is None:
            registry = get_registry()
            handles = (
                registry.histogram(
                    "repro_wal_append_seconds",
                    "WAL append latency (encode + write + fsync)"),
                registry.histogram(
                    "repro_wal_fsync_seconds",
                    "fsync portion of WAL append latency"),
                registry.counter("repro_wal_appends_total",
                                 "Batches journaled"),
                registry.counter("repro_wal_append_bytes_total",
                                 "Encoded bytes journaled"),
            )
            self._m_handles = handles
        return handles

    def _writable_handle(self, next_id: int):
        if self._handle is not None and not self._handle.closed:
            return self._handle
        segments = self.segments()
        if segments and not self._force_new_segment:
            path = segments[-1]
        else:
            path = self.directory / f"segment-{next_id:016d}.wal"
        created = not path.exists()
        self._handle = path.open("ab")
        self._force_new_segment = False
        if created:
            # The segment file's *name* must survive a crash too.
            fsync_directory(self.directory)
        return self._handle

    def rotate_segment(self) -> None:
        """Seal the current segment; the next append starts a new one.

        Sealed segments become prunable once their ids fall behind the
        applied watermark.  Idempotent.
        """
        self.close()
        self._force_new_segment = True

    def maybe_rotate(self, max_bytes: int = DEFAULT_SEGMENT_BYTES) -> bool:
        """Seal the segment once it exceeds ``max_bytes``; True if sealed.

        The steady-state ingestion policy: appends share one segment (one
        fsync each, no file churn) until it grows past the threshold, at
        which point it is sealed and — once the applied watermark passes
        its ids — pruned.
        """
        current = self.current_segment
        if current is None or current.stat().st_size < max_bytes:
            return False
        self.rotate_segment()
        return True

    def prune(self, applied_batch_id: int) -> list[Path]:
        """Delete segments fully covered by the applied watermark.

        A segment is deletable iff a *later* segment exists whose first
        id is ``<= applied_batch_id + 1`` — then every record the earlier
        segment can contain has id ``<= applied_batch_id``.  The newest
        segment is always kept so batch-id numbering survives restarts.
        Returns the deleted paths.
        """
        segments = self.segments()
        deleted: list[Path] = []
        for current, successor in zip(segments, segments[1:]):
            if _segment_first_id(successor) <= applied_batch_id + 1:
                try:
                    current.unlink()
                except OSError:  # pragma: no cover - concurrent prune
                    continue
                deleted.append(current)
        # No directory fsync: a pruned segment resurrected by a crash only
        # holds ids at or below the watermark, which replay skips anyway.
        return deleted

    # ------------------------------------------------------------------
    def replay(self, *, after: int = 0, on_corruption: str = "stop"
               ) -> Iterator[WALRecord]:
        """Yield records with ``batch_id > after``, in id order.

        ``on_corruption`` follows :func:`repro.wal.record.iter_records`:
        ``"stop"`` (default) treats a bad record as the end of the
        journal — replay-after-crash yields exactly the durable prefix —
        while ``"raise"`` propagates :class:`WALCorruption`.
        """
        if on_corruption not in ("raise", "stop"):
            raise WALError(f"unknown on_corruption policy {on_corruption!r}")
        last_seen = None
        for path in self.segments():
            iterator = scan_records(path)
            while True:
                try:
                    _, record = next(iterator)
                except StopIteration:
                    break
                except WALCorruption:
                    if on_corruption == "raise":
                        raise
                    return
                if last_seen is not None and record.batch_id <= last_seen:
                    raise WALError(
                        f"non-monotonic batch id {record.batch_id} after "
                        f"{last_seen} in {path}")
                last_seen = record.batch_id
                if record.batch_id > after:
                    yield record

    def close(self) -> None:
        """Close the active segment handle (safe to call repeatedly)."""
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
        self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def replay_wal(directory: str | Path, *, after: int = 0,
               on_corruption: str = "stop") -> list[WALRecord]:
    """Read a namespace directory's suffix of records after ``after``.

    Convenience wrapper over :meth:`WriteAheadLog.replay` that also heals
    the torn tail (opening the journal does); returns a list.
    """
    wal = WriteAheadLog(directory)
    try:
        return list(wal.replay(after=after, on_corruption=on_corruption))
    finally:
        wal.close()
