"""Salvage damaged checkpoint directories and journals: ``repro repair``.

A crash, a filled disk or bit rot can leave a serving directory in states
the happy path never produces: orphaned ``*.tmp`` files from an
interrupted atomic write, a live checkpoint that no longer deserialises,
archived generations whose live file vanished, journals with torn tails
or corrupt records.  :func:`repair_directory` walks a model directory
(and its WAL root) and fixes what can be fixed:

=======================  =============================================
problem                  action
=======================  =============================================
``orphan-tmp``           delete the leftover temp file
``corrupt-checkpoint``   restore the newest *valid* archived
                         generation over the broken live file, else
                         quarantine it as ``<name>.npz.corrupt``
``missing-live``         promote the newest valid archived generation
                         back to the live ``<name>.npz``
``torn-journal``         truncate the segment at the last good record
                         boundary (the prefix keeps replaying)
=======================  =============================================

Every finding is reported whether or not it was applied (``--dry-run``
reports only), and ``--recheckpoint`` finishes by replaying any pending
journal suffix into fresh checkpoint generations
(:func:`repro.wal.recovery.recover_model_dir`) so the repaired directory
serves the most recent durable state.

Repair is an **offline** tool: run it with the ingestion and serving
writers stopped.  A live ``save_checkpoint`` keeps an in-flight ``*.tmp``
file that looks exactly like an orphan; as a safety net against an
accidental concurrent run, tmp files younger than ``tmp_grace_seconds``
(default 60) are reported but left alone — pass ``0`` to force.
"""

from __future__ import annotations

import os
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..exceptions import SerializationError
from ..obs.logging import get_logger
from ..serialize import fsync_directory, load_checkpoint
from .record import WALCorruption, scan_records
from .recovery import recover_model_dir

__all__ = ["RepairFinding", "repair_directory"]

_LOG = get_logger("repair")


@dataclass
class RepairFinding:
    """One problem ``repro repair`` found, and what it did about it."""

    path: str
    problem: str
    action: str
    detail: dict = field(default_factory=dict)

    def as_row(self) -> dict[str, object]:
        """Flat dict for table/JSON rendering."""
        return {"path": self.path, "problem": self.problem,
                "action": self.action,
                **{key: value for key, value in self.detail.items()}}


def _valid_checkpoint(path: Path) -> bool:
    try:
        load_checkpoint(path)
        return True
    except SerializationError:
        return False


def _newest_valid_generation(live: Path) -> Path | None:
    """Newest archived generation of ``live`` that still deserialises."""
    archives = sorted(live.parent.glob(f".{live.stem}.gen*{live.suffix}"),
                      reverse=True)
    for archive in archives:
        if _valid_checkpoint(archive):
            return archive
    return None


def _restore(live: Path, archive: Path) -> None:
    """Atomically promote ``archive``'s bytes to the live checkpoint path."""
    tmp = live.with_name(live.name + ".restore.tmp")
    shutil.copy2(archive, tmp)
    with tmp.open("rb") as handle:
        os.fsync(handle.fileno())
    os.replace(tmp, live)
    fsync_directory(live.parent)


def _act(findings: list[RepairFinding], apply: bool, path: Path,
         problem: str, action: str, detail: dict, fix) -> None:
    """Record a finding and, when applying, run its fix."""
    if apply:
        fix()
    else:
        action = f"would-{action}"
    _LOG.log("warning" if apply else "info", "repair_finding",
             path=str(path), problem=problem, action=action, **detail)
    findings.append(RepairFinding(path=str(path), problem=problem,
                                  action=action, detail=detail))


def _repair_checkpoints(root: Path, findings: list[RepairFinding],
                        apply: bool, tmp_grace_seconds: float) -> None:
    for tmp in sorted(root.glob("*.tmp")):
        age = time.time() - tmp.stat().st_mtime
        if age < tmp_grace_seconds:
            # Could be a live writer's in-flight atomic write (repair is
            # meant to run offline); deleting it would break the writer's
            # os.replace.  Report it and move on.
            findings.append(RepairFinding(
                path=str(tmp), problem="orphan-tmp", action="skipped-recent",
                detail={"bytes": tmp.stat().st_size,
                        "age_seconds": round(age, 1)}))
            continue
        _act(findings, apply, tmp, "orphan-tmp", "delete",
             {"bytes": tmp.stat().st_size},
             lambda tmp=tmp: tmp.unlink())

    # Live checkpoints that no longer deserialise.
    for live in sorted(root.glob("*.npz")):
        if live.stem.startswith(".") or _valid_checkpoint(live):
            continue
        archive = _newest_valid_generation(live)
        if archive is not None:
            _act(findings, apply, live, "corrupt-checkpoint",
                 "restore-generation", {"restored_from": archive.name},
                 lambda live=live, archive=archive: _restore(live, archive))
        else:
            quarantine = live.with_name(live.name + ".corrupt")
            _act(findings, apply, live, "corrupt-checkpoint", "quarantine",
                 {"quarantined_as": quarantine.name},
                 lambda live=live, quarantine=quarantine:
                     os.replace(live, quarantine))

    # Archived generations whose live checkpoint vanished entirely.
    seen: set[str] = set()
    for archive in sorted(root.glob(".*.gen*.npz"), reverse=True):
        stem = archive.name[1:].rsplit(".gen", 1)[0]
        live = root / f"{stem}.npz"
        if stem in seen or live.exists():
            continue
        seen.add(stem)
        candidate = _newest_valid_generation(live)
        if candidate is None:
            findings.append(RepairFinding(
                path=str(live), problem="missing-live",
                action="unrecoverable",
                detail={"reason": "no archived generation deserialises"}))
            continue
        _act(findings, apply, live, "missing-live", "restore-generation",
             {"restored_from": candidate.name},
             lambda live=live, candidate=candidate:
                 _restore(live, candidate))


def _truncate_segment(segment: Path, offset: int) -> None:
    with segment.open("r+b") as handle:
        handle.truncate(offset)
        handle.flush()
        os.fsync(handle.fileno())
    fsync_directory(segment.parent)


def _repair_journals(wal_root: Path, findings: list[RepairFinding],
                     apply: bool) -> None:
    if not wal_root.is_dir():
        return
    namespaces = sorted(path for path in wal_root.glob("*/*.wal")
                        if path.is_dir())
    for namespace in namespaces:
        for segment in sorted(namespace.glob("segment-*.wal")):
            records = 0
            try:
                for _ in scan_records(segment):
                    records += 1
            except WALCorruption as exc:
                dropped = segment.stat().st_size - exc.offset
                _act(findings, apply, segment, "torn-journal", "truncate",
                     {"records_kept": records, "bytes_dropped": dropped,
                      "reason": str(exc)},
                     lambda segment=segment, offset=exc.offset:
                         _truncate_segment(segment, offset))


def repair_directory(root: str | Path, *, wal_dir: str | Path | None = None,
                     apply: bool = True, recheckpoint: bool = False,
                     keep: int = 3, tmp_grace_seconds: float = 60.0) -> dict:
    """Scan (and, unless ``apply=False``, fix) one model directory.

    Run **offline** — with the ingestion and serving writers stopped —
    since a live atomic write is indistinguishable from an orphan;
    ``tmp_grace_seconds`` spares tmp files modified more recently than
    that as a guard against accidental concurrent runs (``0`` disables
    the guard).  ``wal_dir`` defaults to ``<root>/wal`` when that exists.
    With ``recheckpoint`` (and ``apply``), pending journal suffixes are
    replayed into fresh checkpoint generations after the structural fixes.
    Returns a report dict: ``root``, ``wal_dir``, ``applied``, one entry
    per finding under ``findings``, replayed batch counts under
    ``recovered``, and ``clean`` (no findings at all).
    """
    root = Path(root)
    if wal_dir is None and (root / "wal").is_dir():
        wal_dir = root / "wal"
    findings: list[RepairFinding] = []
    _repair_checkpoints(root, findings, apply, float(tmp_grace_seconds))
    if wal_dir is not None:
        _repair_journals(Path(wal_dir), findings, apply)

    recovered = []
    if recheckpoint and apply and wal_dir is not None:
        recovered = [report.as_row()
                     for report in recover_model_dir(root, wal_dir, keep=keep)]

    return {
        "root": str(root),
        "wal_dir": str(wal_dir) if wal_dir is not None else None,
        "applied": bool(apply),
        "findings": [finding.as_row() for finding in findings],
        "recovered": recovered,
        "clean": not findings,
    }
