"""Crash recovery: replay a checkpoint's WAL suffix, exactly once.

The durable ingestion discipline (``repro stream --wal-dir``, ``repro
update --wal-dir``, :func:`repro.experiments.streaming.run_stream_scenario`)
journals every batch *before* applying it and stamps the applied watermark
into the rotated checkpoint's metadata::

    metadata["wal_applied"]  = {"<stream>": <last applied batch id>, ...}
    metadata["wal_updates_applied"] = <total batches ever applied>

After a crash the checkpoint on disk is some prefix of the ingestion
history and the journal is a superset of it: :func:`recover_checkpoint`
loads the checkpoint, replays exactly the records newer than the
watermark (``batch_id > wal_applied[stream]``), and rotates a new
generation after **each** replayed batch — so recovery itself is
crash-tolerant and idempotent: killed mid-replay, the next recovery
resumes from the new watermark and no batch is ever applied twice.

The model is reloaded from the rotated checkpoint between replayed
batches, making the replay trajectory identical to an ingestion loop that
checkpoints (and therefore round-trips) after every batch — which is what
lets the fault-injection harness assert *bit-for-bit* state parity with
an uninterrupted run.

:func:`recover_model_dir` sweeps a serving model directory before the
registry starts (the ``repro serve --wal-dir`` startup path): every
checkpoint with a pending journal suffix is recovered and rotated, and a
hot-reload watcher that is already running picks the new generation up
like any other rotation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..exceptions import WALError
from ..serialize import load_checkpoint, rotate_checkpoint
from .journal import WriteAheadLog

__all__ = ["RecoveryReport", "recover_checkpoint", "recover_model_dir",
           "stamp_wal_metadata", "wal_applied"]

#: Replay parameters a journaled record may carry for the update call.
_REPLAY_KWARGS = ("epochs", "batch_size", "seed")


def wal_applied(metadata: dict) -> dict[str, int]:
    """The per-stream applied watermark stamped in checkpoint metadata."""
    stamped = metadata.get("wal_applied") or {}
    if not isinstance(stamped, dict):
        raise WALError(f"checkpoint wal_applied metadata is not a mapping: "
                       f"{stamped!r}")
    return {str(stream): int(batch_id)
            for stream, batch_id in stamped.items()}


def stamp_wal_metadata(metadata: dict, *, stream: str, batch_id: int,
                       n_updates: int | None = None) -> dict:
    """Record one applied batch in checkpoint ``metadata`` (in place).

    Advances the stream's watermark and the exactly-once application
    counter; returns ``metadata`` for chaining.
    """
    applied = wal_applied(metadata)
    applied[stream] = int(batch_id)
    metadata["wal_applied"] = applied
    if n_updates is None:
        n_updates = int(metadata.get("wal_updates_applied", 0)) + 1
    metadata["wal_updates_applied"] = int(n_updates)
    return metadata


@dataclass
class RecoveryReport:
    """What one checkpoint recovery found and replayed."""

    checkpoint: str
    replayed: dict[str, list[int]] = field(default_factory=dict)
    wal_applied: dict[str, int] = field(default_factory=dict)
    truncated_bytes: int = 0
    pruned_segments: int = 0

    @property
    def n_replayed(self) -> int:
        """Total batches replayed across every stream."""
        return sum(len(ids) for ids in self.replayed.values())

    def as_row(self) -> dict[str, object]:
        """Flat dict for table/JSON rendering."""
        return {
            "checkpoint": self.checkpoint,
            "replayed_batches": self.n_replayed,
            "streams": ";".join(sorted(self.replayed)) or "-",
            "watermark": ";".join(f"{stream}={batch_id}" for stream, batch_id
                                  in sorted(self.wal_applied.items())) or "-",
            "truncated_bytes": self.truncated_bytes,
            "pruned_segments": self.pruned_segments,
        }


def _namespaces(wal_dir: str | Path, model_name: str) -> list[Path]:
    root = Path(wal_dir) / model_name
    if not root.is_dir():
        return []
    return sorted(path for path in root.glob("*.wal") if path.is_dir())


def recover_checkpoint(checkpoint_path: str | Path, wal_dir: str | Path, *,
                       keep: int = 3) -> RecoveryReport:
    """Replay the journal suffix newer than ``checkpoint_path``'s watermark.

    Opens every ``<wal_dir>/<model>/<stream>.wal`` namespace (healing torn
    tails), applies each pending record through
    :func:`repro.stream.incremental_update` with the replay parameters the
    record was journaled with, and rotates a checkpoint generation per
    replayed batch.  Exactly-once: records at or below the watermark are
    never re-applied, and re-running recovery after it completed (or
    crashed) is a no-op for everything already applied.  Streams replay in
    name order (ids are only ordered *within* a stream).

    Returns a :class:`RecoveryReport`; ``n_replayed == 0`` means the
    checkpoint was already current.
    """
    from ..stream import incremental_update  # heavy import, deferred

    path = Path(checkpoint_path)
    report = RecoveryReport(checkpoint=str(path))
    namespaces = _namespaces(wal_dir, path.stem)
    if not namespaces:
        return report

    model = load_checkpoint(path)
    metadata = dict(model.checkpoint_header_.get("metadata", {}))
    applied = wal_applied(metadata)
    report.wal_applied = dict(applied)
    for namespace in namespaces:
        stream = namespace.stem
        wal = WriteAheadLog(namespace)
        try:
            report.truncated_bytes += wal.truncated_bytes_
            watermark = applied.get(stream, 0)
            for record in wal.replay(after=watermark, on_corruption="stop"):
                kwargs = {key: record.meta[key] for key in _REPLAY_KWARGS
                          if record.meta.get(key) is not None}
                incremental_update(model, record.arrays["X"], **kwargs)
                watermark = record.batch_id
                stamp_wal_metadata(metadata, stream=stream,
                                   batch_id=watermark)
                rotate_checkpoint(path, model, metadata=metadata, keep=keep)
                # Reload so the replay trajectory equals an ingestion loop
                # that round-trips after every batch (bit-for-bit parity).
                model = load_checkpoint(path)
                metadata = dict(model.checkpoint_header_.get("metadata", {}))
                report.replayed.setdefault(stream, []).append(watermark)
            applied[stream] = watermark
            report.wal_applied[stream] = watermark
            wal.rotate_segment()
            report.pruned_segments += len(wal.prune(watermark))
        finally:
            wal.close()
    return report


def recover_model_dir(model_dir: str | Path, wal_dir: str | Path, *,
                      keep: int = 3) -> list[RecoveryReport]:
    """Recover every checkpoint in ``model_dir`` with a pending journal.

    The serving startup path: run before the registry loads so every
    served model reflects all durably-journaled batches.  Checkpoints
    without a WAL namespace are untouched; reports are returned for the
    checkpoints that had one (replayed or not).
    """
    reports = []
    for path in sorted(Path(model_dir).glob("*.npz")):
        if path.stem.startswith("."):
            continue
        if not _namespaces(wal_dir, path.stem):
            continue
        reports.append(recover_checkpoint(path, wal_dir, keep=keep))
    return reports
