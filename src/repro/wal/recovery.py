"""Crash recovery: replay a checkpoint's WAL suffix, exactly once.

The durable ingestion discipline (``repro stream --wal-dir``, ``repro
update --wal-dir``, :func:`repro.experiments.streaming.run_stream_scenario`)
journals every batch *before* applying it and stamps the applied watermark
into the rotated checkpoint's metadata::

    metadata["wal_applied"]  = {"<stream>": <last applied batch id>, ...}
    metadata["wal_updates_applied"] = <total batches ever applied>

After a crash the checkpoint on disk is some prefix of the ingestion
history and the journal is a superset of it: :func:`recover_checkpoint`
loads the checkpoint, replays exactly the records newer than the
watermark (``batch_id > wal_applied[stream]``), and rotates a new
generation after **each** replayed batch — so recovery itself is
crash-tolerant and idempotent: killed mid-replay, the next recovery
resumes from the new watermark and no batch is ever applied twice.

The model is reloaded from the rotated checkpoint between replayed
batches, making the replay trajectory identical to an ingestion loop that
checkpoints (and therefore round-trips) after every batch — which is what
lets the fault-injection harness assert *bit-for-bit* state parity with
an uninterrupted run.

Records carry the *action* the live loop decided for them
(``meta["action"]``, stamped by the ingestion path).  ``"update"``
records replay through :func:`repro.stream.incremental_update`;
``"refit"`` records — drift made the live loop refit from scratch —
carry the full pre-batch history (``arrays["X_seen"]``) plus the
clusterer context (``algorithm``, ``n_clusters``, optional ``config``)
and replay as the same fresh fit.  An action recovery does not recognise
raises :class:`WALError` rather than applying the wrong update.

When the checkpoint has a sibling similarity index
(``<stem>.index.npz``, rotated in lockstep by ``repro stream
--with-index``), recovery also replays each batch's vectors into the
index and rotates it with its own stamped watermark, so served search
stays consistent with the recovered model.

:func:`recover_model_dir` sweeps a serving model directory before the
registry starts (the ``repro serve --wal-dir`` startup path): every
checkpoint with a pending journal suffix is recovered and rotated, and a
hot-reload watcher that is already running picks the new generation up
like any other rotation.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..exceptions import WALError
from ..obs.logging import get_logger
from ..obs.metrics import get_registry
from ..serialize import load_checkpoint, rotate_checkpoint
from .journal import WriteAheadLog

_LOG = get_logger("recovery")

__all__ = ["RecoveryReport", "recover_checkpoint", "recover_model_dir",
           "stamp_wal_metadata", "wal_applied"]

#: Replay parameters a journaled record may carry for the update call.
_REPLAY_KWARGS = ("epochs", "batch_size", "seed")


def wal_applied(metadata: dict) -> dict[str, int]:
    """The per-stream applied watermark stamped in checkpoint metadata."""
    stamped = metadata.get("wal_applied") or {}
    if not isinstance(stamped, dict):
        raise WALError(f"checkpoint wal_applied metadata is not a mapping: "
                       f"{stamped!r}")
    return {str(stream): int(batch_id)
            for stream, batch_id in stamped.items()}


def stamp_wal_metadata(metadata: dict, *, stream: str, batch_id: int,
                       n_updates: int | None = None) -> dict:
    """Record one applied batch in checkpoint ``metadata`` (in place).

    Advances the stream's watermark and the exactly-once application
    counter; returns ``metadata`` for chaining.
    """
    applied = wal_applied(metadata)
    applied[stream] = int(batch_id)
    metadata["wal_applied"] = applied
    if n_updates is None:
        n_updates = int(metadata.get("wal_updates_applied", 0)) + 1
    metadata["wal_updates_applied"] = int(n_updates)
    return metadata


@dataclass
class RecoveryReport:
    """What one checkpoint recovery found and replayed."""

    checkpoint: str
    replayed: dict[str, list[int]] = field(default_factory=dict)
    index_replayed: dict[str, list[int]] = field(default_factory=dict)
    wal_applied: dict[str, int] = field(default_factory=dict)
    truncated_bytes: int = 0
    pruned_segments: int = 0

    @property
    def n_replayed(self) -> int:
        """Total batches replayed across every stream."""
        return sum(len(ids) for ids in self.replayed.values())

    @property
    def n_index_replayed(self) -> int:
        """Total batches replayed into the sibling similarity index."""
        return sum(len(ids) for ids in self.index_replayed.values())

    def as_row(self) -> dict[str, object]:
        """Flat dict for table/JSON rendering."""
        return {
            "checkpoint": self.checkpoint,
            "replayed_batches": self.n_replayed,
            "index_batches": self.n_index_replayed,
            "streams": ";".join(sorted(self.replayed)) or "-",
            "watermark": ";".join(f"{stream}={batch_id}" for stream, batch_id
                                  in sorted(self.wal_applied.items())) or "-",
            "truncated_bytes": self.truncated_bytes,
            "pruned_segments": self.pruned_segments,
        }


def _namespaces(wal_dir: str | Path, model_name: str) -> list[Path]:
    root = Path(wal_dir) / model_name
    if not root.is_dir():
        return []
    return sorted(path for path in root.glob("*.wal") if path.is_dir())


def _replay_refit(record, metadata: dict):
    """Reproduce a journaled ``"refit"`` decision: a fresh fit on history.

    The live loop journals the full pre-batch history (``X_seen``) and the
    clusterer context alongside the batch, so recovery re-runs the exact
    fit the uninterrupted run performed.
    """
    from ..tasks.base import make_clusterer  # heavy import, deferred

    if "X_seen" not in record.arrays:
        raise WALError(
            f"refit record {record.batch_id} carries no X_seen history; "
            "cannot reproduce the refit — run repro repair and refit "
            "manually")
    algorithm = record.meta.get("algorithm") or metadata.get("algorithm")
    n_clusters = record.meta.get("n_clusters")
    if not algorithm or n_clusters is None:
        raise WALError(
            f"refit record {record.batch_id} is missing clusterer context "
            "(algorithm / n_clusters)")
    config = None
    if record.meta.get("config") is not None:
        from ..config import DeepClusteringConfig
        config = DeepClusteringConfig(**record.meta["config"])
    X_all = np.vstack([record.arrays["X_seen"], record.arrays["X"]])
    model = make_clusterer(str(algorithm), int(n_clusters), config=config,
                           seed=record.meta.get("seed"))
    model.fit(X_all)
    return model


def _sibling_index(path: Path, applied: dict[str, int]):
    """Load ``<stem>.index.npz`` beside ``path`` if the ingestion loop
    rotates one; returns ``(index, metadata, watermarks)`` or ``None``.

    Index checkpoints written before watermark stamping existed carry no
    ``wal_applied`` of their own; they rotated in lockstep with the model,
    so the model's watermark is the best available estimate of their
    content (exact except for a crash between the two rotations).
    """
    index_path = path.with_name(path.stem + ".index.npz")
    if not index_path.exists():
        return None
    index = load_checkpoint(index_path)
    metadata = dict(index.checkpoint_header_.get("metadata", {}))
    if "wal_applied" in metadata:
        watermarks = wal_applied(metadata)
    else:
        watermarks = dict(applied)
    return index_path, index, metadata, watermarks


def recover_checkpoint(checkpoint_path: str | Path, wal_dir: str | Path, *,
                       keep: int = 3) -> RecoveryReport:
    """Replay the journal suffix newer than ``checkpoint_path``'s watermark.

    Opens every ``<wal_dir>/<model>/<stream>.wal`` namespace (healing torn
    tails), applies each pending record the way the live loop did —
    :func:`repro.stream.incremental_update` for ``"update"`` records, a
    reproduced fresh fit for ``"refit"`` records (see module docstring) —
    and rotates a checkpoint generation per replayed batch.  A sibling
    ``<stem>.index.npz`` similarity index is caught up the same way, each
    record's vectors added past the index's own watermark.  Exactly-once:
    records at or below a watermark are never re-applied, and re-running
    recovery after it completed (or crashed) is a no-op for everything
    already applied.  Streams replay in name order (ids are only ordered
    *within* a stream).

    Returns a :class:`RecoveryReport`; ``n_replayed == 0`` means the
    checkpoint was already current.
    """
    from ..stream import incremental_update  # heavy import, deferred

    path = Path(checkpoint_path)
    report = RecoveryReport(checkpoint=str(path))
    namespaces = _namespaces(wal_dir, path.stem)
    if not namespaces:
        return report

    model = load_checkpoint(path)
    metadata = dict(model.checkpoint_header_.get("metadata", {}))
    applied = wal_applied(metadata)
    report.wal_applied = dict(applied)
    sibling = _sibling_index(path, applied)
    for namespace in namespaces:
        stream = namespace.stem
        wal = WriteAheadLog(namespace)
        try:
            report.truncated_bytes += wal.truncated_bytes_
            watermark = applied.get(stream, 0)
            index_mark = watermark
            if sibling is not None:
                index_mark = sibling[3].get(stream, 0)
            replay_from = min(watermark, index_mark)
            for record in wal.replay(after=replay_from,
                                     on_corruption="stop"):
                if record.batch_id > watermark:
                    action = str(record.meta.get("action", "update"))
                    if action == "refit":
                        model = _replay_refit(record, metadata)
                    elif action in ("update", "fit"):
                        kwargs = {key: record.meta[key]
                                  for key in _REPLAY_KWARGS
                                  if record.meta.get(key) is not None}
                        incremental_update(model, record.arrays["X"],
                                           **kwargs)
                    else:
                        raise WALError(
                            f"record {record.batch_id} in {namespace} has "
                            f"unknown action {action!r}; refusing to guess "
                            "how to replay it")
                    watermark = record.batch_id
                    stamp_wal_metadata(metadata, stream=stream,
                                       batch_id=watermark)
                    rotate_checkpoint(path, model, metadata=metadata,
                                      keep=keep)
                    # Reload so the replay trajectory equals an ingestion
                    # loop that round-trips after every batch (bit-for-bit
                    # parity).
                    model = load_checkpoint(path)
                    metadata = dict(
                        model.checkpoint_header_.get("metadata", {}))
                    report.replayed.setdefault(stream, []).append(watermark)
                if sibling is not None and record.batch_id > index_mark:
                    index_path, index, index_meta, index_marks = sibling
                    index.add(record.arrays["X"])
                    index_mark = record.batch_id
                    stamp_wal_metadata(index_meta, stream=stream,
                                       batch_id=index_mark)
                    rotate_checkpoint(index_path, index,
                                      metadata=index_meta, keep=keep)
                    index_marks[stream] = index_mark
                    report.index_replayed.setdefault(stream, []).append(
                        index_mark)
            applied[stream] = watermark
            report.wal_applied[stream] = watermark
            wal.rotate_segment()
            report.pruned_segments += len(wal.prune(min(watermark,
                                                        index_mark)))
        finally:
            wal.close()
    if report.n_replayed or report.truncated_bytes:
        get_registry().counter(
            "repro_recovery_batches_total",
            "WAL batches replayed at recovery", ("checkpoint",)).inc(
                report.n_replayed, checkpoint=path.stem)
        _LOG.info("recovery_replayed", checkpoint=path.stem,
                  replayed_batches=report.n_replayed,
                  index_batches=report.n_index_replayed,
                  truncated_bytes=report.truncated_bytes,
                  pruned_segments=report.pruned_segments)
    return report


def recover_model_dir(model_dir: str | Path, wal_dir: str | Path, *,
                      keep: int = 3) -> list[RecoveryReport]:
    """Recover every checkpoint in ``model_dir`` with a pending journal.

    The serving startup path: run before the registry loads so every
    served model reflects all durably-journaled batches.  Checkpoints
    without a WAL namespace are untouched; reports are returned for the
    checkpoints that had one (replayed or not).

    Concurrent callers serialise on an advisory ``.recovery.lock`` inside
    ``wal_dir``: the worker-pool boot runs recovery exactly once in the
    parent *before* forking, and the lock makes a second process booting
    against the same directory wait for (and then observe) the finished
    recovery instead of replaying the same journal concurrently.  Because
    replay is idempotent the second pass then finds nothing to do.
    """
    with _recovery_lock(wal_dir):
        reports = []
        for path in sorted(Path(model_dir).glob("*.npz")):
            if path.stem.startswith("."):
                continue
            if not _namespaces(wal_dir, path.stem):
                continue
            reports.append(recover_checkpoint(path, wal_dir, keep=keep))
        return reports


@contextmanager
def _recovery_lock(wal_dir: str | Path):
    """Advisory inter-process lock for directory-wide recovery.

    ``fcntl.flock`` where available (released automatically even on
    SIGKILL, so a crashed recovery never wedges the next boot); a no-op on
    platforms without it — recovery stays correct either way, the lock
    only removes duplicated replay work.
    """
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-POSIX platform
        yield
        return
    root = Path(wal_dir)
    root.mkdir(parents=True, exist_ok=True)
    lock_path = root / ".recovery.lock"
    with open(lock_path, "w") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)
