"""Durable streaming: a write-ahead journal with replay and exactly-once
updates.

PRs 4–5 made models continuously learn (``repro stream`` + checkpoint
rotation + hot reload), but a crash between a ``partial_fit`` and the next
``rotate_checkpoint`` silently lost every batch since the last generation.
This package closes that durability gap with classic database machinery:

* :mod:`repro.wal.record` — the wire format: length-prefixed,
  CRC32-checksummed records (header JSON + raw array payload) that
  round-trip bit-identically and detect any torn write or byte flip;
* :class:`WriteAheadLog` — an append-only, fsync'd, segmented journal per
  ``<model>/<stream>.wal`` namespace, with size-thresholded segment
  rotation and pruning keyed to the applied watermark checkpoint
  generations stamp;
* :func:`recover_checkpoint` / :func:`recover_model_dir` — replay-after-
  restart: apply exactly the journal suffix newer than the watermark
  stamped in checkpoint metadata (``wal_applied``), rotating a generation
  per replayed batch so recovery itself is crash-tolerant and idempotent;
* :func:`repair_directory` — the ``repro repair`` salvage tool for
  damaged directories (orphan temp files, corrupt checkpoints, torn
  journals).

The ingestion discipline — journal *first*, fsync, apply, rotate, stamp —
is wired through ``repro stream --wal-dir``, ``repro update --wal-dir``
and ``repro serve --wal-dir`` (recovery at startup), and proven by the
crash/fault-injection harness in ``tests/faultinject.py``, which SIGKILLs
ingestion at every interesting point and asserts the recovered state is
bit-for-bit equal to an uninterrupted run.
"""

from .journal import WriteAheadLog, replay_wal, wal_namespace
from .record import (
    WAL_MAGIC,
    WALCorruption,
    WALRecord,
    decode_record,
    encode_record,
    iter_records,
    scan_records,
)
from .recovery import (
    RecoveryReport,
    recover_checkpoint,
    recover_model_dir,
    stamp_wal_metadata,
    wal_applied,
)
from .repair import RepairFinding, repair_directory

__all__ = [
    "WAL_MAGIC",
    "WALCorruption",
    "WALRecord",
    "WriteAheadLog",
    "RecoveryReport",
    "RepairFinding",
    "decode_record",
    "encode_record",
    "iter_records",
    "recover_checkpoint",
    "recover_model_dir",
    "repair_directory",
    "replay_wal",
    "scan_records",
    "stamp_wal_metadata",
    "wal_applied",
    "wal_namespace",
]
