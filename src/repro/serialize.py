"""Versioned NPZ checkpoints for trained clustering models.

A checkpoint is a single ``.npz`` file with two kinds of entries:

* ``__header__`` — a JSON document (stored as a zero-dimensional string
  array) carrying the format magic, the format version, the model class
  name, the library version, the model's JSON-able constructor/fitted
  parameters and free-form user metadata (task, dataset, embedding method,
  metrics, ...);
* ``array.<name>`` — one entry per numpy array of fitted state (centroids,
  auto-encoder weights, subspace bases, core samples, labels).

Arrays round-trip bit-identically (NPZ stores the raw little-endian buffer),
so a model reloaded in a fresh process reproduces ``predict`` exactly.
Writes are atomic *and durable*: the temp file is fsync'd before the
``os.replace`` and the containing directory is fsync'd after it, so a
serving process scanning a model directory never observes a partial
checkpoint — and a completed ``save_checkpoint`` survives power loss, not
just process death (the discipline the :mod:`repro.wal` journal builds on).

Models participate through three hooks — ``checkpoint_params()`` (JSON-able
dict), ``checkpoint_arrays()`` (name -> ndarray) and the classmethod
``from_checkpoint(params, arrays)`` — and are resolved by class name through
:func:`checkpointable_classes`.  Anything malformed (truncated file, foreign
NPZ, unknown class, future format version) raises
:class:`~repro.exceptions.SerializationError`.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

import numpy as np

from ._version import __version__
from .exceptions import SerializationError

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "SharedCheckpointStore",
    "attach_shared_checkpoint",
    "checkpoint_generations",
    "checkpointable_classes",
    "fsync_directory",
    "load_checkpoint",
    "read_checkpoint_header",
    "rotate_checkpoint",
    "save_checkpoint",
]

#: Identifies a file as a repro checkpoint (vs an arbitrary NPZ).
CHECKPOINT_MAGIC = "repro-checkpoint"
#: Current checkpoint format version; readers reject anything newer.
CHECKPOINT_VERSION = 1

_ARRAY_PREFIX = "array."


def checkpointable_classes() -> dict[str, type]:
    """Mapping of checkpointable class names to their classes.

    Imported lazily so that :mod:`repro.serialize` itself stays import-light
    and the model modules never need to import this one (no cycles).
    Besides the clustering models this covers the :mod:`repro.index`
    vector indexes, so similarity-search indexes persist, hot-reload and
    rotate through exactly the same machinery as model checkpoints.
    """
    from .clustering import DBSCAN, Birch, KMeans
    from .dc import EDESC, SDCN, SHGP, Autoencoder, AutoencoderClustering
    from .index import FlatIndex, HNSWIndex, IVFFlatIndex, IVFPQIndex

    return {cls.__name__: cls
            for cls in (KMeans, Birch, DBSCAN, Autoencoder,
                        AutoencoderClustering, SDCN, EDESC, SHGP,
                        FlatIndex, IVFFlatIndex, HNSWIndex, IVFPQIndex)}


def _lazy_member_prefix(cls) -> str | None:
    """NPZ member prefix of a class's lazily loaded arrays (or None).

    Classes that store data meant to be memory-mapped in place (the
    IVF-PQ inverted lists) declare ``lazy_array_prefix``; loaders skip
    those ``array.<prefix>*`` members and call ``model.attach_store(path)``
    after reconstruction instead of materialising them.
    """
    prefix = getattr(cls, "lazy_array_prefix", None) if cls else None
    return f"{_ARRAY_PREFIX}{prefix}" if prefix else None


def fsync_directory(path: str | Path) -> None:
    """Flush a directory's entry table to stable storage.

    ``os.replace`` makes a rename atomic but not durable: after a power
    loss the directory may still hold the old entry unless the directory
    itself is fsync'd.  Filesystems that refuse ``fsync`` on a directory
    handle (some network/overlay mounts) are tolerated silently — they
    offer no stronger primitive to fall back to.
    """
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir-fsync
        pass
    finally:
        os.close(fd)


def _json_default(value):
    """Coerce numpy scalars hiding in params/metadata to JSON natives."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    raise TypeError(
        f"checkpoint params/metadata must be JSON-able, got {type(value).__name__}")


def save_checkpoint(path: str | Path, model, *,
                    metadata: dict | None = None) -> Path:
    """Write ``model`` (a fitted clusterer) to ``path`` as an NPZ checkpoint.

    ``metadata`` is free-form JSON-able context stored in the header —
    the serving layer reads ``task`` and ``embedding`` from it to embed raw
    items before prediction.  Returns the destination path.
    """
    classes = checkpointable_classes()
    cls_name = type(model).__name__
    if classes.get(cls_name) is not type(model):
        raise SerializationError(
            f"cannot checkpoint object of type {cls_name!r}; expected one of "
            f"{sorted(classes)}")
    try:
        params = model.checkpoint_params()
        arrays = model.checkpoint_arrays()
    except AttributeError as exc:  # pragma: no cover - registry guards this
        raise SerializationError(
            f"{cls_name} does not implement the checkpoint protocol") from exc

    header = {
        "magic": CHECKPOINT_MAGIC,
        "version": CHECKPOINT_VERSION,
        "class": cls_name,
        "library_version": __version__,
        "params": params,
        "metadata": dict(metadata or {}),
    }
    try:
        header_json = json.dumps(header, sort_keys=True, default=_json_default)
    except TypeError as exc:
        raise SerializationError(str(exc)) from exc

    payload: dict[str, np.ndarray] = {}
    for name, value in arrays.items():
        array = np.asarray(value)
        if array.dtype == object:
            raise SerializationError(
                f"array {name!r} of {cls_name} has dtype=object; checkpoints "
                "store numeric arrays only")
        payload[f"{_ARRAY_PREFIX}{name}"] = array

    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    # Atomic write so concurrent readers (the model registry) never see a
    # partially written checkpoint; fsync file-then-directory so a completed
    # save is durable across power loss, not merely process death.
    # Models that want their members memory-mappable in place (see
    # repro.index.storage) opt out of deflate: a stored zip member is a
    # contiguous byte run the OS can page straight from the file.
    writer = (np.savez
              if not getattr(type(model), "checkpoint_compressed", True)
              else np.savez_compressed)
    handle, tmp_name = tempfile.mkstemp(dir=destination.parent, suffix=".tmp")
    try:
        with os.fdopen(handle, "wb") as tmp:
            writer(tmp, __header__=np.asarray(header_json), **payload)
            tmp.flush()
            os.fsync(tmp.fileno())
        os.replace(tmp_name, destination)
        fsync_directory(destination.parent)
    except BaseException:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
        raise
    return destination


def _generation_glob(path: Path) -> str:
    """Glob pattern matching the archived generations of ``path``.

    Archives are dot-prefixed (``.{stem}.gen000123.npz``) so the serving
    registry's ``*.npz`` listing — which rejects dot-prefixed stems — never
    mistakes an old generation for a servable model.
    """
    return f".{path.stem}.gen*{path.suffix}"


def checkpoint_generations(path: str | Path) -> list[Path]:
    """Archived generations of checkpoint ``path``, oldest first.

    The live checkpoint itself (``path``) is not included; an empty list
    means the checkpoint has never been rotated (or does not exist).
    """
    source = Path(path)
    return sorted(source.parent.glob(_generation_glob(source)))


def rotate_checkpoint(path: str | Path, model, *, metadata: dict | None = None,
                      keep: int = 3) -> Path:
    """Write ``model`` as the next *generation* of checkpoint ``path``.

    The continuous-learning write path: the current file (if any) is first
    preserved as a dot-prefixed archive via a hard link (falling back to a
    copy across filesystems), then the new generation atomically replaces
    ``path`` — a reader polling the file (the hot-reload watcher) sees
    either the old complete checkpoint or the new complete checkpoint,
    never a gap and never a partial file.  ``metadata["generation"]`` is
    stamped automatically (one past the current file's generation).  At
    most ``keep`` archived generations are retained, oldest pruned first;
    ``keep=0`` archives nothing.  Returns the destination path.
    """
    if keep < 0:
        raise SerializationError("keep must be >= 0")
    destination = Path(path)
    generation = 0
    if destination.exists():
        try:
            header = read_checkpoint_header(destination)
            generation = int(header.get("metadata", {}).get("generation", 0)) + 1
        except SerializationError:
            # A foreign/corrupt file at the destination: replace it, but
            # do not archive garbage.
            generation = 1
        else:
            if keep > 0:
                archive = destination.parent / \
                    f".{destination.stem}.gen{generation - 1:06d}{destination.suffix}"
                try:
                    os.link(destination, archive)
                except OSError:
                    import shutil
                    shutil.copy2(destination, archive)
    stamped = dict(metadata or {})
    stamped["generation"] = generation
    save_checkpoint(destination, model, metadata=stamped)
    archives = checkpoint_generations(destination)
    for stale in archives[:max(0, len(archives) - keep)]:
        try:
            stale.unlink()
        except OSError:  # pragma: no cover - concurrent prune
            pass
    return destination


def _load_header(payload, path: Path) -> dict:
    if "__header__" not in payload:
        raise SerializationError(
            f"{path} is not a repro checkpoint (missing header entry)")
    try:
        header = json.loads(str(payload["__header__"][()]))
    except (json.JSONDecodeError, ValueError) as exc:
        raise SerializationError(f"{path} has a corrupt header: {exc}") from exc
    if not isinstance(header, dict) or header.get("magic") != CHECKPOINT_MAGIC:
        raise SerializationError(
            f"{path} is not a repro checkpoint (bad magic)")
    version = header.get("version")
    if version != CHECKPOINT_VERSION:
        raise SerializationError(
            f"{path} uses checkpoint format version {version!r}; this build "
            f"reads version {CHECKPOINT_VERSION} — re-save the model with "
            "a matching repro release")
    if "class" not in header or "params" not in header:
        raise SerializationError(f"{path} has an incomplete header")
    return header


def read_checkpoint_header(path: str | Path) -> dict:
    """Read and validate only the header of a checkpoint (cheap).

    The model registry uses this to list models without deserialising their
    weights.  Raises :class:`SerializationError` for anything that is not a
    valid checkpoint of the current format version.
    """
    source = Path(path)
    if not source.exists():
        raise SerializationError(f"checkpoint not found: {source}")
    try:
        with np.load(source, allow_pickle=False) as payload:
            return _load_header(payload, source)
    except SerializationError:
        raise
    except Exception as exc:  # zipfile.BadZipFile, OSError, KeyError, ...
        raise SerializationError(
            f"cannot read checkpoint {source}: {exc}") from exc


def load_checkpoint(path: str | Path):
    """Reconstruct the fitted model stored at ``path``.

    Returns the model instance; its header (including user metadata) is
    attached as ``model.checkpoint_header_`` for callers that need the
    training context (the serving layer reads task/embedding from it).
    """
    source = Path(path)
    if not source.exists():
        raise SerializationError(f"checkpoint not found: {source}")
    classes = checkpointable_classes()
    try:
        with np.load(source, allow_pickle=False) as payload:
            header = _load_header(payload, source)
            # Resolve the class *before* touching arrays so its lazy
            # members (mmap-served inverted lists) are never materialised.
            skip = _lazy_member_prefix(classes.get(header["class"]))
            arrays = {name[len(_ARRAY_PREFIX):]: payload[name]
                      for name in payload.files
                      if name.startswith(_ARRAY_PREFIX)
                      and not (skip and name.startswith(skip))}
    except SerializationError:
        raise
    except Exception as exc:
        raise SerializationError(
            f"cannot read checkpoint {source}: {exc}") from exc

    cls = classes.get(header["class"])
    if cls is None:
        raise SerializationError(
            f"{source} stores a {header['class']!r} model, which this build "
            f"does not know how to load (expected one of {sorted(classes)})")
    try:
        model = cls.from_checkpoint(header["params"], arrays)
        if skip is not None:
            model.attach_store(source)
    except SerializationError:
        raise
    except Exception as exc:
        raise SerializationError(
            f"checkpoint {source} is inconsistent for class "
            f"{header['class']}: {exc}") from exc
    model.checkpoint_header_ = header
    return model


# ---------------------------------------------------------------------------
# Shared-memory-backed checkpoint loading (the pre-fork serving pool).
#
# A pool of N worker processes serving one model directory would otherwise
# hold N private copies of every checkpoint's arrays.  The parent instead
# loads each checkpoint's arrays once into ``multiprocessing.shared_memory``
# segments *before* forking and hands the workers a JSON-able manifest
# (path -> mtime + per-array segment name/dtype/shape); a worker's registry
# attaches the segments and rebuilds the model on zero-copy, read-only
# views.  A checkpoint rotated after boot no longer matches its manifest
# mtime and silently falls back to an ordinary disk load, so hot reload
# keeps working — shared memory is a boot-time dedup, not a cache layer.


class _MappedSegment:
    """Read-only ``mmap`` of a POSIX shared-memory segment.

    Duck-types the one attribute attachment needs (``buf``) without going
    through :class:`multiprocessing.shared_memory.SharedMemory`, whose
    attach path registers the segment with the *shared* resource-tracker
    process — N workers attaching the same name dedupe in the tracker's
    set, so their balanced unregisters race into KeyError noise (and on
    Python < 3.13 a worker exit could even unlink the parent's segment).
    A plain mapping of ``/dev/shm/<name>`` has no lifetime side effects
    at all: the parent alone owns creation and unlinking.
    """

    def __init__(self, path) -> None:
        import mmap

        with open(path, "rb") as handle:
            self._map = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        self.buf = memoryview(self._map)


def _attach_segment(name: str):
    """Attach an existing shared-memory segment without owning its lifetime."""
    shm_path = Path("/dev/shm") / name
    if shm_path.exists():
        return _MappedSegment(shm_path)
    # Non-Linux fallback: the stdlib attach.  3.13+ has track=False for
    # exactly this use; older versions need the unregister dance (which
    # can still produce harmless tracker noise across many workers).
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13, non-Linux
        segment = shared_memory.SharedMemory(name=name)
        try:
            from multiprocessing import resource_tracker
            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:
            pass
        return segment


class SharedCheckpointStore:
    """Parent-side owner of shared-memory copies of checkpoint arrays.

    ``share(path)`` loads one checkpoint's arrays into fresh segments;
    ``share_directory(model_dir)`` sweeps every servable checkpoint.  The
    resulting :attr:`manifest` is picklable and travels to the workers
    (fork, forkserver or spawn — workers attach by segment name either
    way).  The store must outlive the workers; ``close()`` unlinks every
    segment.  Checkpoints that cannot be shared (unreadable, empty) are
    skipped rather than failing the boot — sharing is an optimisation,
    never a correctness requirement.
    """

    def __init__(self, prefix: str = "repro-ckpt") -> None:
        self.prefix = prefix
        self.manifest: dict[str, dict] = {}
        self._segments: list = []
        self._counter = 0

    def share(self, path: str | Path) -> bool:
        """Load ``path``'s arrays into shared memory; was it shared?"""
        from multiprocessing import shared_memory

        source = Path(path).resolve()
        try:
            with np.load(source, allow_pickle=False) as payload:
                header = _load_header(payload, source)
                # Lazy members stay on disk: every worker mmaps the same
                # file, so the page cache already dedups them — copying
                # them into /dev/shm would *add* a resident copy.
                skip = _lazy_member_prefix(
                    checkpointable_classes().get(header.get("class")))
                arrays = {name[len(_ARRAY_PREFIX):]: payload[name]
                          for name in payload.files
                          if name.startswith(_ARRAY_PREFIX)
                          and not (skip and name.startswith(skip))}
            mtime_ns = source.stat().st_mtime_ns
        except Exception:  # corrupt/foreign/unreadable: worker loads privately
            return False
        entries: dict[str, dict] = {}
        created: list = []
        try:
            for name, array in arrays.items():
                array = np.ascontiguousarray(array)
                spec = {"dtype": array.dtype.str,
                        "shape": [int(dim) for dim in array.shape]}
                if array.nbytes == 0:
                    # A zero-byte segment is invalid; the shape+dtype alone
                    # reconstruct an empty array exactly.
                    spec["empty"] = True
                else:
                    self._counter += 1
                    segment = shared_memory.SharedMemory(
                        create=True, size=array.nbytes,
                        name=f"{self.prefix}-{os.getpid()}-{self._counter}")
                    created.append(segment)
                    view = np.ndarray(array.shape, dtype=array.dtype,
                                      buffer=segment.buf)
                    view[...] = array
                    spec["segment"] = segment.name
                entries[name] = spec
        except OSError:
            # /dev/shm full or unavailable: roll back this checkpoint's
            # segments and serve it from per-worker private copies instead.
            for segment in created:
                segment.close()
                try:
                    segment.unlink()
                except OSError:  # pragma: no cover - already gone
                    pass
            return False
        self._segments.extend(created)
        self.manifest[str(source)] = {"mtime_ns": mtime_ns,
                                      "header": header, "arrays": entries}
        return True

    def share_directory(self, model_dir: str | Path) -> list[str]:
        """Share every servable ``*.npz`` checkpoint in ``model_dir``."""
        shared = []
        for path in sorted(Path(model_dir).glob("*.npz")):
            if path.stem.startswith("."):
                continue
            if self.share(path):
                shared.append(path.stem)
        return shared

    @property
    def nbytes(self) -> int:
        """Total bytes resident in shared segments."""
        return sum(segment.size for segment in self._segments)

    def close(self, *, unlink: bool = True) -> None:
        """Detach (and by default destroy) every owned segment."""
        segments, self._segments = self._segments, []
        self.manifest.clear()
        for segment in segments:
            try:
                segment.close()
                if unlink:
                    segment.unlink()
            except OSError:  # pragma: no cover - concurrent shutdown
                pass

    def __enter__(self) -> "SharedCheckpointStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: Worker-side attachments, keyed by segment name.  The arrays handed to
#: ``from_checkpoint`` are views into these buffers, so the SharedMemory
#: objects must stay referenced for as long as any model might.
_ATTACHED_SEGMENTS: dict[str, object] = {}


def attach_shared_checkpoint(path: str | Path, manifest: dict):
    """Rebuild the model at ``path`` from a shared-memory manifest.

    Returns the model (its arrays zero-copy, read-only views into the
    parent's segments) or ``None`` when the checkpoint is not in the
    manifest, was rotated since the manifest was built (mtime mismatch),
    or cannot be attached — callers fall back to :func:`load_checkpoint`.
    A model whose ``from_checkpoint`` insists on writable arrays gets
    private copies of just those arrays rather than failing.
    """
    source = Path(path).resolve()
    entry = manifest.get(str(source))
    if entry is None:
        return None
    try:
        if source.stat().st_mtime_ns != entry["mtime_ns"]:
            return None
    except OSError:
        return None
    header = entry["header"]
    cls = checkpointable_classes().get(header.get("class"))
    if cls is None:
        return None
    arrays: dict[str, np.ndarray] = {}
    try:
        for name, spec in entry["arrays"].items():
            dtype = np.dtype(spec["dtype"])
            shape = tuple(spec["shape"])
            if spec.get("empty"):
                arrays[name] = np.empty(shape, dtype=dtype)
                continue
            segment = _ATTACHED_SEGMENTS.get(spec["segment"])
            if segment is None:
                segment = _attach_segment(spec["segment"])
                _ATTACHED_SEGMENTS[spec["segment"]] = segment
            view = np.ndarray(shape, dtype=dtype, buffer=segment.buf)
            view.flags.writeable = False
            arrays[name] = view
    except (OSError, ValueError, FileNotFoundError):
        return None
    try:
        model = cls.from_checkpoint(header["params"], arrays)
    except ValueError:
        # from_checkpoint mutates its arrays (read-only views reject the
        # write): hand it private copies — correctness over sharing.
        try:
            model = cls.from_checkpoint(
                header["params"],
                {name: np.array(array) for name, array in arrays.items()})
        except Exception:
            return None
    except Exception:
        return None
    if _lazy_member_prefix(cls) is not None:
        # The shared segments cover only the eager arrays; lazy members
        # (mmap-served cells) attach from the checkpoint file itself.
        try:
            model.attach_store(source)
        except Exception:
            return None
    model.checkpoint_header_ = header
    return model
