"""Synthetic T2D-style web tables for schema inference (Section 5).

The real benchmark (T2D Entity-Level Gold standard) contains web tables
annotated with the DBpedia class they describe; after the paper's filtering
it has 429 tables over 26 classes with heavily imbalanced class sizes.  The
generator reproduces that structure:

* every *class* (drawn from the ontology's ``webtable_class`` concepts) has
  a characteristic schema: a subject attribute plus a class-specific set of
  attribute concepts;
* tables of the same class use overlapping but not identical attribute
  subsets, and pick different surface forms (synonyms) for their headers —
  the property that separates semantic (SBERT-style) from syntactic
  (FastText-style) representations;
* cell values are drawn from class-specific vocabularies so that
  instance-level overlap between tables of the same class is *low*, which
  is why adding instance-level evidence hurts schema inference in the paper
  (Section 5.2);
* class sizes follow a skewed (roughly geometric) distribution, giving the
  imbalance the paper highlights (mean cluster cardinality 16.5 with many
  small clusters).
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..config import make_rng
from ..exceptions import DatasetError
from .ontology import Ontology, default_ontology
from .table import Table, TableClusteringDataset

__all__ = ["generate_webtables", "class_schema"]


def _stable_seed(name: str) -> int:
    """Process-independent RNG seed derived from a string."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


def class_schema(class_concept: str, ontology: Ontology,
                 rng: np.random.Generator, *, n_attributes: int = 6) -> list[str]:
    """Pick the attribute concepts that characterise one table class."""
    attributes = [c.name for c in ontology.by_category("webtable_attribute")]
    if not attributes:
        raise DatasetError("ontology has no webtable_attribute concepts")
    n_attributes = min(n_attributes, len(attributes))
    chosen = rng.choice(len(attributes), size=n_attributes, replace=False)
    schema = [attributes[i] for i in sorted(chosen)]
    # Every class gets a name-like subject attribute first.
    if "attr::name" in schema:
        schema.remove("attr::name")
    return ["attr::name"] + schema


def _class_sizes(n_tables: int, n_classes: int,
                 rng: np.random.Generator) -> np.ndarray:
    """Imbalanced class sizes that sum to ``n_tables`` (min 2 per class)."""
    if n_tables < 2 * n_classes:
        raise DatasetError(
            f"need at least {2 * n_classes} tables for {n_classes} classes")
    weights = np.sort(rng.pareto(1.5, size=n_classes) + 1.0)[::-1]
    sizes = np.maximum(2, np.round(weights / weights.sum()
                                   * (n_tables - 2 * n_classes)).astype(int) + 2)
    # Adjust to hit the exact total.
    while sizes.sum() > n_tables:
        sizes[np.argmax(sizes)] -= 1
    while sizes.sum() < n_tables:
        sizes[np.argmin(sizes)] += 1
    return sizes


def _value_for(attribute: str, class_name: str, row: int,
               rng: np.random.Generator) -> object:
    """Generate a cell value for an attribute within a class vocabulary."""
    token = attribute.split("::", 1)[-1].replace(" ", "_")
    class_token = class_name.split("::", 1)[-1].replace(" ", "_")
    roll = rng.random()
    if any(key in token for key in ("population", "rank", "year", "count",
                                    "revenue", "employees", "area", "pages",
                                    "students", "capacity", "price", "length",
                                    "height", "elevation", "depth", "speed",
                                    "weight", "founded", "density", "isbn")):
        return int(rng.integers(1, 100000))
    if roll < 0.15:
        return None if rng.random() < 0.3 else int(rng.integers(1, 5000))
    entity = rng.integers(0, 40)
    return f"{class_token} {token} {entity}"


#: Headers real web tables use when the column has no meaningful name; they
#: collide across classes and keep schema-level clustering from being trivial.
_NOISY_HEADERS = ["column", "field", "unnamed", "value", "info", "data",
                  "item", "entry"]


def generate_webtables(n_tables: int = 120, n_classes: int = 26, *,
                       rows_per_table: tuple[int, int] = (5, 20),
                       header_noise: float = 0.2,
                       seed: int | None = None,
                       ontology: Ontology | None = None) -> TableClusteringDataset:
    """Generate a T2D-like table clustering dataset.

    Parameters
    ----------
    n_tables, n_classes:
        Total number of tables and of ground-truth classes (the paper's
        filtered T2Dv1 has 429 tables over 26 classes).
    rows_per_table:
        Inclusive range of row counts per table.
    header_noise:
        Probability that a column header is replaced by a generic,
        class-agnostic header (web tables are noisy; this keeps the
        schema-level task realistically hard).
    """
    ontology = ontology or default_ontology()
    rng = make_rng(seed)
    class_concepts = [c.name for c in ontology.by_category("webtable_class")]
    if n_classes > len(class_concepts):
        # Cycle class concepts with a numeric suffix when more classes are
        # requested than the ontology defines.
        class_concepts = [f"{class_concepts[i % len(class_concepts)]}#{i}"
                          for i in range(n_classes)]
    else:
        class_concepts = class_concepts[:n_classes]

    sizes = _class_sizes(n_tables, n_classes, rng)
    # Seed each class schema from a *stable* digest of the class name:
    # the builtin hash() is randomised per process (PYTHONHASHSEED), which
    # would make the generated corpus — and every embedding derived from
    # it — differ between runs and defeat the cross-process artifact cache.
    schemas = {name: class_schema(name.split("#", 1)[0], ontology,
                                  make_rng(_stable_seed(name)))
               for name in class_concepts}

    tables: list[Table] = []
    labels: list[int] = []
    for class_index, (class_name, size) in enumerate(zip(class_concepts, sizes)):
        schema = schemas[class_name]
        for table_index in range(size):
            # Each table keeps the subject attribute and a random subset of
            # the other attributes (at least 60%).
            others = schema[1:]
            keep = max(2, int(np.ceil(len(others) * rng.uniform(0.6, 1.0))))
            chosen = [others[i] for i in
                      sorted(rng.choice(len(others), size=keep, replace=False))]
            attributes = [schema[0]] + chosen

            n_rows = int(rng.integers(rows_per_table[0], rows_per_table[1] + 1))
            columns: dict[str, list[object]] = {}
            for attribute in attributes:
                base_name = attribute.split("#", 1)[0]
                forms = ontology.surface_forms(base_name) \
                    if base_name in ontology else (attribute,)
                if rng.random() < header_noise:
                    header = (f"{_NOISY_HEADERS[int(rng.integers(len(_NOISY_HEADERS)))]}"
                              f" {int(rng.integers(1, 9))}")
                else:
                    header = str(forms[int(rng.integers(len(forms)))])
                if header in columns:
                    header = f"{header} {len(columns)}"
                columns[header] = [
                    _value_for(attribute, class_name, row, rng)
                    for row in range(n_rows)
                ]
            tables.append(Table(name=f"webtable_{class_index}_{table_index}",
                                columns=columns,
                                metadata={"class": class_name}))
            labels.append(class_index)

    return TableClusteringDataset(
        tables=tables,
        labels=np.array(labels, dtype=np.int64),
        name="web tables",
        metadata={"n_classes": n_classes, "seed": seed, "sources": None},
    )
