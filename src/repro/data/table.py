"""Core tabular data model: tables, columns, records and dataset containers.

The three data-integration tasks cluster different granularities of the same
underlying model (Section 1): schema inference clusters *tables*, entity
resolution clusters *rows* (records), and domain discovery clusters
*columns*.  The containers defined here carry the items to cluster together
with their ground-truth labels and per-item provenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import DataValidationError

__all__ = [
    "Table",
    "Column",
    "Record",
    "TableClusteringDataset",
    "RecordClusteringDataset",
    "ColumnClusteringDataset",
]


@dataclass
class Table:
    """A named table stored column-wise.

    ``columns`` maps a header string to the list of cell values in that
    column; all columns must have equal length.
    """

    name: str
    columns: dict[str, list[object]]
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        lengths = {len(values) for values in self.columns.values()}
        if len(lengths) > 1:
            raise DataValidationError(
                f"table {self.name!r} has ragged columns (lengths {sorted(lengths)})")

    @property
    def column_names(self) -> list[str]:
        return list(self.columns.keys())

    @property
    def n_rows(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    @property
    def n_columns(self) -> int:
        return len(self.columns)

    def rows(self) -> list[tuple]:
        """Return the table contents as a list of row tuples."""
        names = self.column_names
        return [tuple(self.columns[name][i] for name in names)
                for i in range(self.n_rows)]

    def records(self) -> list["Record"]:
        """Return the rows as :class:`Record` objects."""
        names = self.column_names
        return [Record(values={name: self.columns[name][i] for name in names},
                       source=self.name, identifier=f"{self.name}#{i}")
                for i in range(self.n_rows)]

    def header_text(self) -> str:
        """Concatenated attribute names (the paper's schema-level table string)."""
        return " ".join(str(name) for name in self.column_names)

    def column(self, name: str) -> "Column":
        """Return a single column as a :class:`Column` object."""
        if name not in self.columns:
            raise KeyError(f"table {self.name!r} has no column {name!r}")
        return Column(header=name, values=list(self.columns[name]),
                      table_name=self.name)


@dataclass
class Column:
    """A single table column: header plus cell values."""

    header: str
    values: list[object]
    table_name: str = ""
    metadata: dict = field(default_factory=dict)

    @property
    def n_values(self) -> int:
        return len(self.values)

    def text(self, *, max_values: int | None = 20) -> str:
        """Header and (a sample of) values as one string for sentence encoders."""
        values = self.values if max_values is None else self.values[:max_values]
        cells = " ".join("" if value is None else str(value) for value in values)
        return f"{self.header} {cells}".strip()


@dataclass
class Record:
    """A single row: attribute -> value mapping plus provenance."""

    values: dict[str, object]
    source: str = ""
    identifier: str = ""
    metadata: dict = field(default_factory=dict)

    def text(self) -> str:
        """Attribute-value rendering used by sentence encoders for rows."""
        parts = []
        for attribute, value in self.values.items():
            if value is None or value == "":
                continue
            parts.append(f"{attribute}: {value}")
        return ", ".join(parts)

    @property
    def attributes(self) -> list[str]:
        return list(self.values.keys())


def _check_labels_match(n_items: int, labels) -> np.ndarray:
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1 or labels.shape[0] != n_items:
        raise DataValidationError(
            f"labels must be a 1-D array with {n_items} entries, "
            f"got shape {labels.shape}")
    return labels


@dataclass
class TableClusteringDataset:
    """Schema inference input: a set of tables with class labels."""

    tables: list[Table]
    labels: np.ndarray
    name: str = "tables"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.labels = _check_labels_match(len(self.tables), self.labels)

    @property
    def n_items(self) -> int:
        return len(self.tables)

    @property
    def n_clusters(self) -> int:
        return int(np.unique(self.labels).size)


@dataclass
class RecordClusteringDataset:
    """Entity resolution input: records with real-world-entity labels."""

    records: list[Record]
    labels: np.ndarray
    name: str = "records"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.labels = _check_labels_match(len(self.records), self.labels)

    @property
    def n_items(self) -> int:
        return len(self.records)

    @property
    def n_clusters(self) -> int:
        return int(np.unique(self.labels).size)

    @property
    def n_sources(self) -> int:
        return len({record.source for record in self.records if record.source})


@dataclass
class ColumnClusteringDataset:
    """Domain discovery input: columns with domain labels."""

    columns: list[Column]
    labels: np.ndarray
    name: str = "columns"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.labels = _check_labels_match(len(self.columns), self.labels)

    @property
    def n_items(self) -> int:
        return len(self.columns)

    @property
    def n_clusters(self) -> int:
        return int(np.unique(self.labels).size)

    @property
    def n_sources(self) -> int:
        return len({column.table_name for column in self.columns
                    if column.table_name})
