"""Tabular data model and synthetic benchmark generators.

The paper evaluates on six third-party benchmarks (Table 1): T2D web tables
and TUS for schema inference, MusicBrainz 2K and Geographic Settlements for
entity resolution, and the Di2KG Camera and Monitor datasets for domain
discovery.  Those corpora cannot be redistributed or downloaded in this
offline environment, so this package provides *generators* that synthesise
datasets with the same structure and the same heterogeneity phenomena the
paper analyses (synonym/homonym headers, abbreviations, unit and format
variants, missing values, imbalanced cluster cardinalities).  Every
generator takes explicit size parameters and a seed.
"""

from .table import (
    Column,
    Table,
    Record,
    TableClusteringDataset,
    RecordClusteringDataset,
    ColumnClusteringDataset,
)
from .ontology import Concept, Ontology, default_ontology
from .corruption import (
    abbreviate,
    corrupt_year,
    corrupt_duration,
    drop_value,
    introduce_typo,
    vary_case,
)
from .webtables import generate_webtables
from .tus import generate_tus
from .musicbrainz import generate_musicbrainz, generate_musicbrainz_scalability
from .geographic import generate_geographic_settlements
from .dikg import generate_camera, generate_monitor
from .profiles import DatasetProfile, profile_datasets

__all__ = [
    "Column",
    "Table",
    "Record",
    "TableClusteringDataset",
    "RecordClusteringDataset",
    "ColumnClusteringDataset",
    "Concept",
    "Ontology",
    "default_ontology",
    "abbreviate",
    "corrupt_year",
    "corrupt_duration",
    "drop_value",
    "introduce_typo",
    "vary_case",
    "generate_webtables",
    "generate_tus",
    "generate_musicbrainz",
    "generate_musicbrainz_scalability",
    "generate_geographic_settlements",
    "generate_camera",
    "generate_monitor",
    "DatasetProfile",
    "profile_datasets",
]
