"""Concept ontology backing both the benchmark generators and the SBERT
substitute.

The original experiments rely on a pre-trained sentence transformer whose
defining property (for the paper's analyses) is that *semantically*
equivalent surface forms — synonyms (``lens`` / ``optical zoom``),
abbreviations (``Eng.`` / ``English``), format variants (``4m 2sec`` /
``242``) — are mapped to nearby vectors even when they share no characters.
Offline we cannot load such a model, so the library ships a small concept
ontology: every concept has a canonical name and a set of surface forms.
The synthetic benchmark generators draw their headers and values from these
surface forms, and :class:`repro.embeddings.sbert.SBERTEncoder` uses the
same ontology to map any surface form of a concept near that concept's
latent vector.  Text that is not covered by the ontology falls back to
deterministic hashing, so the encoder also works on arbitrary input.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..utils.text import normalize_text

__all__ = ["Concept", "Ontology", "default_ontology"]


@dataclass(frozen=True)
class Concept:
    """A semantic concept with its known surface forms.

    ``category`` groups concepts (e.g. ``"camera_domain"``,
    ``"music_value"``) so generators can enumerate the concepts relevant to
    one benchmark.
    """

    name: str
    surface_forms: tuple[str, ...]
    category: str = "generic"

    def __post_init__(self) -> None:
        if not self.surface_forms:
            raise ValueError(f"concept {self.name!r} needs at least one surface form")


class Ontology:
    """A collection of concepts with normalised surface-form lookup."""

    def __init__(self, concepts: list[Concept] | None = None) -> None:
        self._concepts: dict[str, Concept] = {}
        self._surface_index: dict[str, str] = {}
        for concept in concepts or []:
            self.add(concept)

    # ------------------------------------------------------------------
    def add(self, concept: Concept) -> None:
        """Register a concept and index all of its surface forms."""
        if concept.name in self._concepts:
            raise ValueError(f"duplicate concept name {concept.name!r}")
        self._concepts[concept.name] = concept
        for form in concept.surface_forms:
            normalised = normalize_text(form)
            if normalised:
                # Later concepts never override earlier surface forms; the
                # first registration wins, mirroring homonyms in real data
                # (the same header may denote different domains in different
                # sources — exactly the ambiguity the paper discusses).
                self._surface_index.setdefault(normalised, concept.name)

    def __len__(self) -> int:
        return len(self._concepts)

    def __contains__(self, name: str) -> bool:
        return name in self._concepts

    @property
    def concepts(self) -> list[Concept]:
        return list(self._concepts.values())

    def concept(self, name: str) -> Concept:
        return self._concepts[name]

    def by_category(self, category: str) -> list[Concept]:
        """All concepts in a category (insertion order)."""
        return [c for c in self._concepts.values() if c.category == category]

    def lookup(self, text: object) -> str | None:
        """Return the concept name whose surface form matches ``text``."""
        normalised = normalize_text(text)
        if not normalised:
            return None
        return self._surface_index.get(normalised)

    def surface_forms(self, name: str) -> tuple[str, ...]:
        return self._concepts[name].surface_forms

    # ------------------------------------------------------------------
    def concept_vector(self, name: str, dim: int) -> np.ndarray:
        """Deterministic latent vector for a concept.

        The vector is derived from a hash of the concept name so that it is
        stable across processes and independent of registration order.
        """
        digest = hashlib.sha256(f"concept::{name}".encode("utf-8")).digest()
        seed = int.from_bytes(digest[:8], "little")
        rng = np.random.default_rng(seed)
        vector = rng.normal(size=dim)
        return vector / np.linalg.norm(vector)


# ----------------------------------------------------------------------
# Default ontology construction
# ----------------------------------------------------------------------
def _webtable_concepts() -> list[Concept]:
    """Concepts for the T2D-style web tables benchmark (classes + attributes)."""
    classes = {
        "country": ["country", "nation", "state name"],
        "film": ["film", "movie", "motion picture"],
        "bird": ["bird", "bird species"],
        "company": ["company", "corporation", "firm"],
        "city": ["city", "town", "municipality"],
        "animal": ["animal", "species"],
        "book": ["book", "novel", "publication"],
        "university": ["university", "college", "institution"],
        "mountain": ["mountain", "peak", "summit"],
        "lake": ["lake", "reservoir"],
        "airline": ["airline", "air carrier"],
        "currency": ["currency", "monetary unit"],
        "president": ["president", "head of state"],
        "athlete": ["athlete", "sports person", "player"],
        "video game": ["video game", "computer game"],
        "song": ["song", "single", "track"],
        "newspaper": ["newspaper", "daily", "gazette"],
        "hospital": ["hospital", "medical center", "clinic"],
        "museum": ["museum", "gallery"],
        "bridge": ["bridge", "crossing"],
        "stadium": ["stadium", "arena", "sports ground"],
        "language": ["language", "tongue"],
        "element": ["chemical element", "element"],
        "planet": ["planet", "celestial body"],
        "river": ["river", "waterway"],
        "volcano": ["volcano", "volcanic mountain"],
    }
    attributes = {
        "name": ["name", "title", "label"],
        "country_attr": ["country", "nation", "country name"],
        "population": ["population", "total population", "inhabitants",
                       "population 2004 million"],
        "population growth": ["annual population growth rate",
                              "population growth", "growth rate"],
        "population density": ["population density",
                               "population density persons per square km",
                               "density"],
        "household size": ["average number of persons per household",
                           "household size"],
        "rank": ["rank", "overall rank", "position", "fans rank"],
        "year": ["year", "release year", "date"],
        "director": ["director", "film director", "directed by"],
        "film_title": ["title", "film title", "movie title"],
        "scientific name": ["scientific name", "latin name", "binomial name"],
        "common name": ["common name", "vernacular name"],
        "family": ["family", "taxonomic family"],
        "count": ["total count", "high count", "count"],
        "day": ["day", "observation day"],
        "revenue": ["revenue", "turnover", "sales"],
        "employees": ["employees", "number of employees", "staff"],
        "headquarters": ["headquarters", "head office", "hq location"],
        "industry": ["industry", "sector", "business"],
        "area": ["area", "surface area", "land area"],
        "capital": ["capital", "capital city"],
        "mayor": ["mayor", "city mayor"],
        "elevation": ["elevation", "altitude", "height above sea level"],
        "length": ["length", "total length"],
        "height": ["height", "tallness"],
        "author": ["author", "writer", "written by"],
        "publisher": ["publisher", "publishing house"],
        "isbn": ["isbn", "isbn number"],
        "pages": ["pages", "number of pages", "page count"],
        "students": ["students", "enrollment", "student body"],
        "founded": ["founded", "established", "founding year"],
        "location": ["location", "place", "situated in"],
        "date of information": ["date of information", "as of date"],
        "currency_code": ["currency code", "iso code", "code"],
        "symbol": ["symbol", "ticker", "ticker symbol"],
        "price": ["price", "cost", "list price"],
        "artist": ["artist", "performer", "singer"],
        "album": ["album", "record"],
        "genre": ["genre", "style", "category"],
        "coach": ["coach", "head coach", "manager"],
        "team": ["team", "club", "squad"],
        "capacity": ["capacity", "seating capacity", "seats"],
        "depth": ["depth", "maximum depth"],
        "speed": ["speed", "top speed", "maximum speed"],
        "weight": ["weight", "mass"],
    }
    concepts = [Concept(f"class::{name}", tuple(forms), "webtable_class")
                for name, forms in classes.items()]
    concepts.extend(Concept(f"attr::{name}", tuple(forms), "webtable_attribute")
                    for name, forms in attributes.items())
    return concepts


def _music_concepts() -> list[Concept]:
    """Concepts for MusicBrainz-style entity resolution data."""
    attributes = {
        "music_title": ["title", "song title", "track name"],
        "music_length": ["length", "duration", "playing time"],
        "music_artist": ["artist", "performer", "band"],
        "music_album": ["album", "release", "record"],
        "music_year": ["year", "release year", "date"],
        "music_language": ["language", "lang"],
        "music_number": ["number", "track number", "position"],
    }
    languages = {
        "language_english": ["English", "Eng.", "eng", "en"],
        "language_french": ["French", "Fre.", "fre", "fr", "francais"],
        "language_spanish": ["Spanish", "Spa.", "spa", "es", "espanol"],
        "language_german": ["German", "Ger.", "ger", "de", "deutsch"],
        "language_italian": ["Italian", "Ita.", "ita", "it", "italiano"],
        "language_portuguese": ["Portuguese", "Por.", "por", "pt"],
        "language_dutch": ["Dutch", "Dut.", "dut", "nl"],
        "language_polish": ["Polish", "Pol.", "pol", "pl"],
        "language_swedish": ["Swedish", "Swe.", "swe", "sv"],
        "language_finnish": ["Finnish", "Fin.", "fin", "fi"],
        "language_hungarian": ["Hungarian", "Hun.", "hun", "hu"],
        "language_greek": ["Greek", "Gre.", "gre", "el"],
    }
    concepts = [Concept(name, tuple(forms), "music_attribute")
                for name, forms in attributes.items()]
    concepts.extend(Concept(name, tuple(forms), "music_language")
                    for name, forms in languages.items())
    return concepts


def _geographic_concepts() -> list[Concept]:
    attributes = {
        "geo_name": ["name", "settlement name", "place name", "label"],
        "geo_country": ["country", "country name", "nation"],
        "geo_latitude": ["latitude", "lat"],
        "geo_longitude": ["longitude", "long", "lon"],
        "geo_population": ["population", "inhabitants", "pop"],
        "geo_type": ["type", "settlement type", "place type"],
    }
    return [Concept(name, tuple(forms), "geographic_attribute")
            for name, forms in attributes.items()]


def _camera_concepts() -> list[Concept]:
    """Domain concepts for the Di2KG Camera dataset (synonyms across shops)."""
    domains = {
        "camera_brand": ["brand", "manufacturer", "brand name", "make"],
        "camera_model": ["model", "model name", "model number"],
        "sensor size": ["sensor size", "sensor", "sensor dimensions",
                        "imaging sensor size"],
        "sensor type": ["sensor type", "image sensor type", "sensor technology"],
        "optical zoom": ["optical zoom", "lens", "normalized optical zoom",
                         "zoom optical"],
        "digital zoom": ["digital zoom", "zoom digital"],
        "megapixels": ["megapixels", "effective pixels", "resolution mp",
                       "image size pixels", "max resolution"],
        "image format": ["image format", "file format", "image file format",
                         "picture format"],
        "iso": ["iso", "iso sensitivity", "light sensitivity", "iso rating"],
        "shutter speed": ["shutter speed", "shutter", "exposure time"],
        "aperture": ["aperture", "max aperture", "lens aperture", "f number"],
        "focal length": ["focal length", "lens focal length", "focal range"],
        "camera_dimensions": ["dimensions", "size", "physical dimensions",
                              "dimensions w x h x d"],
        "camera_weight": ["weight", "item weight", "camera weight"],
        "screen size": ["screen size", "display size", "lcd size",
                        "monitor size", "screen type"],
        "screen resolution": ["screen resolution", "display resolution",
                              "lcd resolution"],
        "battery type": ["battery type", "battery", "power source"],
        "battery life": ["battery life", "shots per charge", "battery shots"],
        "video resolution": ["video resolution", "movie resolution",
                             "max video resolution"],
        "storage type": ["storage type", "memory card type", "media type",
                         "storage media"],
        "interface": ["interface", "connectivity", "ports", "connections"],
        "flash": ["flash", "built in flash", "flash type"],
        "viewfinder": ["viewfinder", "viewfinder type"],
        "white balance": ["white balance", "wb settings"],
        "exposure modes": ["exposure modes", "shooting modes", "scene modes"],
        "focus type": ["focus type", "autofocus", "af system", "focus system"],
        "color": ["color", "colour", "body color"],
        "camera_price": ["price", "list price", "retail price"],
        "camera_type": ["camera type", "type", "lens type", "style"],
        "warranty": ["warranty", "warranty period", "guarantee"],
        "lens mount": ["lens mount", "mount", "mount type"],
        "continuous shooting": ["continuous shooting", "burst rate",
                                "frames per second", "fps"],
        "gps": ["gps", "built in gps", "geotagging"],
        "wifi": ["wifi", "wi fi", "wireless", "wireless connectivity"],
        "hdmi": ["hdmi", "hdmi output", "hdmi port"],
        "touchscreen": ["touchscreen", "touch screen", "touch display"],
        "stabilization": ["image stabilization", "stabilization",
                          "anti shake", "vibration reduction"],
        "self timer": ["self timer", "timer"],
        "release date": ["release date", "announced", "launch date"],
        "series": ["series", "product line", "family"],
    }
    return [Concept(name, tuple(forms), "camera_domain")
            for name, forms in domains.items()]


def _monitor_concepts() -> list[Concept]:
    domains = {
        "monitor_brand": ["brand", "manufacturer", "brand name"],
        "monitor_model": ["model", "model name", "part number"],
        "monitor screen size": ["screen size", "display size", "diagonal size",
                                "screen"],
        "monitor resolution": ["resolution", "max resolutions", "native resolution",
                               "supported graphics resolutions"],
        "aspect ratio": ["aspect ratio", "image aspect ratio"],
        "panel type": ["panel type", "display technology", "panel technology"],
        "refresh rate": ["refresh rate", "vertical refresh rate", "frame rate"],
        "response time": ["response time", "pixel response time", "gtg response"],
        "brightness": ["brightness", "luminance", "cd m2"],
        "contrast ratio": ["contrast ratio", "dynamic contrast", "contrast"],
        "viewing angle": ["viewing angle", "horizontal viewing angle",
                          "vertical viewing angle"],
        "color support": ["color support", "display colors", "color depth",
                          "colors supported"],
        "hdmi ports": ["hdmi", "hdmi ports", "hdmi inputs"],
        "vga port": ["vga", "vga port", "d sub"],
        "dvi port": ["dvi", "dvi port", "dvi d"],
        "displayport": ["displayport", "display port", "dp"],
        "usb ports": ["usb", "usb ports", "usb hub"],
        "speakers": ["speakers", "built in speakers", "audio output"],
        "headphone output": ["headphone outputs", "headphone out",
                             "headphone jack", "audio line out"],
        "vesa mount": ["vesa mount", "vesa", "wall mountable"],
        "monitor_dimensions": ["dimensions", "dimensions with stand",
                               "product dimensions"],
        "monitor_weight": ["weight", "weight with stand", "net weight"],
        "power consumption": ["power consumption", "power usage",
                              "energy consumption"],
        "power supply": ["power supply", "power source", "voltage"],
        "curved": ["curved", "curved screen", "curvature"],
        "touchscreen monitor": ["touchscreen", "touch screen", "touch support"],
        "tilt": ["tilt", "tilt angle", "tilt adjustment"],
        "swivel": ["swivel", "swivel angle"],
        "height adjustment": ["height adjustment", "height adjustable"],
        "pivot": ["pivot", "pivot rotation"],
        "backlight": ["backlight", "backlight technology", "led backlight"],
        "monitor_color": ["color", "colour", "cabinet color"],
        "monitor_price": ["price", "list price", "msrp"],
        "warranty monitor": ["warranty", "warranty period"],
        "energy rating": ["energy star", "energy rating", "energy class"],
        "sync technology": ["freesync", "g sync", "adaptive sync",
                            "sync technology"],
        "hdr": ["hdr", "hdr support", "high dynamic range"],
        "blue light filter": ["blue light filter", "low blue light",
                              "eye saver mode"],
        "flicker free": ["flicker free", "anti flicker"],
        "release year monitor": ["release year", "year", "launch year"],
        "screen coating": ["screen coating", "anti glare", "matte", "glossy"],
    }
    return [Concept(name, tuple(forms), "monitor_domain")
            for name, forms in domains.items()]


_DEFAULT: Ontology | None = None


def default_ontology() -> Ontology:
    """Return the library's built-in ontology (constructed once, cached)."""
    global _DEFAULT
    if _DEFAULT is None:
        concepts: list[Concept] = []
        concepts.extend(_webtable_concepts())
        concepts.extend(_music_concepts())
        concepts.extend(_geographic_concepts())
        concepts.extend(_camera_concepts())
        concepts.extend(_monitor_concepts())
        _DEFAULT = Ontology(concepts)
    return _DEFAULT
