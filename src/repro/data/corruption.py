"""Noise and heterogeneity injection for the synthetic benchmarks.

The paper's qualitative analyses hinge on specific kinds of dirtiness in the
source data: abbreviated values (``English`` vs ``Eng.``), year format
variants (``2008`` vs ``'08``), durations given in seconds or in
``4m 2sec`` style, missing attributes, typos and case changes.  These
functions inject exactly those corruptions, so that the generated MusicBrainz
and Geographic Settlements datasets exercise the same failure modes the
paper discusses (Section 6.1).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "abbreviate",
    "corrupt_year",
    "corrupt_duration",
    "drop_value",
    "introduce_typo",
    "vary_case",
    "corrupt_number_format",
]


def abbreviate(value: str, rng: np.random.Generator, *,
               min_length: int = 3) -> str:
    """Abbreviate a word to its first few characters followed by a period."""
    text = str(value)
    if len(text) <= min_length:
        return text
    keep = int(rng.integers(min_length, min(len(text), min_length + 2)))
    return text[:keep].rstrip() + "."


def corrupt_year(value: object, rng: np.random.Generator) -> str:
    """Render a year in one of several real-world formats."""
    try:
        year = int(float(str(value)))
    except (TypeError, ValueError):
        return str(value)
    style = rng.integers(4)
    if style == 0:
        return str(year)
    if style == 1:
        return f"'{year % 100:02d}"
    if style == 2:
        return f"{year % 100:02d}"
    return f"{year}-01-01"


def corrupt_duration(seconds: object, rng: np.random.Generator) -> str:
    """Render a duration either as raw seconds or as ``XmYsec``."""
    try:
        total = int(float(str(seconds)))
    except (TypeError, ValueError):
        return str(seconds)
    if rng.random() < 0.5:
        return str(total)
    minutes, remainder = divmod(total, 60)
    return f"{minutes}m {remainder}sec"


def drop_value(value: object, rng: np.random.Generator,
               probability: float = 0.15) -> object:
    """Replace the value with ``None`` with the given probability."""
    if rng.random() < probability:
        return None
    return value


def introduce_typo(value: str, rng: np.random.Generator) -> str:
    """Swap two adjacent characters or drop one character."""
    text = str(value)
    if len(text) < 4:
        return text
    position = int(rng.integers(1, len(text) - 1))
    if rng.random() < 0.5:
        chars = list(text)
        chars[position], chars[position - 1] = chars[position - 1], chars[position]
        return "".join(chars)
    return text[:position] + text[position + 1:]


def vary_case(value: str, rng: np.random.Generator) -> str:
    """Return the value upper-cased, lower-cased, or title-cased."""
    text = str(value)
    style = rng.integers(3)
    if style == 0:
        return text.upper()
    if style == 1:
        return text.lower()
    return text.title()


def corrupt_number_format(value: object, rng: np.random.Generator) -> str:
    """Render a number with a unit suffix, thousand separators, or plain."""
    try:
        number = float(str(value))
    except (TypeError, ValueError):
        return str(value)
    style = rng.integers(3)
    if style == 0:
        return str(int(number)) if number == int(number) else f"{number:.2f}"
    if style == 1:
        return f"{number:,.0f}"
    return f"approx {number:.0f}"
