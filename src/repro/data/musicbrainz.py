"""Synthetic MusicBrainz-style entity resolution data (Section 6).

The real Music Brainz 2K / 20K / 200K datasets (Saeedi et al., 2017) contain
song records from five sources with injected duplicates: the same recording
appears with abbreviated languages, different duration formats, prefixed or
re-ordered titles, missing attributes and year format variants.  The
generator creates the same structure:

* each ground-truth cluster is one *recording* (entity);
* a cluster has 2-5 member records, each attributed to one of five sources;
* every member record is independently corrupted using the transformations
  of :mod:`repro.data.corruption`, reproducing the exact examples the paper
  discusses (``4m 2sec`` vs ``242``, ``Fre.`` vs ``French``,
  ``009-Ballade a donner`` vs ``Luce Dufault - Ballade a donner``).

A separate scalability generator produces arbitrarily many records with a
chosen number of clusters to drive the Figure 4 runtime experiments.
"""

from __future__ import annotations

import numpy as np

from ..config import make_rng
from ..exceptions import DatasetError
from .corruption import (
    abbreviate,
    corrupt_duration,
    corrupt_year,
    drop_value,
    introduce_typo,
    vary_case,
)
from .ontology import Ontology, default_ontology
from .table import Record, RecordClusteringDataset

__all__ = ["generate_musicbrainz", "generate_musicbrainz_scalability"]

_SOURCES = ["source_a", "source_b", "source_c", "source_d", "source_e"]

_TITLE_WORDS = [
    "ballade", "southern", "star", "night", "river", "dream", "heart",
    "summer", "rain", "shadow", "light", "fire", "ocean", "road", "moon",
    "echo", "silence", "storm", "golden", "wild", "blue", "crimson",
    "forever", "broken", "dancing", "falling", "rising", "lonely", "secret",
    "winter",
]

_ARTIST_WORDS = [
    "Luce Dufault", "Uriah Heep", "The Lumen", "Clara Voss", "Echo Park",
    "Silver Pines", "Marta Reyes", "The Northern Lights", "Jonas Field",
    "Violet Maze", "Stone Harbor", "Ada Lindqvist", "Red Meridian",
    "The Paper Kites", "Noa Castel", "Blue Prairie", "Iron Valley",
    "Selma Aria", "The Quiet Sea", "Milo Grant",
]

_ALBUM_WORDS = [
    "Into the Wild", "First Light", "Night Sessions", "Open Roads",
    "Glass Houses", "Northern Songs", "Horizon", "After the Storm",
    "Paper Moon", "Golden Hour", "Long Way Home", "Midnight Sun",
    "River Stories", "The Crossing", "Silent Streets",
]


def _language_concepts(ontology: Ontology) -> list[str]:
    concepts = [c.name for c in ontology.by_category("music_language")]
    if not concepts:
        raise DatasetError("ontology has no music_language concepts")
    return concepts


def _make_entity(entity_id: int, rng: np.random.Generator,
                 ontology: Ontology) -> dict[str, object]:
    """Create the clean, canonical attribute values for one recording."""
    languages = _language_concepts(ontology)
    title = " ".join(rng.choice(_TITLE_WORDS,
                                size=int(rng.integers(2, 4)), replace=False))
    return {
        "number": int(rng.integers(1, 20)),
        "title": title.title(),
        "length": int(rng.integers(90, 420)),            # seconds
        "artist": str(rng.choice(_ARTIST_WORDS)),
        "album": str(rng.choice(_ALBUM_WORDS)),
        "year": int(rng.integers(1965, 2023)),
        "language": str(rng.choice(languages)),
    }


def _render_record(entity: dict[str, object], entity_id: int, copy_index: int,
                   source: str, rng: np.random.Generator,
                   ontology: Ontology, *, dirty: bool) -> Record:
    """Render one (possibly corrupted) record of an entity."""
    language_forms = ontology.surface_forms(str(entity["language"]))
    values: dict[str, object] = {}

    title = str(entity["title"])
    if dirty:
        style = rng.integers(4)
        if style == 0:
            title = f"{entity_id % 1000:03d}-{title}"
        elif style == 1:
            title = f"{entity['artist']} - {title}"
        elif style == 2 and rng.random() < 0.5:
            title = introduce_typo(title, rng)
        if rng.random() < 0.3:
            title = vary_case(title, rng)
    values["title"] = title

    length = entity["length"]
    values["length"] = corrupt_duration(length, rng) if dirty else str(length)

    artist = str(entity["artist"])
    if dirty and rng.random() < 0.2:
        artist_parts = artist.split(" ")
        artist = " ".join(reversed(artist_parts))
    values["artist"] = drop_value(artist, rng, 0.15 if dirty else 0.0)

    album = str(entity["album"])
    if dirty and rng.random() < 0.3:
        album = f"{album} ({entity['year']})"
    values["album"] = album

    year = entity["year"]
    values["year"] = corrupt_year(year, rng) if dirty else str(year)
    values["year"] = drop_value(values["year"], rng, 0.2 if dirty else 0.0)

    language = str(language_forms[int(rng.integers(len(language_forms)))]) \
        if dirty else str(language_forms[0])
    if dirty and rng.random() < 0.1:
        language = abbreviate(language, rng)
    values["language"] = language

    return Record(values=values, source=source,
                  identifier=f"mb_{entity_id}_{copy_index}",
                  metadata={"entity": entity_id})


def generate_musicbrainz(n_records: int = 600, n_clusters: int = 200, *,
                         seed: int | None = None,
                         ontology: Ontology | None = None
                         ) -> RecordClusteringDataset:
    """Generate a MusicBrainz-2K-like entity resolution dataset.

    Every cluster has at least two records (the paper's 2K subset discards
    singleton clusters), records are spread over five sources and are
    independently corrupted.
    """
    if n_records < 2 * n_clusters:
        raise DatasetError(
            f"need at least {2 * n_clusters} records for {n_clusters} clusters")
    ontology = ontology or default_ontology()
    rng = make_rng(seed)

    # Cluster sizes: at least 2, remainder distributed randomly.
    sizes = np.full(n_clusters, 2, dtype=int)
    remainder = n_records - sizes.sum()
    while remainder > 0:
        sizes[int(rng.integers(n_clusters))] += 1
        remainder -= 1

    records: list[Record] = []
    labels: list[int] = []
    for entity_id in range(n_clusters):
        entity = _make_entity(entity_id, rng, ontology)
        source_order = rng.permutation(len(_SOURCES))
        for copy_index in range(sizes[entity_id]):
            source = _SOURCES[source_order[copy_index % len(_SOURCES)]]
            dirty = copy_index > 0 or rng.random() < 0.3
            records.append(_render_record(entity, entity_id, copy_index,
                                          source, rng, ontology, dirty=dirty))
            labels.append(entity_id)

    return RecordClusteringDataset(
        records=records,
        labels=np.array(labels, dtype=np.int64),
        name="Music Brainz 2K",
        metadata={"seed": seed, "sources": len(_SOURCES)},
    )


def generate_musicbrainz_scalability(n_records: int, n_clusters: int, *,
                                     seed: int | None = None,
                                     ontology: Ontology | None = None
                                     ) -> RecordClusteringDataset:
    """Generate MusicBrainz-200K-style data for the runtime experiments.

    Mirrors the paper's protocol for Figure 4: to vary the number of
    instances at fixed ``K = n_clusters``, entities are duplicated as often
    as needed; to vary ``K``, the caller simply passes different values.
    """
    if n_clusters < 1 or n_records < n_clusters:
        raise DatasetError("n_records must be >= n_clusters >= 1")
    ontology = ontology or default_ontology()
    rng = make_rng(seed)

    records: list[Record] = []
    labels: list[int] = []
    entities = [_make_entity(entity_id, rng, ontology)
                for entity_id in range(n_clusters)]
    for index in range(n_records):
        entity_id = index % n_clusters
        copy_index = index // n_clusters
        source = _SOURCES[int(rng.integers(len(_SOURCES)))]
        records.append(_render_record(entities[entity_id], entity_id,
                                      copy_index, source, rng, ontology,
                                      dirty=copy_index > 0))
        labels.append(entity_id)

    return RecordClusteringDataset(
        records=records,
        labels=np.array(labels, dtype=np.int64),
        name=f"Music Brainz scalability ({n_records} records, {n_clusters} clusters)",
        metadata={"seed": seed, "sources": len(_SOURCES)},
    )
