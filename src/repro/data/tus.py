"""Synthetic Table Union Search (TUS) benchmark for schema inference.

The TUS benchmark asks which tables of a corpus can be unioned.  Following
Section 5 of the paper, the ground truth is *derived* rather than given:

1. two tables are considered unionable when at least 40% of their columns
   are unionable (here: their headers denote the same ontology concept);
2. unionable pairs form a graph with tables as nodes;
3. Louvain community detection assigns each community a ground-truth label;
4. single-table communities are discarded.

The generator creates families of tables that share a seed schema (so that
intra-family pairs clear the 40% threshold), then applies the exact
procedure above, so the ground-truth construction code path is the same one
the paper describes.
"""

from __future__ import annotations

import numpy as np

from ..config import make_rng
from ..graphs.louvain import louvain_communities
from .ontology import Ontology, default_ontology
from .table import Table, TableClusteringDataset
from .webtables import class_schema, _value_for

__all__ = ["generate_tus", "unionability_ground_truth"]


def _column_concept(header: str, ontology: Ontology) -> str:
    """Concept denoted by a header (falls back to the normalised header)."""
    concept = ontology.lookup(header)
    return concept if concept is not None else header.lower()


def unionable_fraction(table_a: Table, table_b: Table,
                       ontology: Ontology) -> float:
    """Fraction of columns (relative to the larger table) that are unionable."""
    concepts_a = {_column_concept(h, ontology) for h in table_a.column_names}
    concepts_b = {_column_concept(h, ontology) for h in table_b.column_names}
    if not concepts_a or not concepts_b:
        return 0.0
    shared = len(concepts_a & concepts_b)
    return shared / max(len(concepts_a), len(concepts_b))


def unionability_ground_truth(tables: list[Table], *,
                              threshold: float = 0.4,
                              ontology: Ontology | None = None,
                              seed: int | None = None
                              ) -> tuple[np.ndarray, np.ndarray]:
    """Derive union ground truth labels via the 40% rule + Louvain.

    Returns ``(labels, keep_mask)`` where ``keep_mask`` marks tables that
    belong to a community with at least two members (single-table
    communities are excluded, as in the paper).
    """
    ontology = ontology or default_ontology()
    n = len(tables)
    adjacency = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        for j in range(i + 1, n):
            fraction = unionable_fraction(tables[i], tables[j], ontology)
            if fraction >= threshold:
                adjacency[i, j] = adjacency[j, i] = fraction
    labels = louvain_communities(adjacency, seed=seed)
    _, counts = np.unique(labels, return_counts=True)
    community_sizes = dict(zip(*np.unique(labels, return_counts=True)))
    keep = np.array([community_sizes[label] > 1 for label in labels], dtype=bool)
    return labels, keep


def generate_tus(n_tables: int = 200, n_families: int = 37, *,
                 rows_per_table: tuple[int, int] = (4, 12),
                 union_threshold: float = 0.4,
                 seed: int | None = None,
                 ontology: Ontology | None = None) -> TableClusteringDataset:
    """Generate a TUS-like dataset with Louvain-derived ground truth."""
    ontology = ontology or default_ontology()
    rng = make_rng(seed)

    family_schemas = [
        class_schema(f"family_{index}", ontology,
                     make_rng((seed or 0) * 1000 + index), n_attributes=7)
        for index in range(n_families)
    ]

    tables: list[Table] = []
    family_of: list[int] = []
    for table_index in range(n_tables):
        family = int(rng.integers(n_families))
        schema = family_schemas[family]
        others = schema[1:]
        # Keep enough columns that same-family tables clear the threshold.
        keep = max(3, int(np.ceil(len(others) * rng.uniform(0.7, 1.0))))
        chosen = [others[i] for i in
                  sorted(rng.choice(len(others), size=keep, replace=False))]
        attributes = [schema[0]] + chosen
        n_rows = int(rng.integers(rows_per_table[0], rows_per_table[1] + 1))
        columns: dict[str, list[object]] = {}
        for attribute in attributes:
            forms = ontology.surface_forms(attribute) \
                if attribute in ontology else (attribute,)
            header = str(forms[int(rng.integers(len(forms)))])
            if header in columns:
                header = f"{header} {len(columns)}"
            columns[header] = [
                _value_for(attribute, f"family_{family}", row, rng)
                for row in range(n_rows)
            ]
        tables.append(Table(name=f"tus_{table_index}", columns=columns,
                            metadata={"family": family}))
        family_of.append(family)

    labels, keep = unionability_ground_truth(
        tables, threshold=union_threshold, ontology=ontology, seed=seed)
    kept_tables = [table for table, flag in zip(tables, keep) if flag]
    kept_labels = labels[keep]
    # Relabel consecutively after dropping singleton communities.
    _, consecutive = np.unique(kept_labels, return_inverse=True)

    return TableClusteringDataset(
        tables=kept_tables,
        labels=consecutive.astype(np.int64),
        name="TUS",
        metadata={"n_families": n_families, "seed": seed,
                  "union_threshold": union_threshold, "sources": None},
    )
