"""Synthetic Di2KG Camera / Monitor datasets for domain discovery (Section 7).

The real Di2KG datasets contain product-specification columns extracted from
dozens of e-commerce pages.  Their defining heterogeneity phenomena, which
the paper's analyses rely on, are:

* *synonym headers* — the same domain appears under lexically unrelated
  headers in different sources (``lens`` vs ``normalized optical zoom``);
* *homonym headers* — lexically similar headers denote different domains
  (``screen type`` used for screen size by some sources);
* *instance values that disambiguate* — values of the same domain look alike
  across sources (units, yes/no flags, resolutions), which is why adding
  instance-level evidence *helps* domain discovery (unlike schema
  inference).

The generator produces one column per (source, domain) occurrence: the
header is drawn from the domain's surface forms in the ontology, and the
values from a domain-specific value model.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..config import make_rng
from ..exceptions import DatasetError
from .ontology import Concept, Ontology, default_ontology
from .table import Column, ColumnClusteringDataset

__all__ = ["generate_camera", "generate_monitor", "generate_dikg_columns"]

_BOOLEAN_HINTS = ("gps", "wifi", "hdmi", "touch", "curved", "speakers",
                  "flicker", "hdr", "vesa", "pivot", "swivel", "stabilization",
                  "blue light", "flash")
_UNIT_BY_HINT = {
    "size": "inch",
    "weight": "g",
    "length": "mm",
    "zoom": "x",
    "megapixel": "mp",
    "resolution": "px",
    "rate": "hz",
    "time": "ms",
    "brightness": "cd/m2",
    "consumption": "w",
    "price": "usd",
    "iso": "",
    "aperture": "f/",
    "battery life": "shots",
    "angle": "deg",
}


def _domain_rng(domain: str) -> np.random.Generator:
    digest = hashlib.sha256(f"domain::{domain}".encode("utf-8")).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


def _value_model(domain: Concept) -> dict[str, object]:
    """Derive a per-domain value model (numeric range + unit, or categories)."""
    name = domain.name.lower()
    rng = _domain_rng(domain.name)
    if any(hint in name for hint in _BOOLEAN_HINTS):
        return {"kind": "boolean"}
    for hint, unit in _UNIT_BY_HINT.items():
        if hint in name:
            # Tight, domain-specific numeric range: the value *magnitude* is
            # itself a signal that instance-level encoders can exploit.
            low = float(rng.uniform(1, 2000))
            high = low * float(rng.uniform(1.2, 2.0))
            return {"kind": "numeric", "low": low, "high": high, "unit": unit}
    if any(hint in name for hint in ("format", "type", "mode", "color",
                                     "interface", "storage", "mount",
                                     "panel", "coating", "sync", "series",
                                     "brand", "model")):
        stem = domain.surface_forms[0].replace(" ", "_")
        categories = [f"{stem}_{index}" for index in range(8)]
        return {"kind": "categorical", "categories": categories}
    # Default: free-text-ish values built from the domain's vocabulary.
    stem = domain.surface_forms[0]
    categories = [f"{stem} option {index}" for index in range(10)]
    return {"kind": "categorical", "categories": categories}


def _generate_values(domain: Concept, n_values: int,
                     rng: np.random.Generator) -> list[object]:
    model = _value_model(domain)
    if model["kind"] == "boolean":
        choices = ["yes", "no", "1", "0", "built-in", "none"]
        return [str(rng.choice(choices)) for _ in range(n_values)]
    if model["kind"] == "numeric":
        low, high, unit = model["low"], model["high"], model["unit"]
        values = []
        for _ in range(n_values):
            number = float(rng.uniform(low, high))
            if rng.random() < 0.5 and unit:
                values.append(f"{number:.1f} {unit}")
            else:
                values.append(f"{number:.1f}")
        return values
    categories = model["categories"]
    return [str(categories[int(rng.integers(len(categories)))])
            for _ in range(n_values)]


#: Generic, ambiguous headers that e-commerce sources use for many different
#: specifications; they collide across domains and are what makes
#: schema-level-only domain discovery imperfect.
_AMBIGUOUS_HEADERS = [
    "specifications", "details", "feature", "other", "misc", "value",
    "info", "type", "size", "general", "spec", "attribute",
]


def generate_dikg_columns(category: str, dataset_name: str, *,
                          n_columns: int = 800, n_domains: int | None = None,
                          n_sources: int = 24,
                          values_per_column: tuple[int, int] = (5, 25),
                          ambiguous_header_rate: float = 0.2,
                          seed: int | None = None,
                          ontology: Ontology | None = None
                          ) -> ColumnClusteringDataset:
    """Generate a Di2KG-style column clustering dataset for one category.

    ``ambiguous_header_rate`` controls how often a source labels a column
    with a generic header ("details", "spec", ...) instead of a
    domain-specific one; these are the columns only the instance values can
    disambiguate, which is why schema+instance-level evidence helps domain
    discovery in the paper while schema-level-only evidence plateaus.
    """
    ontology = ontology or default_ontology()
    domains = ontology.by_category(category)
    if not domains:
        raise DatasetError(f"ontology has no concepts in category {category!r}")
    if n_domains is not None:
        if n_domains > len(domains):
            raise DatasetError(
                f"requested {n_domains} domains but the ontology defines only "
                f"{len(domains)} for {category!r}")
        domains = domains[:n_domains]
    if n_columns < len(domains):
        raise DatasetError(
            f"n_columns={n_columns} is smaller than the number of domains "
            f"{len(domains)}")
    rng = make_rng(seed)

    # Imbalanced domain frequencies: popular specs appear on most sources.
    weights = rng.pareto(1.2, size=len(domains)) + 1.0
    weights = weights / weights.sum()

    columns: list[Column] = []
    labels: list[int] = []
    # Guarantee at least two columns per domain before sampling the rest.
    assignments = list(range(len(domains))) * 2
    remaining = n_columns - len(assignments)
    if remaining > 0:
        assignments.extend(rng.choice(len(domains), size=remaining,
                                      p=weights).tolist())
    rng.shuffle(assignments)

    for column_index, domain_index in enumerate(assignments[:n_columns]):
        domain = domains[domain_index]
        forms = domain.surface_forms
        if rng.random() < ambiguous_header_rate:
            header = str(_AMBIGUOUS_HEADERS[int(rng.integers(
                len(_AMBIGUOUS_HEADERS)))])
        else:
            header = str(forms[int(rng.integers(len(forms)))])
        source = f"source_{int(rng.integers(n_sources)):02d}"
        n_values = int(rng.integers(values_per_column[0],
                                    values_per_column[1] + 1))
        values = _generate_values(domain, n_values, rng)
        columns.append(Column(header=header, values=values, table_name=source,
                              metadata={"domain": domain.name}))
        labels.append(domain_index)

    return ColumnClusteringDataset(
        columns=columns,
        labels=np.array(labels, dtype=np.int64),
        name=dataset_name,
        metadata={"seed": seed, "sources": n_sources, "category": category},
    )


def generate_camera(n_columns: int = 800, n_domains: int | None = None, *,
                    n_sources: int = 24, seed: int | None = None,
                    ontology: Ontology | None = None) -> ColumnClusteringDataset:
    """Generate the Camera-like domain discovery dataset (56 GT domains)."""
    return generate_dikg_columns("camera_domain", "Camera",
                                 n_columns=n_columns, n_domains=n_domains,
                                 n_sources=n_sources, seed=seed,
                                 ontology=ontology)


def generate_monitor(n_columns: int = 900, n_domains: int | None = None, *,
                     n_sources: int = 26, seed: int | None = None,
                     ontology: Ontology | None = None) -> ColumnClusteringDataset:
    """Generate the Monitor-like domain discovery dataset (81 GT domains)."""
    return generate_dikg_columns("monitor_domain", "Monitor",
                                 n_columns=n_columns, n_domains=n_domains,
                                 n_sources=n_sources, seed=seed,
                                 ontology=ontology)
