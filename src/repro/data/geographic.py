"""Synthetic Geographic Settlements entity resolution data (Section 6).

The real dataset (Saeedi et al., 2017) contains settlements described by
four geographic sources (DBpedia, GeoNames, Freebase, NYT) with name
variants, coordinate precision differences and population discrepancies.
The generator mirrors those four sources and the heterogeneity phenomena:
name suffixes/prefixes, missing attributes, truncated coordinates and
population rounding.
"""

from __future__ import annotations

import numpy as np

from ..config import make_rng
from ..exceptions import DatasetError
from .corruption import drop_value, introduce_typo, vary_case
from .ontology import Ontology, default_ontology
from .table import Record, RecordClusteringDataset

__all__ = ["generate_geographic_settlements"]

_SOURCES = ["dbpedia", "geonames", "freebase", "nyt"]

_NAME_STEMS = [
    "spring", "oak", "maple", "cedar", "pine", "river", "lake", "hill",
    "green", "fair", "new", "west", "east", "north", "south", "bridge",
    "stone", "clear", "silver", "golden", "haven", "mill", "ash", "birch",
    "elm", "willow", "glen", "brook", "ridge", "valley",
]

_NAME_SUFFIXES = ["ville", "ton", "burg", "field", "ford", "port", "dale",
                  "wood", "stad", "berg", "haven", "mouth"]

_COUNTRIES = [
    "Germany", "France", "Italy", "Spain", "Poland", "Sweden", "Norway",
    "Austria", "Netherlands", "Belgium", "Portugal", "Greece", "Finland",
    "Denmark", "Switzerland", "Ireland", "Hungary", "Czechia",
]

_TYPES = ["city", "town", "village", "municipality", "commune"]


def _make_settlement(entity_id: int, rng: np.random.Generator) -> dict[str, object]:
    # The entity id is folded into the name token itself (``Oakville17``)
    # so every settlement has a distinctive lexical key, as real place names
    # do; duplicates of the same settlement share it while different
    # settlements do not.
    name = (str(rng.choice(_NAME_STEMS)).title()
            + str(rng.choice(_NAME_SUFFIXES)))
    return {
        "name": f"{name}{entity_id}",
        "country": str(rng.choice(_COUNTRIES)),
        "latitude": float(rng.uniform(35.0, 65.0)),
        "longitude": float(rng.uniform(-10.0, 30.0)),
        "population": int(rng.integers(500, 2_000_000)),
        "type": str(rng.choice(_TYPES)),
    }


def _render_record(entity: dict[str, object], entity_id: int, copy_index: int,
                   source: str, rng: np.random.Generator, *,
                   dirty: bool) -> Record:
    values: dict[str, object] = {}
    name = str(entity["name"])
    if dirty:
        style = rng.integers(4)
        if style == 0:
            name = f"{name}, {entity['country']}"
        elif style == 1:
            name = f"{str(entity['type']).title()} of {name}"
        elif style == 2 and rng.random() < 0.5:
            name = introduce_typo(name, rng)
        if rng.random() < 0.3:
            name = vary_case(name, rng)
    values["name"] = name

    precision = int(rng.integers(1, 5)) if dirty else 4
    values["latitude"] = round(float(entity["latitude"]), precision)
    values["longitude"] = round(float(entity["longitude"]), precision)

    population = int(entity["population"])
    if dirty and rng.random() < 0.5:
        population = int(round(population, -3))
    values["population"] = drop_value(population, rng, 0.2 if dirty else 0.0)

    values["country"] = drop_value(entity["country"], rng, 0.1 if dirty else 0.0)
    values["type"] = drop_value(entity["type"], rng, 0.3 if dirty else 0.0)

    return Record(values=values, source=source,
                  identifier=f"geo_{entity_id}_{copy_index}",
                  metadata={"entity": entity_id})


def generate_geographic_settlements(n_records: int = 600, n_clusters: int = 200, *,
                                    seed: int | None = None,
                                    ontology: Ontology | None = None
                                    ) -> RecordClusteringDataset:
    """Generate a Geographic-Settlements-like entity resolution dataset."""
    if n_records < 2 * n_clusters:
        raise DatasetError(
            f"need at least {2 * n_clusters} records for {n_clusters} clusters")
    _ = ontology or default_ontology()
    rng = make_rng(seed)

    sizes = np.full(n_clusters, 2, dtype=int)
    remainder = n_records - sizes.sum()
    while remainder > 0:
        sizes[int(rng.integers(n_clusters))] += 1
        remainder -= 1

    records: list[Record] = []
    labels: list[int] = []
    for entity_id in range(n_clusters):
        entity = _make_settlement(entity_id, rng)
        source_order = rng.permutation(len(_SOURCES))
        for copy_index in range(sizes[entity_id]):
            source = _SOURCES[source_order[copy_index % len(_SOURCES)]]
            records.append(_render_record(entity, entity_id, copy_index,
                                          source, rng, dirty=copy_index > 0))
            labels.append(entity_id)

    return RecordClusteringDataset(
        records=records,
        labels=np.array(labels, dtype=np.int64),
        name="Geographic Settlements",
        metadata={"seed": seed, "sources": len(_SOURCES)},
    )
