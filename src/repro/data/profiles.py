"""Dataset property profiling (Table 1 of the paper).

Table 1 reports, per benchmark: the number of sources, the number of
instances and the number of ground-truth clusters.  :func:`profile_datasets`
computes the same rows for any mixture of the dataset containers defined in
:mod:`repro.data.table`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .table import (
    ColumnClusteringDataset,
    RecordClusteringDataset,
    TableClusteringDataset,
)

__all__ = ["DatasetProfile", "profile_datasets"]

_Dataset = TableClusteringDataset | RecordClusteringDataset | ColumnClusteringDataset


@dataclass(frozen=True)
class DatasetProfile:
    """One row of Table 1."""

    name: str
    task: str
    sources: int | None
    n_instances: int
    n_clusters: int
    mean_cluster_cardinality: float

    def as_row(self) -> dict[str, object]:
        return {
            "Dataset": self.name,
            "Task": self.task,
            "Sources": "N/A" if self.sources is None else self.sources,
            "Number of Instances": self.n_instances,
            "GT clusters": self.n_clusters,
            "Mean cluster cardinality": round(self.mean_cluster_cardinality, 1),
        }


def _task_of(dataset: _Dataset) -> str:
    if isinstance(dataset, TableClusteringDataset):
        return "Schema Inference"
    if isinstance(dataset, RecordClusteringDataset):
        return "Entity Resolution"
    return "Domain Discovery"


def _sources_of(dataset: _Dataset) -> int | None:
    sources = dataset.metadata.get("sources")
    if sources is not None:
        return int(sources) if sources else None
    if isinstance(dataset, (RecordClusteringDataset, ColumnClusteringDataset)):
        counted = dataset.n_sources
        return counted if counted else None
    return None


def profile_datasets(datasets: list[_Dataset]) -> list[DatasetProfile]:
    """Compute Table-1-style properties for each dataset."""
    profiles: list[DatasetProfile] = []
    for dataset in datasets:
        labels = dataset.labels
        _, counts = np.unique(labels, return_counts=True)
        profiles.append(DatasetProfile(
            name=dataset.name,
            task=_task_of(dataset),
            sources=_sources_of(dataset),
            n_instances=dataset.n_items,
            n_clusters=int(np.unique(labels).size),
            mean_cluster_cardinality=float(counts.mean()),
        ))
    return profiles
