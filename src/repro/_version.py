"""Single source of truth for the package version.

``setup.py`` executes this file to avoid importing the package (and its
numpy/scipy dependencies) at build time; ``repro.__init__`` re-exports the
constant and the CLI surfaces it via ``repro --version``.
"""

__version__ = "1.2.0"
