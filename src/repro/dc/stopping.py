"""Silhouette-based training control (Section 4.2 of the paper).

Two decisions in the paper's experimental setup rely on the silhouette
coefficient of the learned representation with the currently predicted
clusters:

1. *When to stop training* — the epoch with the best silhouette score is
   retained.
2. *Whether to use SDCN at all* — if joint SDCN training does not improve
   the silhouette over the pre-trained auto-encoder representation, the AE
   representation (clustered with Birch or K-means) is used instead.  This
   is how the "AE" rows of Tables 4-6 arise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..metrics.silhouette import silhouette_score

__all__ = ["SilhouetteStopper", "select_sdcn_or_autoencoder"]


@dataclass
class SilhouetteStopper:
    """Track the best-silhouette epoch during deep clustering training.

    Parameters
    ----------
    patience:
        Number of evaluations without improvement after which
        :meth:`should_stop` returns True.  ``None`` disables early stopping
        and the stopper only records the best state.
    min_delta:
        Minimum improvement that counts as progress.
    """

    patience: int | None = 5
    min_delta: float = 1e-4
    best_score: float = -np.inf
    best_epoch: int = -1
    best_labels: np.ndarray | None = None
    best_embedding: np.ndarray | None = None
    history: list[float] = field(default_factory=list)
    _stale: int = 0

    def update(self, epoch: int, embedding: np.ndarray,
               labels: np.ndarray) -> float:
        """Score the current state; remember it if it is the best so far."""
        score = silhouette_score(embedding, labels)
        self.history.append(score)
        if score > self.best_score + self.min_delta:
            self.best_score = score
            self.best_epoch = epoch
            self.best_labels = np.asarray(labels).copy()
            self.best_embedding = np.asarray(embedding).copy()
            self._stale = 0
        else:
            self._stale += 1
        return score

    def should_stop(self) -> bool:
        """Return True when no improvement has been seen for ``patience`` checks."""
        if self.patience is None:
            return False
        return self._stale >= self.patience


def select_sdcn_or_autoencoder(sdcn_silhouette: float,
                               autoencoder_silhouette: float,
                               *, tolerance: float = 0.0) -> str:
    """Return ``"sdcn"`` or ``"autoencoder"`` following the paper's rule.

    The SDCN fine-tuned representation is kept only when its silhouette
    converges to a value at least as good as the pre-trained AE
    representation; otherwise the AE representation is retained and
    clustered with Birch/K-means.
    """
    if sdcn_silhouette + tolerance >= autoencoder_silhouette:
        return "sdcn"
    return "autoencoder"
