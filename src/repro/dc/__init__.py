"""Deep clustering algorithms (the paper's primary contribution area).

Three deep clustering methods are evaluated in the paper:

* :class:`SDCN` — Structural Deep Clustering Network: an auto-encoder and a
  GCN over a KNN graph trained jointly with a dual self-supervision
  mechanism (Bo et al., 2020).
* :class:`EDESC` — Efficient Deep Embedded Subspace Clustering: an
  auto-encoder whose latent space is organised into per-cluster subspace
  bases refined iteratively (Cai et al., 2022).
* :class:`SHGP` — Self-supervised Heterogeneous Graph Pre-training: Att-LPA
  structural clustering produces pseudo-labels that supervise an attention
  based HGNN; final clusters come from K-means on the learned embeddings
  (Yang et al., 2022).

In addition the paper uses a plain pre-trained :class:`Autoencoder` followed
by K-means or Birch ("AE" rows of Tables 4-6) whenever the silhouette score
indicates that SDCN's joint fine-tuning does not improve on the pre-trained
representation (Section 4.2).
"""

from .base import DeepClusterer
from .autoencoder import Autoencoder, AutoencoderClustering
from .sdcn import SDCN
from .edesc import EDESC
from .shgp import SHGP
from .target_distribution import student_t_assignment, target_distribution
from .stopping import SilhouetteStopper, select_sdcn_or_autoencoder

__all__ = [
    "DeepClusterer",
    "Autoencoder",
    "AutoencoderClustering",
    "SDCN",
    "EDESC",
    "SHGP",
    "student_t_assignment",
    "target_distribution",
    "SilhouetteStopper",
    "select_sdcn_or_autoencoder",
]
