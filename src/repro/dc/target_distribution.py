"""Soft assignments and self-supervision targets shared by the DC models.

DEC-style deep clustering (and SDCN, which inherits the mechanism) measures
the similarity between a latent point :math:`z_i` and a cluster centre
:math:`\\mu_j` with a Student's t-kernel, producing a soft assignment matrix
``Q``.  A sharpened *target distribution* ``P`` is derived from ``Q`` and the
model is trained to pull ``Q`` towards ``P`` (KL divergence), which
iteratively strengthens confident assignments.
"""

from __future__ import annotations

import numpy as np

from ..nn.tensor import Tensor

__all__ = ["student_t_assignment", "target_distribution"]


def student_t_assignment(latent: Tensor, centers: Tensor, *,
                         alpha: float = 1.0) -> Tensor:
    """Soft assignment Q of latent points to cluster centres.

    ``q_{ij} \\propto (1 + ||z_i - \\mu_j||^2 / \\alpha)^{-(\\alpha+1)/2}``,
    normalised over clusters.  Both ``latent`` and ``centers`` may require
    gradients (SDCN and EDESC treat the centres as trainable parameters).
    """
    z_sq = (latent * latent).sum(axis=1, keepdims=True)          # (n, 1)
    c_sq = (centers * centers).sum(axis=1, keepdims=True).T       # (1, K)
    cross = latent @ centers.T                                    # (n, K)
    squared_distance = z_sq + c_sq - cross * 2.0
    squared_distance = squared_distance.clip(0.0, np.inf)
    power = -(alpha + 1.0) / 2.0
    kernel = (squared_distance * (1.0 / alpha) + 1.0) ** power
    normaliser = kernel.sum(axis=1, keepdims=True)
    return kernel / normaliser


def target_distribution(q: np.ndarray | Tensor) -> np.ndarray:
    """Sharpened target distribution P derived from soft assignments Q.

    ``p_{ij} = (q_{ij}^2 / f_j) / \\sum_{j'} (q_{ij'}^2 / f_{j'})`` with
    ``f_j = \\sum_i q_{ij}`` the soft cluster frequency.  Returned as a plain
    numpy array because P is treated as a constant during optimisation.
    """
    q_arr = q.data if isinstance(q, Tensor) else np.asarray(q, dtype=np.float64)
    weight = q_arr ** 2 / np.clip(q_arr.sum(axis=0, keepdims=True), 1e-12, None)
    return weight / np.clip(weight.sum(axis=1, keepdims=True), 1e-12, None)
