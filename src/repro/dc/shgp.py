"""Self-supervised Heterogeneous Graph Pre-training (SHGP, Yang et al. 2022).

SHGP couples two modules that improve each other:

* **Att-LPA** — attention-weighted label propagation over the heterogeneous
  graph produces *structural pseudo-labels* (a clustering derived purely from
  graph structure).
* **Att-HGNN** — an attention-based graph neural network aggregates typed
  neighbourhood information into object embeddings and is trained (cross
  entropy) to predict the pseudo-labels.

The attention coefficients learned by Att-HGNN re-weight the graph used by
Att-LPA in the next round, and the sharper pseudo-labels in turn give
Att-HGNN a better training signal.  After a fixed number of rounds the final
object embeddings are clustered with K-means, exactly as in the original
paper and as described in Section 3 of the reproduced paper.

For data-integration inputs (tables, rows or columns represented by an
embedding matrix) the heterogeneous graph is built by
:meth:`repro.graphs.hin.HeterogeneousGraph.from_embeddings`: the objects to
cluster are the *target* nodes, K-means prototypes of the embedding space
act as *anchor* nodes (a second node type), and a KNN graph supplies direct
target-target structure.
"""

from __future__ import annotations

import numpy as np

from ..clustering.base import nearest_centers
from ..clustering.kmeans import KMeans
from ..config import DeepClusteringConfig, make_rng
from ..exceptions import ConfigurationError
from ..graphs.hin import HeterogeneousGraph, NodeType
from ..graphs.knn import normalized_adjacency
from ..graphs.lpa import attention_label_propagation
from ..nn import Adam, Linear, Tensor, cross_entropy, no_grad, relu
from ..nn.layers import Module, Parameter
from ..utils.validation import check_matrix
from .base import DeepClusterer
from .stopping import SilhouetteStopper

__all__ = ["SHGP"]


class _AttHGNN(Module):
    """Two-layer attention-based aggregation network.

    Each layer mixes a node's own transformed features with the transformed
    features of its (typed) neighbours; the mixing coefficient per relation
    is a learnable scalar attention passed through a sigmoid, which is the
    light-weight analogue of SHGP's type-level attention.
    """

    def __init__(self, input_dim: int, hidden_dim: int, n_classes: int, *,
                 n_relations: int, seed: int | None = None) -> None:
        rng = make_rng(seed)
        self.layer1 = Linear(input_dim, hidden_dim,
                             seed=int(rng.integers(0, 2 ** 31 - 1)))
        self.layer2 = Linear(hidden_dim, hidden_dim,
                             seed=int(rng.integers(0, 2 ** 31 - 1)))
        self.classifier = Linear(hidden_dim, n_classes,
                                 seed=int(rng.integers(0, 2 ** 31 - 1)))
        # One attention logit per relation (target-target, target-anchor, ...).
        self.relation_attention = Parameter(np.zeros(n_relations))

    def attention_weights(self) -> np.ndarray:
        """Current per-relation attention coefficients in (0, 1)."""
        with no_grad():
            return 1.0 / (1.0 + np.exp(-self.relation_attention.numpy()))

    def _aggregate(self, features: Tensor, propagations: list[np.ndarray]) -> Tensor:
        attention = self.relation_attention.sigmoid()
        mixed = features
        for index, matrix in enumerate(propagations):
            weight = attention.take_rows(np.array([index])).reshape(1, 1)
            mixed = mixed + (Tensor(matrix) @ features) * weight
        return mixed * (1.0 / (1.0 + len(propagations)))

    def forward(self, features: Tensor,
                propagations: list[np.ndarray]) -> tuple[Tensor, Tensor]:
        """Return (embeddings, class logits) for the target nodes."""
        hidden = relu(self.layer1(self._aggregate(features, propagations)))
        hidden = relu(self.layer2(self._aggregate(hidden, propagations)))
        return hidden, self.classifier(hidden)


class SHGP(DeepClusterer):
    """SHGP adapted to data-integration clustering tasks."""

    def __init__(self, n_clusters: int, *, hidden_dim: int = 64,
                 n_rounds: int = 3, epochs_per_round: int = 15,
                 n_anchors: int = 32, knn_k: int = 10,
                 config: DeepClusteringConfig | None = None) -> None:
        super().__init__(n_clusters, config)
        if hidden_dim < 1:
            raise ConfigurationError("hidden_dim must be >= 1")
        if n_rounds < 1 or epochs_per_round < 1:
            raise ConfigurationError("n_rounds and epochs_per_round must be >= 1")
        self.hidden_dim = int(hidden_dim)
        self.n_rounds = int(n_rounds)
        self.epochs_per_round = int(epochs_per_round)
        self.n_anchors = int(n_anchors)
        self.knn_k = int(knn_k)
        self.pseudo_labels_: np.ndarray | None = None
        self.attention_: np.ndarray | None = None
        self.input_centroids_: np.ndarray | None = None
        self.centroid_labels_: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _build_propagations(self, graph: HeterogeneousGraph
                            ) -> list[np.ndarray]:
        """Normalised propagation matrices, one per relation (metapath)."""
        target_target = graph.adjacency(NodeType.TARGET, NodeType.TARGET)
        target_anchor = graph.adjacency(NodeType.TARGET, NodeType.ANCHOR)
        # Metapath target-anchor-target: objects sharing an anchor.
        anchor_path = target_anchor @ target_anchor.T
        np.fill_diagonal(anchor_path, 0.0)
        return [normalized_adjacency(target_target),
                normalized_adjacency(anchor_path)]

    def fit(self, X) -> "SHGP":
        """Att-LPA / Att-HGNN alternation over the HIN built from ``X``.

        ``X`` is an ``(n_samples, n_features)`` float embedding matrix;
        final labels come from K-means on the learned target embeddings.
        """
        X = check_matrix(X)
        n_samples = X.shape[0]
        if n_samples < self.n_clusters:
            raise ConfigurationError(
                f"n_clusters={self.n_clusters} exceeds number of samples {n_samples}")
        config = self.config.scaled_for(n_samples)

        graph = HeterogeneousGraph.from_embeddings(
            X, n_anchors=self.n_anchors, knn_k=self.knn_k, seed=config.seed)
        propagations = self._build_propagations(graph)
        structural = graph.target_projection()

        model = _AttHGNN(X.shape[1], min(self.hidden_dim, config.layer_size),
                         self.n_clusters, n_relations=len(propagations),
                         seed=config.seed)
        optimizer = Adam(model.parameters(), lr=config.learning_rate)
        features = Tensor(X)
        stopper = SilhouetteStopper(patience=None)
        losses: list[float] = []

        pseudo_labels = attention_label_propagation(
            structural, seed=config.seed)
        pseudo_labels = self._cap_labels(pseudo_labels, X, config.seed)

        epoch_counter = 0
        for round_index in range(self.n_rounds):
            # Att-HGNN: fit the embeddings to the current pseudo-labels.
            for _ in range(self.epochs_per_round):
                optimizer.zero_grad()
                _, logits = model.forward(features, propagations)
                loss = cross_entropy(logits, pseudo_labels)
                loss.backward()
                optimizer.step()
                losses.append(loss.item())
                epoch_counter += 1

            with no_grad():
                embeddings, _ = model.forward(features, propagations)
            embedding_matrix = embeddings.numpy()
            kmeans = KMeans(self.n_clusters, seed=config.seed).fit(embedding_matrix)
            stopper.update(epoch_counter, embedding_matrix, kmeans.labels_)

            # Att-LPA: refresh pseudo-labels on the attention-weighted graph.
            attention = model.attention_weights()
            weighted = sum(weight * matrix
                           for weight, matrix in zip(attention, propagations))
            pseudo_labels = attention_label_propagation(
                structural, weighted, seed=config.seed + round_index + 1)
            pseudo_labels = self._cap_labels(pseudo_labels, X, config.seed)

        with no_grad():
            embeddings, _ = model.forward(features, propagations)
        embedding_matrix = embeddings.numpy()
        kmeans = KMeans(self.n_clusters, seed=config.seed).fit(embedding_matrix)
        final_labels = kmeans.labels_
        if stopper.best_labels is not None and \
                stopper.best_score > self._score(embedding_matrix, final_labels):
            embedding_matrix = stopper.best_embedding
            final_labels = stopper.best_labels

        self.labels_ = final_labels
        self.embedding_ = embedding_matrix
        self.pseudo_labels_ = pseudo_labels
        self.attention_ = model.attention_weights()
        self.history_ = {"train_loss": losses, "silhouette": stopper.history}
        # Input-space centroids of the final clusters, for out-of-sample
        # assignment: SHGP's forward pass needs the whole heterogeneous
        # graph, which unseen points are not part of, so prediction falls
        # back to nearest-centroid in the input embedding space.
        uniques = np.unique(final_labels)
        self.centroid_labels_ = uniques.astype(np.int64)
        self.input_centroids_ = np.vstack(
            [X[final_labels == label].mean(axis=0) for label in uniques])
        self._fitted = True
        return self

    def predict(self, X) -> np.ndarray:
        """Assign new points to the nearest final-cluster input centroid."""
        self._require_fitted()
        X = check_matrix(X)
        nearest, _ = nearest_centers(X, self.input_centroids_)
        return self.centroid_labels_[nearest]

    # ------------------------------------------------------------------
    # checkpoint protocol (see repro.serialize)
    def checkpoint_params(self) -> dict:
        """JSON-able hyper-parameters (the predict path is centroid-based)."""
        from .base import config_to_dict

        self._require_fitted()
        return {
            "n_clusters": self.n_clusters,
            "hidden_dim": self.hidden_dim,
            "n_rounds": self.n_rounds,
            "epochs_per_round": self.epochs_per_round,
            "n_anchors": self.n_anchors,
            "knn_k": self.knn_k,
            "config": config_to_dict(self.config),
        }

    def checkpoint_arrays(self) -> dict[str, np.ndarray]:
        """Input-space centroids, their labels and the training labels."""
        self._require_fitted()
        return {"input_centroids": self.input_centroids_,
                "centroid_labels": self.centroid_labels_,
                "labels": self.labels_}

    @classmethod
    def from_checkpoint(cls, params: dict, arrays: dict) -> "SHGP":
        """Rebuild a trained SHGP from :mod:`repro.serialize` state."""
        from .base import config_from_dict

        model = cls(params["n_clusters"], hidden_dim=params["hidden_dim"],
                    n_rounds=params["n_rounds"],
                    epochs_per_round=params["epochs_per_round"],
                    n_anchors=params["n_anchors"], knn_k=params["knn_k"],
                    config=config_from_dict(params["config"]))
        model.input_centroids_ = np.asarray(arrays["input_centroids"])
        model.centroid_labels_ = np.asarray(arrays["centroid_labels"],
                                            dtype=np.int64)
        model.labels_ = np.asarray(arrays["labels"], dtype=np.int64)
        model._fitted = True
        return model

    # ------------------------------------------------------------------
    def _cap_labels(self, labels: np.ndarray, X: np.ndarray,
                    seed: int | None) -> np.ndarray:
        """Constrain pseudo-labels to at most ``n_clusters`` classes.

        Label propagation can produce more communities than the requested
        number of clusters; the Att-HGNN classifier head has ``n_clusters``
        outputs, so surplus communities are merged by clustering their
        centroids.
        """
        uniques = np.unique(labels)
        if uniques.size <= self.n_clusters:
            _, consecutive = np.unique(labels, return_inverse=True)
            return consecutive.astype(np.int64)
        centroids = np.vstack([X[labels == label].mean(axis=0)
                               for label in uniques])
        kmeans = KMeans(self.n_clusters, seed=seed).fit(centroids)
        mapping = {int(label): int(kmeans.labels_[index])
                   for index, label in enumerate(uniques)}
        return np.array([mapping[int(label)] for label in labels], dtype=np.int64)

    @staticmethod
    def _score(embedding: np.ndarray, labels: np.ndarray) -> float:
        from ..metrics.silhouette import silhouette_score

        return silhouette_score(embedding, labels)

    def _result_metadata(self) -> dict:
        return {"n_rounds": self.n_rounds,
                "attention": None if self.attention_ is None
                else self.attention_.tolist()}
