"""Structural Deep Clustering Network (SDCN, Bo et al. 2020).

SDCN combines two representation-learning branches:

* an **auto-encoder** branch capturing attribute information, and
* a **GCN** branch over a KNN graph of the inputs capturing structural
  information.

A *delivery operator* injects each AE hidden representation into the
corresponding GCN layer, and a *dual self-supervision* mechanism ties both
branches to a shared target distribution P: the AE branch through the
Student-t soft assignment Q (against trainable cluster centres) and the GCN
branch through its softmax output Z.  The joint loss is

``L = L_rec + alpha * KL(P || Q) + beta * KL(P || Z)``.

Following Section 4.2 of the paper, training epochs are selected with the
silhouette score, and when SDCN's fine-tuning does not improve the
silhouette over the pre-trained AE representation, the AE representation is
kept and clustered with Birch instead (see
:func:`repro.dc.stopping.select_sdcn_or_autoencoder`).
"""

from __future__ import annotations

import numpy as np

from ..clustering.birch import Birch
from ..clustering.kmeans import KMeans
from ..clustering.labels import soft_to_hard_assignment
from ..config import DeepClusteringConfig, make_rng
from ..exceptions import ConfigurationError
from ..graphs.gcn import GCNLayer
from ..graphs.knn import knn_graph, normalized_adjacency, sparse_knn_graph
from ..nn.sparse import CSRMatrix
from ..metrics.silhouette import silhouette_score
from ..nn import Adam, Tensor, kl_divergence, mse_loss, relu, no_grad
from ..utils.validation import check_matrix
from .autoencoder import Autoencoder
from .base import DeepClusterer, epoch_batches as _epoch_batches
from .stopping import SilhouetteStopper, select_sdcn_or_autoencoder
from .target_distribution import student_t_assignment, target_distribution

__all__ = ["SDCN"]


def _submatrix(adjacency, index: np.ndarray):
    """Restrict a (dense or CSR) propagation matrix to one batch of nodes."""
    if isinstance(adjacency, CSRMatrix):
        return adjacency.submatrix(index)
    return adjacency[np.ix_(index, index)]


class SDCN(DeepClusterer):
    """SDCN with AE + GCN branches and dual self-supervision.

    Parameters
    ----------
    n_clusters:
        Number of cluster centres used for initialisation (the GT ``K`` is
        only used here, as in the paper; the predicted number of clusters
        may be smaller).
    knn_k:
        Neighbourhood size of the KNN graph fed to the GCN branch.
    alpha, beta:
        Weights of the two KL terms (AE-branch and GCN-branch
        self-supervision).
    delivery_weight:
        Mixing weight ``epsilon`` of the delivery operator that injects AE
        hidden states into the GCN branch (0.5 in the reference
        implementation).
    auto_fallback:
        When True (default) the silhouette-based rule of Section 4.2 decides
        between the SDCN fine-tuned representation and the pre-trained AE
        representation clustered with Birch.
    """

    def __init__(self, n_clusters: int, *, knn_k: int = 10, alpha: float = 0.1,
                 beta: float = 0.01, delivery_weight: float = 0.5,
                 update_interval: int = 1, auto_fallback: bool = True,
                 config: DeepClusteringConfig | None = None) -> None:
        super().__init__(n_clusters, config)
        if knn_k < 1:
            raise ConfigurationError("knn_k must be >= 1")
        if not 0.0 <= delivery_weight <= 1.0:
            raise ConfigurationError("delivery_weight must be in [0, 1]")
        if alpha < 0 or beta < 0:
            raise ConfigurationError("alpha and beta must be non-negative")
        self.knn_k = knn_k
        self.alpha = alpha
        self.beta = beta
        self.delivery_weight = delivery_weight
        self.update_interval = max(1, int(update_interval))
        self.auto_fallback = auto_fallback
        self.autoencoder_: Autoencoder | None = None
        self.cluster_centers_: Tensor | None = None
        self.soft_assignments_: np.ndarray | None = None
        self.selected_branch_: str = "sdcn"
        self.fallback_clusterer_: Birch | None = None

    # ------------------------------------------------------------------
    def _build_gcn(self, input_dim: int, config: DeepClusteringConfig,
                   seed_sequence: np.random.Generator) -> list[GCNLayer]:
        """GCN layers mirroring the encoder dimensions plus a K-way output."""
        dims = [input_dim] + [config.layer_size] * config.n_layers \
            + [config.latent_dim]
        layers = [
            GCNLayer(dims[i], dims[i + 1], activation=relu,
                     seed=int(seed_sequence.integers(0, 2 ** 31 - 1)))
            for i in range(len(dims) - 1)
        ]
        layers.append(GCNLayer(dims[-1], self.n_clusters, activation=None,
                               seed=int(seed_sequence.integers(0, 2 ** 31 - 1))))
        return layers

    def _gcn_forward(self, x: Tensor, hidden_states: list[Tensor],
                     adjacency) -> Tensor:
        """Run the GCN branch with the delivery operator.

        ``hidden_states`` holds the AE encoder outputs (one per encoder
        layer, the last being the latent code); layer ``i`` of the GCN
        receives ``(1 - eps) * gcn_state + eps * ae_state`` as input.
        ``adjacency`` is the pre-normalised propagation matrix — dense array
        or :class:`~repro.nn.sparse.CSRMatrix`.
        """
        eps = self.delivery_weight
        state = x
        for index, layer in enumerate(self._gcn_layers):
            if 0 < index <= len(hidden_states):
                ae_state = hidden_states[index - 1]
                state = state * (1.0 - eps) + ae_state * eps
            state = layer(state, adjacency)
        return state.softmax(axis=1)

    # ------------------------------------------------------------------
    def fit(self, X) -> "SDCN":
        """Pre-train the AE, jointly fine-tune both branches, pick labels.

        ``X`` is an ``(n_samples, n_features)`` float matrix.  The KNN
        graph follows ``config.graph`` ("dense" or "sparse"/CSR), and
        ``config.batch_size`` switches the joint phase to mini-batches
        with per-batch target-distribution updates.
        """
        X = check_matrix(X)
        n_samples = X.shape[0]
        if n_samples < self.n_clusters:
            raise ConfigurationError(
                f"n_clusters={self.n_clusters} exceeds number of samples {n_samples}")
        config = self.config.scaled_for(n_samples)
        rng = make_rng(config.seed)

        # ------------------------------------------------------------------
        # Phase 1: pre-train the auto-encoder (reconstruction only).
        # ------------------------------------------------------------------
        self.autoencoder_ = Autoencoder(
            X.shape[1], latent_dim=config.latent_dim,
            layer_size=config.layer_size, n_layers=config.n_layers,
            seed=config.seed)
        pretrain_losses = self.autoencoder_.pretrain(
            X, epochs=config.pretrain_epochs, lr=config.learning_rate,
            batch_size=config.batch_size, seed=config.seed)
        pretrained_latent = self.autoencoder_.transform(X)

        # Baseline representation quality for the fallback rule.
        ae_kmeans = KMeans(self.n_clusters, seed=config.seed).fit(pretrained_latent)
        ae_silhouette = silhouette_score(pretrained_latent, ae_kmeans.labels_)

        # ------------------------------------------------------------------
        # Phase 2: joint training with dual self-supervision.
        # ------------------------------------------------------------------
        if config.graph == "sparse":
            adjacency = normalized_adjacency(sparse_knn_graph(
                X, k=self.knn_k, backend=config.graph_backend))
        else:
            adjacency = normalized_adjacency(knn_graph(X, k=self.knn_k))
        self._gcn_layers = self._build_gcn(X.shape[1], config, rng)
        self.cluster_centers_ = Tensor(ae_kmeans.cluster_centers_.copy(),
                                       requires_grad=True)

        parameters = list(self.autoencoder_.parameters())
        parameters.append(self.cluster_centers_)
        for layer in self._gcn_layers:
            parameters.extend(layer.parameters())
        optimizer = Adam(parameters, lr=config.learning_rate)

        stopper = SilhouetteStopper(patience=None)
        x_tensor = Tensor(X)
        losses: list[float] = []
        target_p: np.ndarray | None = None

        batch_size = config.batch_size
        minibatch = batch_size is not None and batch_size < n_samples

        for epoch in range(config.train_epochs):
            if minibatch:
                epoch_loss = 0.0
                for batch in _epoch_batches(rng, n_samples, batch_size):
                    optimizer.zero_grad()
                    x_batch = Tensor(X[batch])
                    latent, hidden = self.autoencoder_.encode(
                        x_batch, return_hidden=True)
                    reconstruction = self.autoencoder_.decode(latent)
                    q = student_t_assignment(latent, self.cluster_centers_)
                    z = self._gcn_forward(x_batch, hidden,
                                          _submatrix(adjacency, batch))
                    # Per-batch refresh: P is derived from the batch's own Q
                    # and treated as a constant for the step.
                    target_p = target_distribution(q.numpy())

                    loss = mse_loss(reconstruction, x_batch) \
                        * config.reconstruction_weight
                    loss = loss + kl_divergence(target_p, q) * self.alpha
                    loss = loss + kl_divergence(target_p, z) * self.beta
                    loss.backward()
                    optimizer.step()
                    epoch_loss += loss.item() * len(batch)
                losses.append(epoch_loss / n_samples)
                with no_grad():
                    latent, hidden = self.autoencoder_.encode(
                        x_tensor, return_hidden=True)
                    z = self._gcn_forward(x_tensor, hidden, adjacency)
            else:
                optimizer.zero_grad()
                latent, hidden = self.autoencoder_.encode(x_tensor,
                                                          return_hidden=True)
                reconstruction = self.autoencoder_.decode(latent)
                q = student_t_assignment(latent, self.cluster_centers_)
                z = self._gcn_forward(x_tensor, hidden, adjacency)

                if target_p is None or epoch % self.update_interval == 0:
                    # P is refreshed from the current Q and treated as constant.
                    target_p = target_distribution(q.numpy())

                loss = mse_loss(reconstruction, x_tensor) \
                    * config.reconstruction_weight
                loss = loss + kl_divergence(target_p, q) * self.alpha
                loss = loss + kl_divergence(target_p, z) * self.beta
                loss.backward()
                optimizer.step()
                losses.append(loss.item())

            labels = soft_to_hard_assignment(z.numpy())
            stopper.update(epoch, latent.numpy(), labels)

        # ------------------------------------------------------------------
        # Phase 3: select the representation per the silhouette rule.
        # ------------------------------------------------------------------
        with no_grad():
            latent, hidden = self.autoencoder_.encode(x_tensor, return_hidden=True)
            q = student_t_assignment(latent, self.cluster_centers_)
            z = self._gcn_forward(x_tensor, hidden, adjacency)
        final_latent = latent.numpy()
        final_labels = soft_to_hard_assignment(z.numpy())
        sdcn_silhouette = max(stopper.best_score,
                              silhouette_score(final_latent, final_labels))

        if stopper.best_labels is not None and stopper.best_score >= \
                silhouette_score(final_latent, final_labels):
            final_latent = stopper.best_embedding
            final_labels = stopper.best_labels

        self.selected_branch_ = "sdcn"
        self.fallback_clusterer_ = None
        if self.auto_fallback:
            choice = select_sdcn_or_autoencoder(sdcn_silhouette, ae_silhouette)
            if choice == "autoencoder":
                fallback = Birch(self.n_clusters, seed=config.seed)
                final_labels = fallback.fit_predict(pretrained_latent).labels
                final_latent = pretrained_latent
                self.selected_branch_ = "autoencoder"
                # Kept for out-of-sample prediction on the selected branch.
                self.fallback_clusterer_ = fallback

        self.labels_ = final_labels
        self.embedding_ = final_latent
        self.soft_assignments_ = q.numpy()
        self.history_ = {
            "pretrain_loss": pretrain_losses,
            "train_loss": losses,
            "silhouette": stopper.history,
        }
        self._fitted = True
        return self

    def _result_metadata(self) -> dict:
        return {"selected_branch": self.selected_branch_,
                "knn_k": self.knn_k,
                "alpha": self.alpha,
                "beta": self.beta}

    # ------------------------------------------------------------------
    def predict(self, X) -> np.ndarray:
        """Out-of-sample assignment through the selected branch.

        New points see only attribute information (there is no KNN graph for
        them), so the SDCN branch assigns via the encoder and the Student-t
        soft assignment against the trained centres — the ``argmax Q`` rule;
        when training selected the auto-encoder fallback, points are encoded
        and assigned by the fitted Birch instead.
        """
        self._require_fitted()
        X = check_matrix(X)
        with no_grad():
            latent = self.autoencoder_.encode(Tensor(X))
            if self.selected_branch_ == "autoencoder":
                return self.fallback_clusterer_.predict(latent.numpy())
            q = student_t_assignment(latent, self.cluster_centers_)
        return soft_to_hard_assignment(q.numpy())

    # ------------------------------------------------------------------
    # checkpoint protocol (see repro.serialize)
    def checkpoint_params(self) -> dict:
        """JSON-able state: hyper-parameters plus nested AE architecture."""
        from .base import autoencoder_checkpoint, config_to_dict

        self._require_fitted()
        params = {
            "n_clusters": self.n_clusters,
            "knn_k": self.knn_k,
            "alpha": self.alpha,
            "beta": self.beta,
            "delivery_weight": self.delivery_weight,
            "update_interval": self.update_interval,
            "auto_fallback": self.auto_fallback,
            "config": config_to_dict(self.config),
            "selected_branch": self.selected_branch_,
            "autoencoder": autoencoder_checkpoint(self.autoencoder_)[0],
        }
        if self.fallback_clusterer_ is not None:
            params["fallback_params"] = \
                self.fallback_clusterer_.checkpoint_params()
        return params

    def checkpoint_arrays(self) -> dict[str, np.ndarray]:
        """AE weights, trained centres, labels, optional fallback arrays."""
        self._require_fitted()
        arrays = {f"ae.{name}": value
                  for name, value in self.autoencoder_.state_dict().items()}
        arrays["cluster_centers"] = self.cluster_centers_.numpy()
        arrays["labels"] = self.labels_
        if self.fallback_clusterer_ is not None:
            for name, value in \
                    self.fallback_clusterer_.checkpoint_arrays().items():
                arrays[f"fallback.{name}"] = value
        return arrays

    @classmethod
    def from_checkpoint(cls, params: dict, arrays: dict) -> "SDCN":
        """Rebuild a trained SDCN (predict path only; GCN is not needed)."""
        from .base import (
            autoencoder_from_checkpoint,
            config_from_dict,
            split_prefixed_arrays,
        )

        model = cls(params["n_clusters"], knn_k=params["knn_k"],
                    alpha=params["alpha"], beta=params["beta"],
                    delivery_weight=params["delivery_weight"],
                    update_interval=params["update_interval"],
                    auto_fallback=params["auto_fallback"],
                    config=config_from_dict(params["config"]))
        model.autoencoder_ = autoencoder_from_checkpoint(
            params["autoencoder"], split_prefixed_arrays(arrays, "ae"))
        model.cluster_centers_ = Tensor(
            np.asarray(arrays["cluster_centers"]).copy(), requires_grad=True)
        model.labels_ = np.asarray(arrays["labels"], dtype=np.int64)
        model.selected_branch_ = params["selected_branch"]
        if "fallback_params" in params:
            model.fallback_clusterer_ = Birch.from_checkpoint(
                params["fallback_params"],
                split_prefixed_arrays(arrays, "fallback"))
        model._fitted = True
        return model
