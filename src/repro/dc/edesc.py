"""Efficient Deep Embedded Subspace Clustering (EDESC, Cai et al. 2022).

EDESC learns, on top of a pre-trained auto-encoder, one low-dimensional
*subspace basis* per cluster.  A latent point's soft assignment to cluster
``j`` is proportional to the energy of its projection onto basis ``D_j``;
the bases are refined jointly with the encoder so that points concentrate in
their own subspace.  Unlike classic self-expressive subspace clustering, no
n-by-n coefficient matrix is required, which is what makes the method
"efficient".

The implementation follows the reference formulation:

* soft assignment ``s_{ij} \\propto ||D_j^T z_i||^2`` (normalised over ``j``),
* DEC-style refinement loss ``KL(P || S)`` with the sharpened target P,
* basis regularisation pushing ``D^T D`` towards identity (orthonormal
  bases, distinct subspaces),
* reconstruction loss keeping the latent space faithful to the input.

The subspace dimension follows Section 4.2: the latent size is
``n_clusters * subspace_dim`` (``z = a`` with shape ``n_clusters x d``).
"""

from __future__ import annotations

import numpy as np

from ..clustering.kmeans import KMeans
from ..clustering.labels import soft_to_hard_assignment
from ..config import DeepClusteringConfig, make_rng
from ..exceptions import ConfigurationError
from ..nn import Adam, Tensor, kl_divergence, mse_loss, no_grad
from ..nn.layers import Parameter
from ..utils.validation import check_matrix
from .autoencoder import Autoencoder
from .base import DeepClusterer, epoch_batches as _epoch_batches
from .stopping import SilhouetteStopper
from .target_distribution import target_distribution

__all__ = ["EDESC"]


class EDESC(DeepClusterer):
    """Deep subspace clustering with iteratively refined subspace bases."""

    def __init__(self, n_clusters: int, *, subspace_dim: int = 5,
                 eta: float = 1.0, beta: float = 0.1, gamma: float = 0.1,
                 config: DeepClusteringConfig | None = None) -> None:
        super().__init__(n_clusters, config)
        if subspace_dim < 1:
            raise ConfigurationError("subspace_dim must be >= 1")
        if beta < 0 or gamma < 0 or eta <= 0:
            raise ConfigurationError("loss weights must be non-negative (eta > 0)")
        self.subspace_dim = int(subspace_dim)
        self.eta = float(eta)
        self.beta = float(beta)
        self.gamma = float(gamma)
        self.autoencoder_: Autoencoder | None = None
        self.subspace_bases_: np.ndarray | None = None
        self.soft_assignments_: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def latent_dim(self) -> int:
        """EDESC ties the latent size to ``n_clusters * subspace_dim``."""
        return self.n_clusters * self.subspace_dim

    def _initial_bases(self, latent: np.ndarray,
                       seed: int | None) -> np.ndarray:
        """Initialise subspace bases from K-means clusters of the latent codes.

        For each cluster, the top ``subspace_dim`` right singular vectors of
        the member matrix span the initial subspace, as in the reference
        implementation's K-means + SVD initialisation.  The bases are stored
        as a single ``(latent_dim, n_clusters * subspace_dim)`` matrix whose
        column blocks correspond to clusters, which keeps every operation a
        plain 2-D matrix product.
        """
        kmeans = KMeans(self.n_clusters, seed=seed).fit(latent)
        labels = kmeans.labels_
        d = latent.shape[1]
        rng = make_rng(seed)
        bases = np.zeros((d, self.n_clusters * self.subspace_dim))
        for cluster in range(self.n_clusters):
            members = latent[labels == cluster]
            if members.shape[0] >= self.subspace_dim:
                _, _, vt = np.linalg.svd(members - members.mean(axis=0),
                                         full_matrices=False)
                basis = vt[:self.subspace_dim].T
                if basis.shape[1] < self.subspace_dim:
                    pad = rng.normal(size=(d, self.subspace_dim - basis.shape[1]))
                    basis = np.concatenate([basis, pad], axis=1)
            else:
                basis = rng.normal(size=(d, self.subspace_dim))
            # Orthonormalise each basis.
            q, _ = np.linalg.qr(basis)
            q = q[:, :self.subspace_dim]
            if q.shape[1] < self.subspace_dim:
                pad = rng.normal(size=(d, self.subspace_dim - q.shape[1])) * 0.01
                q = np.concatenate([q, pad], axis=1)
            start = cluster * self.subspace_dim
            bases[:, start:start + self.subspace_dim] = q
        return bases

    def _soft_assignment(self, latent: Tensor, bases: Parameter) -> Tensor:
        """Soft subspace assignment S with ``s_{ij} ∝ ||D_j^T z_i||^2 + eta/K``."""
        n_clusters, s_dim = self.n_clusters, self.subspace_dim
        n_samples = latent.shape[0]
        projections = latent @ bases                           # (n, K * s_dim)
        squared = projections * projections
        # Sum the energy within each cluster's block of columns; the blocks
        # are contiguous, so a row-major reshape groups them correctly.
        blocks = squared.reshape(n_samples * n_clusters, s_dim)
        energy = blocks.sum(axis=1, keepdims=True).reshape(n_samples, n_clusters)
        smoothed = energy + self.eta / n_clusters
        return smoothed / smoothed.sum(axis=1, keepdims=True)

    def _basis_regularization(self, bases: Parameter) -> Tensor:
        """Push the stacked bases towards orthonormal columns."""
        total_columns = self.n_clusters * self.subspace_dim
        gram = bases.T @ bases                                 # (K*s, K*s)
        identity = Tensor(np.eye(total_columns))
        diff = gram - identity
        return (diff * diff).mean()

    # ------------------------------------------------------------------
    def fit(self, X) -> "EDESC":
        """Pre-train the AE, then refine subspace bases and encoder jointly.

        ``X`` is an ``(n_samples, n_features)`` float matrix; with
        ``config.batch_size`` set the refinement runs on mini-batches with
        per-batch target-distribution updates.
        """
        X = check_matrix(X)
        n_samples = X.shape[0]
        if n_samples < self.n_clusters:
            raise ConfigurationError(
                f"n_clusters={self.n_clusters} exceeds number of samples {n_samples}")
        config = self.config.scaled_for(n_samples)

        # Phase 1: pre-train the auto-encoder with the EDESC latent size.
        self.autoencoder_ = Autoencoder(
            X.shape[1], latent_dim=self.latent_dim,
            layer_size=config.layer_size, n_layers=config.n_layers,
            seed=config.seed)
        pretrain_losses = self.autoencoder_.pretrain(
            X, epochs=config.pretrain_epochs, lr=config.learning_rate,
            batch_size=config.batch_size, seed=config.seed)
        latent0 = self.autoencoder_.transform(X)

        # Phase 2: initialise subspace bases and refine jointly.
        bases = Parameter(self._initial_bases(latent0, config.seed))
        parameters = list(self.autoencoder_.parameters()) + [bases]
        optimizer = Adam(parameters, lr=config.learning_rate)

        stopper = SilhouetteStopper(patience=None)
        x_tensor = Tensor(X)
        losses: list[float] = []
        target_p: np.ndarray | None = None

        rng = make_rng(config.seed)
        batch_size = config.batch_size
        minibatch = batch_size is not None and batch_size < n_samples

        for epoch in range(config.train_epochs):
            if minibatch:
                epoch_loss = 0.0
                for batch in _epoch_batches(rng, n_samples, batch_size):
                    optimizer.zero_grad()
                    x_batch = Tensor(X[batch])
                    latent = self.autoencoder_.encode(x_batch)
                    reconstruction = self.autoencoder_.decode(latent)
                    s = self._soft_assignment(latent, bases)
                    # Per-batch target refresh (constant within the step).
                    target_p = target_distribution(s.numpy())

                    loss = mse_loss(reconstruction, x_batch) \
                        * config.reconstruction_weight
                    loss = loss + kl_divergence(target_p, s) * self.beta
                    loss = loss + self._basis_regularization(bases) * self.gamma
                    loss.backward()
                    optimizer.step()
                    epoch_loss += loss.item() * len(batch)
                losses.append(epoch_loss / n_samples)
                with no_grad():
                    latent = self.autoencoder_.encode(x_tensor)
                    s = self._soft_assignment(latent, bases)
            else:
                optimizer.zero_grad()
                latent = self.autoencoder_.encode(x_tensor)
                reconstruction = self.autoencoder_.decode(latent)
                s = self._soft_assignment(latent, bases)
                if target_p is None or epoch % 3 == 0:
                    target_p = target_distribution(s.numpy())

                loss = mse_loss(reconstruction, x_tensor) \
                    * config.reconstruction_weight
                loss = loss + kl_divergence(target_p, s) * self.beta
                loss = loss + self._basis_regularization(bases) * self.gamma
                loss.backward()
                optimizer.step()
                losses.append(loss.item())

            labels = soft_to_hard_assignment(s.numpy())
            stopper.update(epoch, latent.numpy(), labels)

        with no_grad():
            latent = self.autoencoder_.encode(x_tensor)
            s = self._soft_assignment(latent, bases)
        final_latent = latent.numpy()
        final_labels = soft_to_hard_assignment(s.numpy())

        if stopper.best_labels is not None and stopper.best_score > \
                self._silhouette_or_zero(final_latent, final_labels):
            final_latent = stopper.best_embedding
            final_labels = stopper.best_labels

        self.labels_ = final_labels
        self.embedding_ = final_latent
        self.soft_assignments_ = s.numpy()
        self.subspace_bases_ = bases.numpy()
        self.history_ = {
            "pretrain_loss": pretrain_losses,
            "train_loss": losses,
            "silhouette": stopper.history,
        }
        self._fitted = True
        return self

    @staticmethod
    def _silhouette_or_zero(embedding: np.ndarray, labels: np.ndarray) -> float:
        from ..metrics.silhouette import silhouette_score

        return silhouette_score(embedding, labels)

    def _result_metadata(self) -> dict:
        return {"subspace_dim": self.subspace_dim,
                "latent_dim": self.latent_dim}

    # ------------------------------------------------------------------
    def predict(self, X) -> np.ndarray:
        """Out-of-sample assignment: encode, project onto the bases, argmax.

        The soft subspace assignment S is evaluated with the trained encoder
        and subspace bases; each point takes the cluster whose subspace
        captures the most energy of its latent code.
        """
        self._require_fitted()
        X = check_matrix(X)
        with no_grad():
            latent = self.autoencoder_.encode(Tensor(X))
            s = self._soft_assignment(latent, Tensor(self.subspace_bases_))
        return soft_to_hard_assignment(s.numpy())

    # ------------------------------------------------------------------
    # checkpoint protocol (see repro.serialize)
    def checkpoint_params(self) -> dict:
        """JSON-able state: hyper-parameters plus nested AE architecture."""
        from .base import autoencoder_checkpoint, config_to_dict

        self._require_fitted()
        return {
            "n_clusters": self.n_clusters,
            "subspace_dim": self.subspace_dim,
            "eta": self.eta,
            "beta": self.beta,
            "gamma": self.gamma,
            "config": config_to_dict(self.config),
            "autoencoder": autoencoder_checkpoint(self.autoencoder_)[0],
        }

    def checkpoint_arrays(self) -> dict[str, np.ndarray]:
        """AE weights, subspace bases and training labels."""
        self._require_fitted()
        arrays = {f"ae.{name}": value
                  for name, value in self.autoencoder_.state_dict().items()}
        arrays["subspace_bases"] = self.subspace_bases_
        arrays["labels"] = self.labels_
        return arrays

    @classmethod
    def from_checkpoint(cls, params: dict, arrays: dict) -> "EDESC":
        """Rebuild a trained EDESC from :mod:`repro.serialize` state."""
        from .base import (
            autoencoder_from_checkpoint,
            config_from_dict,
            split_prefixed_arrays,
        )

        model = cls(params["n_clusters"], subspace_dim=params["subspace_dim"],
                    eta=params["eta"], beta=params["beta"],
                    gamma=params["gamma"],
                    config=config_from_dict(params["config"]))
        model.autoencoder_ = autoencoder_from_checkpoint(
            params["autoencoder"], split_prefixed_arrays(arrays, "ae"))
        model.subspace_bases_ = np.asarray(arrays["subspace_bases"])
        model.labels_ = np.asarray(arrays["labels"], dtype=np.int64)
        model._fitted = True
        return model
