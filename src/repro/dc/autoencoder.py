"""Auto-encoder representation learning and the AE clustering baseline.

The auto-encoder is the representation-learning backbone of SDCN and EDESC
(both pre-train an AE before their joint phase).  The paper additionally uses
the pre-trained AE *directly* — clustering its latent representation with
Birch or K-means — whenever the silhouette score shows that SDCN's joint
fine-tuning is not improving the representation (Sections 4.2, 6.1 and 7.1).
Those are the "AE" rows of Tables 4-6.
"""

from __future__ import annotations

import numpy as np

from ..clustering.birch import Birch
from ..clustering.kmeans import KMeans
from ..config import DeepClusteringConfig, make_rng
from ..exceptions import ConfigurationError
from ..nn import Adam, Linear, Module, Tensor, mse_loss, relu, no_grad
from ..utils.validation import check_matrix
from .base import DeepClusterer, epoch_batches

__all__ = ["Autoencoder", "AutoencoderClustering"]


class Autoencoder(Module):
    """Symmetric fully connected auto-encoder (Equations 1-2 and 4).

    The encoder maps the ``d``-dimensional input through ``n_layers`` hidden
    layers of ``layer_size`` units to a ``latent_dim``-dimensional code; the
    decoder mirrors the encoder.  ReLU activations everywhere except the two
    output layers, matching the SDCN/EDESC reference implementations.
    """

    def __init__(self, input_dim: int, *, latent_dim: int = 100,
                 layer_size: int = 1000, n_layers: int = 2,
                 seed: int | None = None) -> None:
        if input_dim < 1:
            raise ConfigurationError("input_dim must be >= 1")
        if latent_dim < 1:
            raise ConfigurationError("latent_dim must be >= 1")
        self.input_dim = input_dim
        self.latent_dim = latent_dim
        self.layer_size = layer_size
        self.n_layers = n_layers
        rng = make_rng(seed)
        seeds = rng.integers(0, 2 ** 31 - 1, size=2 * (n_layers + 1))

        encoder_dims = [input_dim] + [layer_size] * n_layers + [latent_dim]
        decoder_dims = list(reversed(encoder_dims))

        self.encoder_layers = [
            Linear(encoder_dims[i], encoder_dims[i + 1], seed=int(seeds[i]))
            for i in range(len(encoder_dims) - 1)
        ]
        self.decoder_layers = [
            Linear(decoder_dims[i], decoder_dims[i + 1],
                   seed=int(seeds[n_layers + 1 + i]))
            for i in range(len(decoder_dims) - 1)
        ]

    # ------------------------------------------------------------------
    def encode(self, x: Tensor, *, return_hidden: bool = False):
        """Encode ``x``; optionally return every hidden layer output.

        The per-layer hidden outputs are what SDCN's delivery operator feeds
        into the corresponding GCN layers.
        """
        hidden: list[Tensor] = []
        out = x
        for index, layer in enumerate(self.encoder_layers):
            out = layer(out)
            if index < len(self.encoder_layers) - 1:
                out = relu(out)
            hidden.append(out)
        if return_hidden:
            return out, hidden
        return out

    def decode(self, z: Tensor) -> Tensor:
        """Map latent codes ``(n, latent_dim)`` back to input space."""
        out = z
        for index, layer in enumerate(self.decoder_layers):
            out = layer(out)
            if index < len(self.decoder_layers) - 1:
                out = relu(out)
        return out

    def forward(self, x: Tensor) -> tuple[Tensor, Tensor]:
        """Return (reconstruction, latent code)."""
        latent = self.encode(x)
        return self.decode(latent), latent

    # ------------------------------------------------------------------
    def pretrain(self, X: np.ndarray, *, epochs: int = 30, lr: float = 1e-3,
                 batch_size: int | None = None,
                 seed: int | None = None) -> list[float]:
        """Minimise the reconstruction loss (Equation 4); return the loss curve."""
        X = check_matrix(X)
        optimizer = Adam(self.parameters(), lr=lr)
        rng = make_rng(seed)
        n_samples = X.shape[0]
        losses: list[float] = []
        for _ in range(epochs):
            if batch_size is None or batch_size >= n_samples:
                batches = [np.arange(n_samples)]
            else:
                batches = epoch_batches(rng, n_samples, batch_size)
            epoch_loss = 0.0
            for batch in batches:
                optimizer.zero_grad()
                x = Tensor(X[batch])
                reconstruction, _ = self.forward(x)
                loss = mse_loss(reconstruction, x)
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item() * len(batch)
            losses.append(epoch_loss / n_samples)
        return losses

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Encode ``X`` into the latent space without recording gradients."""
        X = check_matrix(X)
        with no_grad():
            latent = self.encode(Tensor(X))
        return latent.numpy()

    def reconstruct(self, X: np.ndarray) -> np.ndarray:
        """Round-trip ``X`` through the auto-encoder."""
        X = check_matrix(X)
        with no_grad():
            reconstruction, _ = self.forward(Tensor(X))
        return reconstruction.numpy()

    # ------------------------------------------------------------------
    # checkpoint protocol (see repro.serialize)
    def checkpoint_params(self) -> dict:
        """JSON-able architecture description."""
        from .base import autoencoder_checkpoint

        return autoencoder_checkpoint(self)[0]

    def checkpoint_arrays(self) -> dict[str, np.ndarray]:
        """Weight arrays, one entry per parameter (``Module.state_dict``)."""
        return self.state_dict()

    @classmethod
    def from_checkpoint(cls, params: dict, arrays: dict) -> "Autoencoder":
        """Rebuild a trained auto-encoder from :mod:`repro.serialize` state."""
        from .base import autoencoder_from_checkpoint

        return autoencoder_from_checkpoint(params, dict(arrays))


class AutoencoderClustering(DeepClusterer):
    """Pre-trained AE representation clustered with Birch or K-means.

    This is the "AE" method of Tables 4-6: representation learning without a
    clustering loss, followed by a standard clusterer on the latent codes.
    """

    def __init__(self, n_clusters: int, *, clusterer: str = "birch",
                 config: DeepClusteringConfig | None = None) -> None:
        super().__init__(n_clusters, config)
        if clusterer not in {"birch", "kmeans"}:
            raise ConfigurationError("clusterer must be 'birch' or 'kmeans'")
        self.clusterer = clusterer
        self.autoencoder_: Autoencoder | None = None
        self.clusterer_: Birch | KMeans | None = None

    def _make_clusterer(self):
        if self.clusterer == "kmeans":
            return KMeans(self.n_clusters, seed=self.config.seed)
        # Adaptive threshold: the AE latent space's scale depends on the
        # input embedding and training length, so Birch estimates its merge
        # radius from the data.
        return Birch(self.n_clusters, seed=self.config.seed)

    def fit(self, X) -> "AutoencoderClustering":
        """Pre-train the AE on ``X`` and cluster the latent codes."""
        X = check_matrix(X)
        config = self.config.scaled_for(X.shape[0])
        self.autoencoder_ = Autoencoder(
            X.shape[1], latent_dim=config.latent_dim,
            layer_size=config.layer_size, n_layers=config.n_layers,
            seed=config.seed)
        losses = self.autoencoder_.pretrain(
            X, epochs=config.pretrain_epochs, lr=config.learning_rate,
            batch_size=config.batch_size, seed=config.seed)
        latent = self.autoencoder_.transform(X)
        self.clusterer_ = self._make_clusterer()
        result = self.clusterer_.fit_predict(latent)
        self.labels_ = result.labels
        self.embedding_ = latent
        self.history_ = {"reconstruction_loss": losses}
        self._fitted = True
        return self

    def predict(self, X) -> np.ndarray:
        """Encode new points and assign them with the fitted clusterer."""
        self._require_fitted()
        latent = self.autoencoder_.transform(check_matrix(X))
        return self.clusterer_.predict(latent)

    def _result_metadata(self) -> dict:
        return {"clusterer": self.clusterer}

    # ------------------------------------------------------------------
    # checkpoint protocol (see repro.serialize)
    def checkpoint_params(self) -> dict:
        """JSON-able state: own config plus nested AE/clusterer params."""
        from .base import autoencoder_checkpoint, config_to_dict

        self._require_fitted()
        ae_params, _ = autoencoder_checkpoint(self.autoencoder_)
        return {
            "n_clusters": self.n_clusters,
            "clusterer": self.clusterer,
            "config": config_to_dict(self.config),
            "autoencoder": ae_params,
            "clusterer_params": self.clusterer_.checkpoint_params(),
        }

    def checkpoint_arrays(self) -> dict[str, np.ndarray]:
        """AE weights (``ae.``) and inner clusterer arrays (``clusterer.``)."""
        self._require_fitted()
        arrays = {f"ae.{name}": value
                  for name, value in self.autoencoder_.state_dict().items()}
        for name, value in self.clusterer_.checkpoint_arrays().items():
            arrays[f"clusterer.{name}"] = value
        arrays["labels"] = self.labels_
        return arrays

    @classmethod
    def from_checkpoint(cls, params: dict,
                        arrays: dict) -> "AutoencoderClustering":
        """Rebuild the fitted AE + clusterer pair from checkpoint state."""
        from .base import (
            autoencoder_from_checkpoint,
            config_from_dict,
            split_prefixed_arrays,
        )

        model = cls(params["n_clusters"], clusterer=params["clusterer"],
                    config=config_from_dict(params["config"]))
        model.autoencoder_ = autoencoder_from_checkpoint(
            params["autoencoder"], split_prefixed_arrays(arrays, "ae"))
        inner_cls = KMeans if params["clusterer"] == "kmeans" else Birch
        model.clusterer_ = inner_cls.from_checkpoint(
            params["clusterer_params"], split_prefixed_arrays(arrays, "clusterer"))
        model.labels_ = np.asarray(arrays["labels"], dtype=np.int64)
        model._fitted = True
        return model
