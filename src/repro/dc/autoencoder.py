"""Auto-encoder representation learning and the AE clustering baseline.

The auto-encoder is the representation-learning backbone of SDCN and EDESC
(both pre-train an AE before their joint phase).  The paper additionally uses
the pre-trained AE *directly* — clustering its latent representation with
Birch or K-means — whenever the silhouette score shows that SDCN's joint
fine-tuning is not improving the representation (Sections 4.2, 6.1 and 7.1).
Those are the "AE" rows of Tables 4-6.
"""

from __future__ import annotations

import numpy as np

from ..clustering.birch import Birch
from ..clustering.kmeans import KMeans
from ..config import DeepClusteringConfig, make_rng
from ..exceptions import ConfigurationError
from ..nn import Adam, Linear, Module, Tensor, mse_loss, relu, no_grad
from ..utils.validation import check_matrix
from .base import DeepClusterer, epoch_batches

__all__ = ["Autoencoder", "AutoencoderClustering"]


class Autoencoder(Module):
    """Symmetric fully connected auto-encoder (Equations 1-2 and 4).

    The encoder maps the ``d``-dimensional input through ``n_layers`` hidden
    layers of ``layer_size`` units to a ``latent_dim``-dimensional code; the
    decoder mirrors the encoder.  ReLU activations everywhere except the two
    output layers, matching the SDCN/EDESC reference implementations.
    """

    def __init__(self, input_dim: int, *, latent_dim: int = 100,
                 layer_size: int = 1000, n_layers: int = 2,
                 seed: int | None = None) -> None:
        if input_dim < 1:
            raise ConfigurationError("input_dim must be >= 1")
        if latent_dim < 1:
            raise ConfigurationError("latent_dim must be >= 1")
        self.input_dim = input_dim
        self.latent_dim = latent_dim
        self.layer_size = layer_size
        self.n_layers = n_layers
        rng = make_rng(seed)
        seeds = rng.integers(0, 2 ** 31 - 1, size=2 * (n_layers + 1))

        encoder_dims = [input_dim] + [layer_size] * n_layers + [latent_dim]
        decoder_dims = list(reversed(encoder_dims))

        self.encoder_layers = [
            Linear(encoder_dims[i], encoder_dims[i + 1], seed=int(seeds[i]))
            for i in range(len(encoder_dims) - 1)
        ]
        self.decoder_layers = [
            Linear(decoder_dims[i], decoder_dims[i + 1],
                   seed=int(seeds[n_layers + 1 + i]))
            for i in range(len(decoder_dims) - 1)
        ]

    # ------------------------------------------------------------------
    def encode(self, x: Tensor, *, return_hidden: bool = False):
        """Encode ``x``; optionally return every hidden layer output.

        The per-layer hidden outputs are what SDCN's delivery operator feeds
        into the corresponding GCN layers.
        """
        hidden: list[Tensor] = []
        out = x
        for index, layer in enumerate(self.encoder_layers):
            out = layer(out)
            if index < len(self.encoder_layers) - 1:
                out = relu(out)
            hidden.append(out)
        if return_hidden:
            return out, hidden
        return out

    def decode(self, z: Tensor) -> Tensor:
        """Map latent codes ``(n, latent_dim)`` back to input space."""
        out = z
        for index, layer in enumerate(self.decoder_layers):
            out = layer(out)
            if index < len(self.decoder_layers) - 1:
                out = relu(out)
        return out

    def forward(self, x: Tensor) -> tuple[Tensor, Tensor]:
        """Return (reconstruction, latent code)."""
        latent = self.encode(x)
        return self.decode(latent), latent

    # ------------------------------------------------------------------
    def pretrain(self, X: np.ndarray, *, epochs: int = 30, lr: float = 1e-3,
                 batch_size: int | None = None,
                 seed: int | None = None) -> list[float]:
        """Minimise the reconstruction loss (Equation 4); return the loss curve."""
        X = check_matrix(X)
        optimizer = Adam(self.parameters(), lr=lr)
        rng = make_rng(seed)
        n_samples = X.shape[0]
        losses: list[float] = []
        for _ in range(epochs):
            if batch_size is None or batch_size >= n_samples:
                batches = [np.arange(n_samples)]
            else:
                batches = epoch_batches(rng, n_samples, batch_size)
            epoch_loss = 0.0
            for batch in batches:
                optimizer.zero_grad()
                x = Tensor(X[batch])
                reconstruction, _ = self.forward(x)
                loss = mse_loss(reconstruction, x)
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item() * len(batch)
            losses.append(epoch_loss / n_samples)
        return losses

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Encode ``X`` into the latent space without recording gradients."""
        X = check_matrix(X)
        with no_grad():
            latent = self.encode(Tensor(X))
        return latent.numpy()

    def reconstruct(self, X: np.ndarray) -> np.ndarray:
        """Round-trip ``X`` through the auto-encoder."""
        X = check_matrix(X)
        with no_grad():
            reconstruction, _ = self.forward(Tensor(X))
        return reconstruction.numpy()


class AutoencoderClustering(DeepClusterer):
    """Pre-trained AE representation clustered with Birch or K-means.

    This is the "AE" method of Tables 4-6: representation learning without a
    clustering loss, followed by a standard clusterer on the latent codes.
    """

    def __init__(self, n_clusters: int, *, clusterer: str = "birch",
                 config: DeepClusteringConfig | None = None) -> None:
        super().__init__(n_clusters, config)
        if clusterer not in {"birch", "kmeans"}:
            raise ConfigurationError("clusterer must be 'birch' or 'kmeans'")
        self.clusterer = clusterer
        self.autoencoder_: Autoencoder | None = None

    def _make_clusterer(self):
        if self.clusterer == "kmeans":
            return KMeans(self.n_clusters, seed=self.config.seed)
        # Adaptive threshold: the AE latent space's scale depends on the
        # input embedding and training length, so Birch estimates its merge
        # radius from the data.
        return Birch(self.n_clusters, seed=self.config.seed)

    def fit(self, X) -> "AutoencoderClustering":
        """Pre-train the AE on ``X`` and cluster the latent codes."""
        X = check_matrix(X)
        config = self.config.scaled_for(X.shape[0])
        self.autoencoder_ = Autoencoder(
            X.shape[1], latent_dim=config.latent_dim,
            layer_size=config.layer_size, n_layers=config.n_layers,
            seed=config.seed)
        losses = self.autoencoder_.pretrain(
            X, epochs=config.pretrain_epochs, lr=config.learning_rate,
            batch_size=config.batch_size, seed=config.seed)
        latent = self.autoencoder_.transform(X)
        result = self._make_clusterer().fit_predict(latent)
        self.labels_ = result.labels
        self.embedding_ = latent
        self.history_ = {"reconstruction_loss": losses}
        self._fitted = True
        return self

    def _result_metadata(self) -> dict:
        return {"clusterer": self.clusterer}
