"""Shared base class for the deep clustering algorithms."""

from __future__ import annotations

from dataclasses import asdict

import numpy as np

from ..clustering.base import ClusteringResult, FittableMixin
from ..config import DeepClusteringConfig
from ..exceptions import ConfigurationError

__all__ = ["DeepClusterer", "epoch_batches"]


def config_to_dict(config: DeepClusteringConfig) -> dict:
    """JSON-able representation of a config, for checkpoint headers."""
    return asdict(config)


def config_from_dict(payload: dict) -> DeepClusteringConfig:
    """Inverse of :func:`config_to_dict`."""
    return DeepClusteringConfig(**payload)


def autoencoder_checkpoint(autoencoder) -> tuple[dict, dict[str, np.ndarray]]:
    """Split a fitted auto-encoder into (architecture params, weight arrays).

    The architecture is recorded from the *instance* (not the config) because
    ``DeepClusteringConfig.scaled_for`` may have capped the layer sizes at fit
    time; the weights come from ``Module.state_dict`` and are stored under an
    ``ae.`` key prefix by the callers.
    """
    params = {
        "input_dim": autoencoder.input_dim,
        "latent_dim": autoencoder.latent_dim,
        "layer_size": autoencoder.layer_size,
        "n_layers": autoencoder.n_layers,
    }
    return params, autoencoder.state_dict()


def autoencoder_from_checkpoint(params: dict, state: dict[str, np.ndarray]):
    """Rebuild an auto-encoder from :func:`autoencoder_checkpoint` output."""
    from .autoencoder import Autoencoder

    autoencoder = Autoencoder(
        params["input_dim"], latent_dim=params["latent_dim"],
        layer_size=params["layer_size"], n_layers=params["n_layers"], seed=0)
    autoencoder.load_state_dict(state)
    return autoencoder


def split_prefixed_arrays(arrays: dict[str, np.ndarray],
                          prefix: str) -> dict[str, np.ndarray]:
    """Extract the entries of ``arrays`` under ``prefix.`` (prefix stripped)."""
    marker = f"{prefix}."
    return {name[len(marker):]: value for name, value in arrays.items()
            if name.startswith(marker)}


def epoch_batches(rng: np.random.Generator, n_samples: int,
                  batch_size: int):
    """Yield one epoch of shuffled mini-batch index arrays.

    Every sample appears exactly once per epoch; the final batch may be
    smaller than ``batch_size``.  Shared by auto-encoder pre-training and
    the SDCN/EDESC fine-tuning loops.
    """
    order = rng.permutation(n_samples)
    for start in range(0, n_samples, batch_size):
        yield order[start:start + batch_size]


class DeepClusterer(FittableMixin):
    """Base class holding the configuration common to all DC methods.

    Unlike the SC baselines, DC methods use the number of clusters ``K`` only
    to initialise cluster centres for pre-training; the final number of
    predicted clusters can differ from ``K`` (SDCN in particular often
    produces fewer, denser clusters — finding 3 in Section 8.1).
    """

    def __init__(self, n_clusters: int,
                 config: DeepClusteringConfig | None = None) -> None:
        if n_clusters < 2:
            raise ConfigurationError("n_clusters must be >= 2 for deep clustering")
        self.n_clusters = int(n_clusters)
        self.config = config or DeepClusteringConfig()
        self.labels_: np.ndarray | None = None
        self.embedding_: np.ndarray | None = None
        self.history_: dict[str, list[float]] = {}

    # Subclasses implement fit(); fit_predict is shared.
    def fit(self, X) -> "DeepClusterer":  # pragma: no cover - abstract
        """Train on ``(n_samples, n_features)`` data (subclass hook)."""
        raise NotImplementedError

    def predict(self, X) -> np.ndarray:  # pragma: no cover - abstract
        """Assign new points to the learned clusters (subclass hook)."""
        raise NotImplementedError

    def fit_predict(self, X) -> ClusteringResult:
        """Fit the model and package the outcome as a :class:`ClusteringResult`."""
        self.fit(X)
        labels = self.labels_
        n_clusters = int(np.unique(labels).size)
        return ClusteringResult(
            labels=labels,
            n_clusters=n_clusters,
            embedding=self.embedding_,
            soft_assignments=getattr(self, "soft_assignments_", None),
            metadata={"history": self.history_, **self._result_metadata()},
        )

    def _result_metadata(self) -> dict:
        """Extra metadata subclasses may want to surface."""
        return {}
