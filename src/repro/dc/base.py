"""Shared base class for the deep clustering algorithms."""

from __future__ import annotations

import numpy as np

from ..clustering.base import ClusteringResult, FittableMixin
from ..config import DeepClusteringConfig
from ..exceptions import ConfigurationError

__all__ = ["DeepClusterer", "epoch_batches"]


def epoch_batches(rng: np.random.Generator, n_samples: int,
                  batch_size: int):
    """Yield one epoch of shuffled mini-batch index arrays.

    Every sample appears exactly once per epoch; the final batch may be
    smaller than ``batch_size``.  Shared by auto-encoder pre-training and
    the SDCN/EDESC fine-tuning loops.
    """
    order = rng.permutation(n_samples)
    for start in range(0, n_samples, batch_size):
        yield order[start:start + batch_size]


class DeepClusterer(FittableMixin):
    """Base class holding the configuration common to all DC methods.

    Unlike the SC baselines, DC methods use the number of clusters ``K`` only
    to initialise cluster centres for pre-training; the final number of
    predicted clusters can differ from ``K`` (SDCN in particular often
    produces fewer, denser clusters — finding 3 in Section 8.1).
    """

    def __init__(self, n_clusters: int,
                 config: DeepClusteringConfig | None = None) -> None:
        if n_clusters < 2:
            raise ConfigurationError("n_clusters must be >= 2 for deep clustering")
        self.n_clusters = int(n_clusters)
        self.config = config or DeepClusteringConfig()
        self.labels_: np.ndarray | None = None
        self.embedding_: np.ndarray | None = None
        self.history_: dict[str, list[float]] = {}

    # Subclasses implement fit(); fit_predict is shared.
    def fit(self, X) -> "DeepClusterer":  # pragma: no cover - abstract
        """Train on ``(n_samples, n_features)`` data (subclass hook)."""
        raise NotImplementedError

    def fit_predict(self, X) -> ClusteringResult:
        """Fit the model and package the outcome as a :class:`ClusteringResult`."""
        self.fit(X)
        labels = self.labels_
        n_clusters = int(np.unique(labels).size)
        return ClusteringResult(
            labels=labels,
            n_clusters=n_clusters,
            embedding=self.embedding_,
            soft_assignments=getattr(self, "soft_assignments_", None),
            metadata={"history": self.history_, **self._result_metadata()},
        )

    def _result_metadata(self) -> dict:
        """Extra metadata subclasses may want to surface."""
        return {}
