"""DBSCAN density-based clustering (Ester et al., 1996).

The paper configures DBSCAN with the elbow-method heuristic for ``eps`` (see
:mod:`repro.clustering.eps_selection`) and sets ``min_samples`` to the number
of ground-truth clusters when the ``2 * dim`` rule of thumb is unusable for
high-dimensional embeddings.  DBSCAN frequently collapses to a single cluster
on dense embedding spaces, which is one of the paper's reported findings.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..exceptions import ConfigurationError
from ..index.base import INDEX_BACKENDS
from ..utils.metrics_dispatch import pairwise_distances
from .base import ClusteringResult, FittableMixin, nearest_centers
from .eps_selection import estimate_eps_elbow

__all__ = ["DBSCAN"]

NOISE = -1
_UNVISITED = -2

#: Core-point query backends: ``exact`` is the vectorised nearest-centre
#: scan; the rest route through a :mod:`repro.index` vector index.
_CORE_QUERY_BACKENDS = ("exact",) + INDEX_BACKENDS

#: Fraction of streamed points labelled noise beyond which
#: :attr:`DBSCAN.refit_recommended_` flips to True.
_REFIT_NOISE_FRACTION = 0.3


class DBSCAN(FittableMixin):
    """Classic DBSCAN over Euclidean distances.

    Parameters
    ----------
    eps:
        Neighbourhood radius.  ``None`` triggers the paper's elbow-method
        estimate at fit time.
    min_samples:
        Minimum neighbourhood size (including the point itself) for a core
        point.
    index:
        Backend answering the out-of-sample core-point queries that
        :meth:`predict` and the eps-absorption passes of
        :meth:`partial_fit` issue: ``"exact"`` (the default — a vectorised
        scan over all stored core points), ``"flat"`` (the same scan
        through the :mod:`repro.index` machinery) or the approximate
        ``"ivf"``/``"hnsw"`` backends, which drop per-query cost below
        O(n_cores * d) at a small recall cost (a point whose true nearest
        core the index misses may be labelled noise or absorb a
        neighbouring cluster's label).
    """

    def __init__(self, eps: float | None = None, *, min_samples: int = 5,
                 index: str = "exact") -> None:
        if eps is not None and eps <= 0:
            raise ConfigurationError("eps must be positive (or None to estimate)")
        if min_samples < 1:
            raise ConfigurationError("min_samples must be >= 1")
        if index not in _CORE_QUERY_BACKENDS:
            raise ConfigurationError(
                f"unknown index backend {index!r}; expected one of "
                f"{_CORE_QUERY_BACKENDS}")
        self.eps = eps
        self.min_samples = int(min_samples)
        self.index = index
        self._core_index = None
        self.eps_: float | None = None
        self.labels_: np.ndarray | None = None
        self.core_sample_indices_: np.ndarray | None = None
        self.components_: np.ndarray | None = None
        self.component_labels_: np.ndarray | None = None
        # Streaming counters (see partial_fit / refit_recommended_).
        self.n_streamed_: int = 0
        self.n_streamed_noise_: int = 0
        self.n_unabsorbed_cores_: int = 0

    @staticmethod
    def _pairwise_distances(X: np.ndarray) -> np.ndarray:
        return pairwise_distances(X, metric="euclidean")

    def _nearest_cores(self, X: np.ndarray, components: np.ndarray
                       ) -> tuple[np.ndarray, np.ndarray]:
        """Nearest stored core point per row: ``(positions, distances)``.

        Dispatches on the ``index`` backend: the exact scan, or a cached
        :mod:`repro.index` over the core points (kept incrementally in
        sync by the promotion path of :meth:`partial_fit`).
        """
        if self.index == "exact":
            return nearest_centers(X, components)
        index = self._core_index
        if index is None or index.size != components.shape[0]:
            from ..index import create_index

            index = create_index(self.index, metric="euclidean")
            index.build(components)
            self._core_index = index
        positions, distances = index.query(X, 1)
        return positions[:, 0], distances[:, 0]

    def fit(self, X) -> "DBSCAN":
        X = self._validate(X)
        n_samples = X.shape[0]
        self._core_index = None  # the core set is about to be replaced
        self.eps_ = float(self.eps) if self.eps is not None else \
            estimate_eps_elbow(X, k=max(self.min_samples, 2))
        if self.eps_ <= 0:
            # Degenerate data (all points identical): a single dense cluster.
            self.labels_ = np.zeros(n_samples, dtype=np.int64)
            self.core_sample_indices_ = np.arange(n_samples)
            self.components_ = X.copy()
            self.component_labels_ = self.labels_.copy()
            self._fitted = True
            return self

        distances = self._pairwise_distances(X)
        neighborhoods = [np.flatnonzero(distances[i] <= self.eps_)
                         for i in range(n_samples)]
        core = np.array([len(neigh) >= self.min_samples for neigh in neighborhoods])

        labels = np.full(n_samples, _UNVISITED, dtype=np.int64)
        cluster_id = 0
        for point in range(n_samples):
            if labels[point] != _UNVISITED or not core[point]:
                continue
            # Breadth-first expansion of a new cluster from this core point.
            labels[point] = cluster_id
            queue = deque(neighborhoods[point])
            while queue:
                neighbor = queue.popleft()
                if labels[neighbor] == NOISE:
                    labels[neighbor] = cluster_id
                if labels[neighbor] != _UNVISITED:
                    continue
                labels[neighbor] = cluster_id
                if core[neighbor]:
                    queue.extend(neighborhoods[neighbor])
            cluster_id += 1

        labels[labels == _UNVISITED] = NOISE
        self.labels_ = labels
        self.core_sample_indices_ = np.flatnonzero(core)
        # Retained for out-of-sample prediction: the epsilon-neighbour rule
        # only needs the core points and their cluster labels.
        self.components_ = X[self.core_sample_indices_].copy()
        self.component_labels_ = labels[self.core_sample_indices_].copy()
        self._fitted = True
        return self

    def partial_fit(self, X) -> "DBSCAN":
        """Absorb a batch of new points into the fitted density model.

        New points within ``eps_`` of a stored core point inherit that
        core's cluster; an absorbed point that is itself dense — at least
        ``min_samples`` neighbours among the stored core points and this
        batch — is *promoted* to a core point, extending the cluster's
        reach for later arrivals (the passes repeat until no further point
        can be absorbed).  A dense region with no existing cluster in range
        cannot be resolved incrementally (it would need a new cluster id
        and the full neighbourhood graph), so such points are counted and
        surface through :attr:`refit_recommended_` instead of being
        guessed at.  Called on an unfitted estimator this delegates to
        :meth:`fit`.
        """
        if not getattr(self, "_fitted", False):
            return self.fit(X)
        X = self._validate(X)
        if self.components_.shape[0] and \
                X.shape[1] != self.components_.shape[1]:
            raise ConfigurationError(
                f"partial_fit batch has {X.shape[1]} features; the fitted "
                f"model expects {self.components_.shape[1]}")
        n = X.shape[0]
        eps = self.eps_ if self.eps_ > 0 else 0.0
        # Within-batch distances are reused by every absorption pass.
        batch_distances = self._pairwise_distances(X)
        batch_neighbors = batch_distances <= eps
        labels = np.full(n, NOISE, dtype=np.int64)
        assigned = np.zeros(n, dtype=bool)
        promoted = np.zeros(n, dtype=bool)
        components = self.components_
        component_labels = self.component_labels_
        while True:
            pending = np.flatnonzero(~assigned)
            if pending.size == 0 or components.shape[0] == 0:
                break
            nearest, distance = self._nearest_cores(X[pending], components)
            reachable = distance <= eps
            if not np.any(reachable):
                break
            hit = pending[reachable]
            labels[hit] = component_labels[nearest[reachable]]
            assigned[hit] = True
            # Promote dense absorbed points: their neighbourhood spans the
            # stored cores plus this batch (the point itself included).
            # Same O(h*m) distance expansion as _pairwise_distances — never
            # the (h, m, d) broadcast, which would blow up memory by a
            # factor of d on wide embeddings.
            d2 = (np.sum(X[hit] ** 2, axis=1)[:, None]
                  + np.sum(components ** 2, axis=1)[None, :]
                  - 2.0 * (X[hit] @ components.T))
            np.maximum(d2, 0.0, out=d2)
            core_counts = np.sum(d2 <= eps * eps, axis=1)
            batch_counts = batch_neighbors[hit].sum(axis=1)
            dense = (core_counts + batch_counts) >= self.min_samples
            newly = hit[dense & ~promoted[hit]]
            if newly.size == 0:
                break
            promoted[newly] = True
            components = np.vstack([components, X[newly]])
            component_labels = np.concatenate(
                [component_labels, labels[newly]])
            if self._core_index is not None:
                # Keep the cached query index aligned with the growing
                # core set (the incremental-add write path).
                self._core_index.add(X[newly])
        self.components_ = components
        self.component_labels_ = component_labels
        # Unabsorbed dense points are evidence of a *new* cluster the
        # incremental path cannot create.
        unassigned = ~assigned
        dense_unassigned = unassigned & \
            (batch_neighbors.sum(axis=1) >= self.min_samples)
        self.n_streamed_ += n
        self.n_streamed_noise_ += int(np.sum(unassigned))
        self.n_unabsorbed_cores_ += int(np.sum(dense_unassigned))
        return self

    @property
    def refit_recommended_(self) -> bool:
        """Has streaming accumulated structure this model cannot absorb?

        True once any streamed dense region fell outside every existing
        cluster, or once the fraction of streamed points labelled noise
        exceeds ``30%`` — in either case the incremental assignments remain
        *valid* but a full refit would recover genuinely new clusters.
        """
        if self.n_unabsorbed_cores_ > 0:
            return True
        return (self.n_streamed_ > 0
                and self.n_streamed_noise_ / self.n_streamed_
                > _REFIT_NOISE_FRACTION)

    def predict(self, X) -> np.ndarray:
        """Assign new points with the epsilon-neighbour rule.

        A point inherits the cluster of its nearest *core* training point
        when that core point lies within ``eps_``; otherwise it is noise
        (``-1``).  This matches how DBSCAN labels border points, extended to
        unseen data.
        """
        self._require_fitted()
        X = self._validate(X)
        if self.components_ is None or self.components_.shape[0] == 0:
            return np.full(X.shape[0], NOISE, dtype=np.int64)
        nearest, distance = self._nearest_cores(X, self.components_)
        labels = self.component_labels_[nearest].astype(np.int64)
        labels[distance > self.eps_] = NOISE
        return labels

    # ------------------------------------------------------------------
    # checkpoint protocol (see repro.serialize)
    def checkpoint_params(self) -> dict:
        """JSON-able constructor and fitted scalar state."""
        self._require_fitted()
        return {
            "eps": self.eps,
            "min_samples": self.min_samples,
            "index": self.index,
            "fitted_eps": self.eps_,
            "n_streamed": self.n_streamed_,
            "n_streamed_noise": self.n_streamed_noise_,
            "n_unabsorbed_cores": self.n_unabsorbed_cores_,
        }

    def checkpoint_arrays(self) -> dict[str, np.ndarray]:
        """Fitted arrays: core points, their labels, and training labels."""
        self._require_fitted()
        return {"components": self.components_,
                "component_labels": self.component_labels_,
                "core_sample_indices": self.core_sample_indices_,
                "labels": self.labels_}

    @classmethod
    def from_checkpoint(cls, params: dict, arrays: dict) -> "DBSCAN":
        """Rebuild a fitted estimator from :mod:`repro.serialize` state."""
        model = cls(params["eps"], min_samples=params["min_samples"],
                    index=params.get("index", "exact"))
        model.eps_ = params["fitted_eps"]
        model.components_ = np.asarray(arrays["components"])
        model.component_labels_ = np.asarray(arrays["component_labels"],
                                             dtype=np.int64)
        model.core_sample_indices_ = np.asarray(
            arrays["core_sample_indices"], dtype=np.int64)
        model.labels_ = np.asarray(arrays["labels"], dtype=np.int64)
        model.n_streamed_ = int(params.get("n_streamed", 0))
        model.n_streamed_noise_ = int(params.get("n_streamed_noise", 0))
        model.n_unabsorbed_cores_ = int(params.get("n_unabsorbed_cores", 0))
        model._fitted = True
        return model

    def fit_predict(self, X) -> ClusteringResult:
        self.fit(X)
        uniques = np.unique(self.labels_)
        n_clusters = int(np.sum(uniques != NOISE))
        return ClusteringResult(
            labels=self.labels_,
            n_clusters=n_clusters,
            metadata={
                "eps": self.eps_,
                "min_samples": self.min_samples,
                "n_noise": int(np.sum(self.labels_ == NOISE)),
                "n_core": int(self.core_sample_indices_.size),
            },
        )
