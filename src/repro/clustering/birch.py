"""BIRCH clustering (Zhang, Ramakrishnan & Livny, 1996).

BIRCH builds a height-balanced Clustering Feature (CF) tree in a single pass
over the data; each leaf entry summarises a sub-cluster by its count, linear
sum and squared sum.  The leaf sub-cluster centroids are then globally
clustered (here with agglomerative merging, falling back to K-means when a
fixed ``n_clusters`` is requested), and every input point inherits the label
of its nearest sub-cluster centroid.

The paper uses Birch both as an SC baseline and as the clustering step
applied to auto-encoder representations in the entity resolution and domain
discovery experiments ("AE with Birch").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ConfigurationError
from .base import ClusteringResult, FittableMixin, nearest_centers
from .kmeans import KMeans

__all__ = ["Birch"]


@dataclass
class _CFEntry:
    """Clustering feature: (N, linear sum, squared norm sum)."""

    n: int
    linear_sum: np.ndarray
    squared_sum: float
    child: "_CFNode | None" = None

    @classmethod
    def from_point(cls, x: np.ndarray) -> "_CFEntry":
        return cls(n=1, linear_sum=x.copy(), squared_sum=float(np.dot(x, x)))

    @property
    def centroid(self) -> np.ndarray:
        return self.linear_sum / self.n

    @property
    def radius(self) -> float:
        """RMS distance of points in the entry to its centroid."""
        centroid = self.centroid
        mean_sq = self.squared_sum / self.n
        value = mean_sq - float(np.dot(centroid, centroid))
        return float(np.sqrt(max(value, 0.0)))

    def merge(self, other: "_CFEntry") -> None:
        self.n += other.n
        self.linear_sum = self.linear_sum + other.linear_sum
        self.squared_sum += other.squared_sum

    def merged_radius(self, other: "_CFEntry") -> float:
        n = self.n + other.n
        linear = self.linear_sum + other.linear_sum
        squared = self.squared_sum + other.squared_sum
        centroid = linear / n
        value = squared / n - float(np.dot(centroid, centroid))
        return float(np.sqrt(max(value, 0.0)))


@dataclass
class _CFNode:
    """A node of the CF tree holding up to ``branching_factor`` entries."""

    is_leaf: bool
    entries: list[_CFEntry] = field(default_factory=list)

    def centroids(self) -> np.ndarray:
        return np.vstack([entry.centroid for entry in self.entries])


class Birch(FittableMixin):
    """CF-tree based BIRCH with a global clustering refinement step."""

    def __init__(self, n_clusters: int | None = None, *,
                 threshold: float | None = None,
                 branching_factor: int = 50, seed: int | None = None) -> None:
        if n_clusters is not None and n_clusters < 1:
            raise ConfigurationError("n_clusters must be >= 1 or None")
        if threshold is not None and threshold <= 0:
            raise ConfigurationError("threshold must be positive (or None to estimate)")
        if branching_factor < 2:
            raise ConfigurationError("branching_factor must be >= 2")
        self.n_clusters = n_clusters
        # ``None`` estimates the merge threshold from the data at fit time;
        # embedding scales vary wildly between raw SBERT vectors and learned
        # AE latent spaces, so a fixed absolute radius is rarely appropriate.
        self.threshold = None if threshold is None else float(threshold)
        self.threshold_: float | None = None
        self.branching_factor = int(branching_factor)
        self.seed = seed
        self.subcluster_centers_: np.ndarray | None = None
        self.subcluster_labels_: np.ndarray | None = None
        self.subcluster_weights_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.n_seen_: int = 0
        self._root: _CFNode | None = None

    # ------------------------------------------------------------------
    # CF-tree construction
    # ------------------------------------------------------------------
    def _insert(self, node: _CFNode, entry: _CFEntry) -> _CFNode | None:
        """Insert ``entry`` below ``node``; return a new sibling on split."""
        if node.is_leaf:
            if node.entries:
                centroids = node.centroids()
                distances = np.linalg.norm(centroids - entry.centroid, axis=1)
                closest = int(np.argmin(distances))
                candidate = node.entries[closest]
                if candidate.merged_radius(entry) <= self.threshold_:
                    candidate.merge(entry)
                    return None
            node.entries.append(entry)
            if len(node.entries) > self.branching_factor:
                return self._split(node)
            return None

        # Internal node: descend into the closest child.
        centroids = node.centroids()
        distances = np.linalg.norm(centroids - entry.centroid, axis=1)
        closest = int(np.argmin(distances))
        chosen = node.entries[closest]
        sibling = self._insert(chosen.child, entry)
        chosen.merge(entry)
        if sibling is not None:
            node.entries.append(self._summarise(sibling))
            if len(node.entries) > self.branching_factor:
                return self._split(node)
        return None

    @staticmethod
    def _summarise(node: _CFNode) -> _CFEntry:
        total = _CFEntry(n=0,
                         linear_sum=np.zeros_like(node.entries[0].linear_sum),
                         squared_sum=0.0,
                         child=node)
        for entry in node.entries:
            total.n += entry.n
            total.linear_sum = total.linear_sum + entry.linear_sum
            total.squared_sum += entry.squared_sum
        return total

    def _split(self, node: _CFNode) -> _CFNode:
        """Split an over-full node in two along its most separated entries."""
        centroids = node.centroids()
        d2 = np.sum((centroids[:, None, :] - centroids[None, :, :]) ** 2, axis=2)
        seed_a, seed_b = np.unravel_index(np.argmax(d2), d2.shape)
        entries = node.entries
        keep: list[_CFEntry] = []
        move: list[_CFEntry] = []
        for index, entry in enumerate(entries):
            if np.sum((entry.centroid - centroids[seed_a]) ** 2) <= \
               np.sum((entry.centroid - centroids[seed_b]) ** 2):
                keep.append(entry)
            else:
                move.append(entry)
        if not keep or not move:  # degenerate: force a balanced split
            keep, move = entries[::2], entries[1::2]
        node.entries = keep
        return _CFNode(is_leaf=node.is_leaf, entries=move)

    def _insert_entry(self, entry: _CFEntry) -> None:
        """Insert one CF entry at the root, growing the tree on a split."""
        sibling = self._insert(self._root, entry)
        if sibling is not None:
            old_root = self._root
            self._root = _CFNode(is_leaf=False,
                                 entries=[self._summarise(old_root),
                                          self._summarise(sibling)])

    def _build_tree(self, X: np.ndarray) -> None:
        self._root = _CFNode(is_leaf=True)
        for row in X:
            self._insert_entry(_CFEntry.from_point(row))

    def _leaf_entries(self) -> list[_CFEntry]:
        leaves: list[_CFEntry] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                leaves.extend(node.entries)
            else:
                stack.extend(entry.child for entry in node.entries
                             if entry.child is not None)
        return leaves

    # ------------------------------------------------------------------
    # Global clustering of leaf sub-clusters
    # ------------------------------------------------------------------
    def _global_cluster(self, centers: np.ndarray, weights: np.ndarray) -> np.ndarray:
        n_sub = centers.shape[0]
        if self.n_clusters is None or self.n_clusters >= n_sub:
            return np.arange(n_sub, dtype=np.int64)
        kmeans = KMeans(self.n_clusters, seed=self.seed, n_init=4)
        # Weight sub-clusters by repeating centres proportionally to size so
        # that large sub-clusters dominate the global step, as in BIRCH.
        repeat = np.clip(np.round(weights / weights.min()).astype(int), 1, 20)
        expanded = np.repeat(centers, repeat, axis=0)
        kmeans.fit(expanded)
        return kmeans.predict(centers)

    # ------------------------------------------------------------------
    def _estimate_threshold(self, X: np.ndarray) -> float:
        """Estimate the CF merge radius from the data's local distance scale.

        Half of the mean 2nd-nearest-neighbour distance (on a sample) keeps
        genuinely close points merging into the same CF entry while leaving
        well-separated points in distinct sub-clusters, whatever the overall
        scale of the embedding space.
        """
        from .eps_selection import kth_nearest_neighbor_distances

        sample = X if X.shape[0] <= 256 else X[
            np.linspace(0, X.shape[0] - 1, 256).astype(int)]
        distances = kth_nearest_neighbor_distances(sample, k=2)
        estimate = 0.5 * float(np.mean(distances))
        return estimate if estimate > 0 else 0.5

    def fit(self, X) -> "Birch":
        X = self._validate(X)
        if self.n_clusters is not None and X.shape[0] < self.n_clusters:
            raise ConfigurationError(
                f"n_clusters={self.n_clusters} exceeds number of samples {X.shape[0]}")
        self.threshold_ = (self.threshold if self.threshold is not None
                           else self._estimate_threshold(X))
        self._build_tree(X)
        self._refresh_subclusters()
        self.labels_ = self.predict(X)
        self.n_seen_ = int(X.shape[0])
        self._fitted = True
        return self

    def _refresh_subclusters(self) -> None:
        """Recompute centroids/weights/global labels from the leaf entries."""
        leaves = self._leaf_entries()
        centers = np.vstack([entry.centroid for entry in leaves])
        weights = np.array([entry.n for entry in leaves], dtype=np.float64)
        self.subcluster_centers_ = centers
        self.subcluster_weights_ = weights
        self.subcluster_labels_ = self._global_cluster(centers, weights)

    def _rebuild_tree_from_subclusters(self) -> None:
        """Reconstruct a leaf-level CF tree from checkpointed sub-clusters.

        Checkpoints persist the sub-cluster centroids and weights but not
        the CF tree; rebuilding inserts one weighted entry per sub-cluster
        (its internal spread is lost, so each behaves as ``n`` coincident
        points at the centroid — a slightly conservative merge radius).
        """
        weights = (self.subcluster_weights_
                   if self.subcluster_weights_ is not None
                   else np.ones(self.subcluster_centers_.shape[0]))
        self._root = _CFNode(is_leaf=True)
        for center, weight in zip(self.subcluster_centers_, weights):
            n = max(1, int(round(weight)))
            self._insert_entry(_CFEntry(
                n=n, linear_sum=center * n,
                squared_sum=float(n * np.dot(center, center))))

    def partial_fit(self, X) -> "Birch":
        """Insert a batch of new points into the existing CF tree (streaming).

        The tree built at fit time is reused — new points merge into (or
        split) the existing leaf sub-clusters under the fitted threshold —
        and the global clustering step is re-run over the updated leaves.
        After a checkpoint round-trip the tree is first rebuilt from the
        persisted sub-cluster summaries.  Called on an unfitted estimator
        this delegates to :meth:`fit`.
        """
        if not getattr(self, "_fitted", False):
            return self.fit(X)
        X = self._validate(X)
        if X.shape[1] != self.subcluster_centers_.shape[1]:
            raise ConfigurationError(
                f"partial_fit batch has {X.shape[1]} features; the fitted "
                f"model expects {self.subcluster_centers_.shape[1]}")
        if self._root is None:
            self._rebuild_tree_from_subclusters()
        for row in X:
            self._insert_entry(_CFEntry.from_point(row))
        self._refresh_subclusters()
        self.n_seen_ += int(X.shape[0])
        return self

    def predict(self, X) -> np.ndarray:
        """Label points by their nearest sub-cluster centroid."""
        if self.subcluster_centers_ is None:
            raise ConfigurationError("Birch.predict called before fit")
        X = self._validate(X)
        nearest, _ = nearest_centers(X, self.subcluster_centers_)
        return self.subcluster_labels_[nearest].astype(np.int64)

    def fit_predict(self, X) -> ClusteringResult:
        self.fit(X)
        return ClusteringResult(
            labels=self.labels_,
            n_clusters=int(np.unique(self.labels_).size),
            metadata={
                "n_subclusters": int(self.subcluster_centers_.shape[0]),
                "threshold": self.threshold_,
            },
        )

    # ------------------------------------------------------------------
    # checkpoint protocol (see repro.serialize)
    def checkpoint_params(self) -> dict:
        """JSON-able constructor and fitted scalar state.

        ``predict`` only needs the sub-cluster centroids and their global
        labels, so the CF tree itself is not persisted.
        """
        self._require_fitted()
        return {
            "n_clusters": self.n_clusters,
            "threshold": self.threshold,
            "fitted_threshold": self.threshold_,
            "branching_factor": self.branching_factor,
            "seed": self.seed,
            "n_seen": self.n_seen_,
        }

    def checkpoint_arrays(self) -> dict[str, np.ndarray]:
        """Fitted arrays: sub-cluster summaries and training labels."""
        self._require_fitted()
        arrays = {"subcluster_centers": self.subcluster_centers_,
                  "subcluster_labels": self.subcluster_labels_,
                  "labels": self.labels_}
        if self.subcluster_weights_ is not None:
            arrays["subcluster_weights"] = self.subcluster_weights_
        return arrays

    @classmethod
    def from_checkpoint(cls, params: dict, arrays: dict) -> "Birch":
        """Rebuild a fitted estimator from :mod:`repro.serialize` state."""
        model = cls(params["n_clusters"], threshold=params["threshold"],
                    branching_factor=params["branching_factor"],
                    seed=params["seed"])
        model.threshold_ = params["fitted_threshold"]
        model.subcluster_centers_ = np.asarray(arrays["subcluster_centers"])
        model.subcluster_labels_ = np.asarray(arrays["subcluster_labels"],
                                              dtype=np.int64)
        if "subcluster_weights" in arrays:
            model.subcluster_weights_ = np.asarray(
                arrays["subcluster_weights"], dtype=np.float64)
        model.labels_ = np.asarray(arrays["labels"], dtype=np.int64)
        model.n_seen_ = int(params.get("n_seen", model.labels_.shape[0]))
        model._fitted = True
        return model
