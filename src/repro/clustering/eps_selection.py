"""Elbow-method selection of DBSCAN's ``eps`` parameter (Section 4).

The paper follows the common heuristic (Schubert et al., 2017): compute each
point's distance to its k-th nearest neighbour, sort those distances, and
pick the "elbow" of the resulting curve — the point of maximum curvature,
located here as the point with the largest distance to the chord joining the
curve's endpoints (the so-called "kneedle" construction).
"""

from __future__ import annotations

import numpy as np

from ..utils.metrics_dispatch import squared_euclidean_distances
from ..utils.validation import check_matrix

__all__ = ["kth_nearest_neighbor_distances", "estimate_eps_elbow"]


def kth_nearest_neighbor_distances(X, k: int = 4) -> np.ndarray:
    """Distance from each point to its k-th nearest neighbour (excluding self)."""
    X = check_matrix(X)
    if k < 1:
        raise ValueError("k must be >= 1")
    n = X.shape[0]
    k = min(k, n - 1) if n > 1 else 1
    d2 = squared_euclidean_distances(X)
    np.fill_diagonal(d2, np.inf)
    if n == 1:
        return np.zeros(1)
    # Partial sort: k-th smallest distance per row.
    kth = np.partition(d2, kth=k - 1, axis=1)[:, k - 1]
    return np.sqrt(kth)


def estimate_eps_elbow(X, k: int = 4) -> float:
    """Estimate DBSCAN ``eps`` as the elbow of the sorted k-NN distance curve."""
    distances = np.sort(kth_nearest_neighbor_distances(X, k=k))
    n = distances.size
    if n == 0:
        return 0.0
    if n == 1 or distances[-1] == distances[0]:
        # Flat curve: fall back to the (common) distance value, slightly padded
        # so identical points land in one neighbourhood.
        return float(distances[-1]) if distances[-1] > 0 else 0.0

    # Kneedle: farthest point from the straight line joining the endpoints.
    x = np.arange(n, dtype=np.float64)
    y = distances
    x_norm = (x - x[0]) / (x[-1] - x[0])
    y_norm = (y - y[0]) / (y[-1] - y[0])
    # Distance from each point to the y = x chord.
    deviation = np.abs(y_norm - x_norm)
    elbow_index = int(np.argmax(deviation))
    eps = float(distances[elbow_index])
    if eps <= 0:
        positive = distances[distances > 0]
        eps = float(positive[0]) if positive.size else 0.0
    return eps
