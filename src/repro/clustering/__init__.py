"""Standard (non-deep) clustering algorithms.

These are the SC baselines of the paper (Section 4): K-means, Birch and
DBSCAN, plus the elbow-method heuristic the paper uses to choose DBSCAN's
``eps``.  All clusterers share the :class:`~repro.clustering.base.BaseClusterer`
interface so tasks and experiments can treat SC and DC methods uniformly.
"""

from .base import BaseClusterer, ClusteringResult, nearest_centers
from .kmeans import KMeans
from .birch import Birch
from .dbscan import DBSCAN
from .eps_selection import estimate_eps_elbow, kth_nearest_neighbor_distances
from .labels import (
    soft_to_hard_assignment,
    cluster_sizes,
    relabel_noise_as_singletons,
    number_of_clusters,
)

__all__ = [
    "BaseClusterer",
    "ClusteringResult",
    "nearest_centers",
    "KMeans",
    "Birch",
    "DBSCAN",
    "estimate_eps_elbow",
    "kth_nearest_neighbor_distances",
    "soft_to_hard_assignment",
    "cluster_sizes",
    "relabel_noise_as_singletons",
    "number_of_clusters",
]
