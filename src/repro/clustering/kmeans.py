"""K-means clustering with k-means++ initialisation (Hartigan & Wong style).

K-means is both an SC baseline in its own right and a building block of the
DC methods: SDCN and EDESC initialise their cluster centres / subspace bases
with K-means on the pre-trained latent representation, and SHGP clusters its
learned embeddings with K-means.
"""

from __future__ import annotations

import numpy as np

from ..config import make_rng
from ..exceptions import ConfigurationError
from .base import ClusteringResult, FittableMixin

__all__ = ["KMeans"]


class KMeans(FittableMixin):
    """Lloyd's algorithm with k-means++ seeding and multiple restarts.

    ``init="random"`` swaps the k-means++ seeding for a uniform sample of
    the data — the O(n * k * d) sequential seeding loop is the dominant
    cost when k is large relative to the iteration count, which is exactly
    the coarse-quantizer regime :class:`repro.index.IVFFlatIndex` trains
    in (many cells, few Lloyd iterations, quality set by the data volume).
    """

    def __init__(self, n_clusters: int, *, n_init: int = 4, max_iter: int = 300,
                 tol: float = 1e-6, seed: int | None = None,
                 init: str = "k-means++") -> None:
        if n_clusters < 1:
            raise ConfigurationError("n_clusters must be >= 1")
        if n_init < 1:
            raise ConfigurationError("n_init must be >= 1")
        if max_iter < 1:
            raise ConfigurationError("max_iter must be >= 1")
        if init not in ("k-means++", "random"):
            raise ConfigurationError(
                f"init must be 'k-means++' or 'random', got {init!r}")
        self.n_clusters = int(n_clusters)
        self.n_init = int(n_init)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.seed = seed
        self.init = init
        self.cluster_centers_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.inertia_: float | None = None
        self.n_iter_: int = 0
        # Streaming state (see partial_fit): points ever assigned per centre.
        self.counts_: np.ndarray | None = None
        self.n_seen_: int = 0

    # ------------------------------------------------------------------
    def _init_centers(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """k-means++ seeding (or a uniform sample with ``init="random"``)."""
        n_samples = X.shape[0]
        if self.init == "random":
            return X[rng.choice(n_samples, size=self.n_clusters,
                                replace=False)].copy()
        centers = np.empty((self.n_clusters, X.shape[1]), dtype=np.float64)
        first = rng.integers(n_samples)
        centers[0] = X[first]
        closest_sq = np.sum((X - centers[0]) ** 2, axis=1)
        for c in range(1, self.n_clusters):
            total = closest_sq.sum()
            if total <= 0:
                # All remaining points coincide with an existing centre.
                centers[c:] = X[rng.integers(n_samples, size=self.n_clusters - c)]
                break
            probabilities = closest_sq / total
            chosen = rng.choice(n_samples, p=probabilities)
            centers[c] = X[chosen]
            new_sq = np.sum((X - centers[c]) ** 2, axis=1)
            np.minimum(closest_sq, new_sq, out=closest_sq)
        return centers

    @staticmethod
    def _assign(X: np.ndarray, centers: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return (labels, squared distance to the assigned centre)."""
        x_sq = np.sum(X ** 2, axis=1)[:, None]
        c_sq = np.sum(centers ** 2, axis=1)[None, :]
        d2 = x_sq + c_sq - 2.0 * (X @ centers.T)
        np.maximum(d2, 0.0, out=d2)
        labels = np.argmin(d2, axis=1)
        return labels, d2[np.arange(X.shape[0]), labels]

    def _single_run(self, X: np.ndarray, rng: np.random.Generator
                    ) -> tuple[np.ndarray, np.ndarray, float, int]:
        centers = self._init_centers(X, rng)
        labels = np.full(X.shape[0], -1, dtype=np.int64)
        n_iter = 0
        for n_iter in range(1, self.max_iter + 1):
            new_labels, distances = self._assign(X, centers)
            new_centers = centers.copy()
            for c in range(self.n_clusters):
                members = X[new_labels == c]
                if len(members):
                    new_centers[c] = members.mean(axis=0)
                else:
                    # Re-seed an empty cluster at the point farthest from its centre.
                    farthest = int(np.argmax(distances))
                    new_centers[c] = X[farthest]
            shift = float(np.linalg.norm(new_centers - centers))
            centers = new_centers
            if np.array_equal(new_labels, labels) or shift <= self.tol:
                labels = new_labels
                break
            labels = new_labels
        _, distances = self._assign(X, centers)
        inertia = float(distances.sum())
        return labels, centers, inertia, n_iter

    # ------------------------------------------------------------------
    def fit(self, X) -> "KMeans":
        """Fit the estimator on ``X`` (rows are samples)."""
        X = self._validate(X)
        if X.shape[0] < self.n_clusters:
            raise ConfigurationError(
                f"n_clusters={self.n_clusters} exceeds number of samples {X.shape[0]}")
        rng = make_rng(self.seed)
        best: tuple[np.ndarray, np.ndarray, float, int] | None = None
        for _ in range(self.n_init):
            run = self._single_run(X, rng)
            if best is None or run[2] < best[2]:
                best = run
        labels, centers, inertia, n_iter = best
        self.labels_ = labels
        self.cluster_centers_ = centers
        self.inertia_ = inertia
        self.n_iter_ = n_iter
        self.counts_ = np.bincount(labels, minlength=self.n_clusters
                                   ).astype(np.float64)
        self.n_seen_ = int(X.shape[0])
        self._fitted = True
        return self

    def partial_fit(self, X) -> "KMeans":
        """Update the fitted centres with a batch of new points (streaming).

        Mini-batch K-means update (Sculley 2010): each new point pulls its
        nearest centre towards itself with a per-centre learning rate of
        ``1 / count``, so every centre tracks the running mean of all points
        ever assigned to it.  On a stream whose batches keep the same
        nearest-centre partition as a batch fit of the concatenation, the
        incremental centres converge to the same fixed point — the parity
        the streaming tests assert.  Called on an unfitted estimator this
        simply delegates to :meth:`fit`.
        """
        if not getattr(self, "_fitted", False):
            return self.fit(X)
        X = self._validate(X)
        if X.shape[1] != self.cluster_centers_.shape[1]:
            raise ConfigurationError(
                f"partial_fit batch has {X.shape[1]} features; the fitted "
                f"model expects {self.cluster_centers_.shape[1]}")
        if self.counts_ is None:
            # Restored from a pre-streaming checkpoint: recover the per-centre
            # counts from the stored training labels.
            self.counts_ = np.bincount(self.labels_,
                                       minlength=self.n_clusters
                                       ).astype(np.float64)
            self.n_seen_ = int(self.labels_.shape[0])
        labels, _ = self._assign(X, self.cluster_centers_)
        centers = self.cluster_centers_.copy()
        for cluster in np.unique(labels):
            members = X[labels == cluster]
            total = self.counts_[cluster] + members.shape[0]
            # Exact streaming-mean update: old_mean + (batch_sum - k*old)/total.
            centers[cluster] += (members.sum(axis=0)
                                 - members.shape[0] * centers[cluster]) / total
            self.counts_[cluster] = total
        self.cluster_centers_ = centers
        self.n_seen_ += int(X.shape[0])
        # The training-time inertia no longer describes the updated centres.
        self.inertia_ = None
        return self

    def predict(self, X) -> np.ndarray:
        """Assign new points to the nearest learned centre."""
        self._require_fitted()
        X = self._validate(X)
        labels, _ = self._assign(X, self.cluster_centers_)
        return labels.astype(np.int64)

    def fit_predict(self, X) -> ClusteringResult:
        """Fit on ``X`` and return a :class:`ClusteringResult`."""
        self.fit(X)
        return ClusteringResult(
            labels=self.labels_,
            n_clusters=int(np.unique(self.labels_).size),
            embedding=None,
            metadata={"inertia": self.inertia_, "n_iter": self.n_iter_},
        )

    # ------------------------------------------------------------------
    # checkpoint protocol (see repro.serialize)
    def checkpoint_params(self) -> dict:
        """JSON-able constructor and fitted scalar state."""
        self._require_fitted()
        return {
            "n_clusters": self.n_clusters,
            "n_init": self.n_init,
            "max_iter": self.max_iter,
            "tol": self.tol,
            "seed": self.seed,
            "init": self.init,
            "inertia": self.inertia_,
            "n_iter": self.n_iter_,
            "n_seen": self.n_seen_,
        }

    def checkpoint_arrays(self) -> dict[str, np.ndarray]:
        """Fitted arrays: learned centres, training labels, stream counts."""
        self._require_fitted()
        arrays = {"cluster_centers": self.cluster_centers_,
                  "labels": self.labels_}
        if self.counts_ is not None:
            arrays["counts"] = self.counts_
        return arrays

    @classmethod
    def from_checkpoint(cls, params: dict, arrays: dict) -> "KMeans":
        """Rebuild a fitted estimator from :mod:`repro.serialize` state."""
        model = cls(params["n_clusters"], n_init=params["n_init"],
                    max_iter=params["max_iter"], tol=params["tol"],
                    seed=params["seed"],
                    init=params.get("init", "k-means++"))
        model.cluster_centers_ = np.asarray(arrays["cluster_centers"])
        model.labels_ = np.asarray(arrays["labels"], dtype=np.int64)
        model.inertia_ = params["inertia"]
        model.n_iter_ = params["n_iter"]
        # Streaming state; absent from pre-streaming checkpoints, in which
        # case partial_fit recovers the counts from the training labels.
        if "counts" in arrays:
            model.counts_ = np.asarray(arrays["counts"], dtype=np.float64)
        model.n_seen_ = int(params.get("n_seen", model.labels_.shape[0]))
        model._fitted = True
        return model
