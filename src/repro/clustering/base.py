"""Common interface for standard and deep clusterers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from ..exceptions import NotFittedError
from ..utils.metrics_dispatch import squared_euclidean_distances
from ..utils.validation import check_matrix

__all__ = ["BaseClusterer", "ClusteringResult", "nearest_centers"]


def nearest_centers(X: np.ndarray,
                    centers: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Nearest Euclidean centre per row: ``(indices, distances)``.

    The shared kernel behind every centroid-style ``predict`` (Birch
    sub-clusters, DBSCAN core points, SHGP input centroids), built on the
    :func:`~repro.utils.metrics_dispatch.squared_euclidean_distances`
    expansion (clamped at zero before the square root so floating-point
    cancellation never produces NaNs).
    """
    d2 = squared_euclidean_distances(X, centers)
    indices = np.argmin(d2, axis=1)
    distances = np.sqrt(d2[np.arange(X.shape[0]), indices])
    return indices, distances


@dataclass
class ClusteringResult:
    """Outcome of running a clusterer on an embedding matrix.

    Attributes
    ----------
    labels:
        Hard cluster assignment, one integer per input row.  DBSCAN noise
        points keep the conventional label ``-1``.
    n_clusters:
        Number of distinct non-noise clusters actually produced (the ``K``
        rows of the paper's result tables).
    embedding:
        Optional learned representation (DC methods expose the latent space
        used for the assignment; SC methods return the input unchanged).
    soft_assignments:
        Optional soft assignment matrix Q (DC methods only).
    metadata:
        Algorithm-specific diagnostics (losses, silhouette trajectory, epochs
        trained, timings).
    """

    labels: np.ndarray
    n_clusters: int
    embedding: np.ndarray | None = None
    soft_assignments: np.ndarray | None = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.labels = np.asarray(self.labels, dtype=np.int64)


@runtime_checkable
class BaseClusterer(Protocol):
    """Structural interface every clusterer in the library satisfies."""

    def fit_predict(self, X) -> ClusteringResult:
        """Cluster the rows of ``X`` and return a :class:`ClusteringResult`."""
        ...


class FittableMixin:
    """Helper mixin giving clusterers a uniform fitted-state guard."""

    _fitted: bool = False

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before calling this method")

    @staticmethod
    def _validate(X) -> np.ndarray:
        return check_matrix(X)
