"""Label-vector utilities shared by clusterers and evaluation code."""

from __future__ import annotations

import numpy as np

from ..utils.validation import check_labels

__all__ = [
    "soft_to_hard_assignment",
    "cluster_sizes",
    "relabel_noise_as_singletons",
    "number_of_clusters",
]


def soft_to_hard_assignment(soft: np.ndarray) -> np.ndarray:
    """Convert a soft assignment matrix (n x K) to hard labels by argmax.

    This is the final step of every DC method: the K-dimensional continuous
    label-space vector is reduced to a 1-dimensional discrete clustering.
    """
    soft = np.asarray(soft, dtype=np.float64)
    if soft.ndim != 2:
        raise ValueError("soft assignment matrix must be 2-dimensional")
    return np.argmax(soft, axis=1).astype(np.int64)


def cluster_sizes(labels) -> dict[int, int]:
    """Return a mapping cluster id -> number of members (noise included)."""
    labels = check_labels(labels)
    uniques, counts = np.unique(labels, return_counts=True)
    return {int(c): int(n) for c, n in zip(uniques, counts)}


def relabel_noise_as_singletons(labels) -> np.ndarray:
    """Give every DBSCAN noise point (-1) its own singleton cluster id.

    Evaluation metrics require every item to belong to some cluster; treating
    each noise point as a singleton matches how the paper scores DBSCAN runs
    that mark points as noise.
    """
    labels = check_labels(labels).copy()
    noise = np.flatnonzero(labels == -1)
    if noise.size == 0:
        return labels
    next_label = labels.max() + 1 if labels.size else 0
    for offset, index in enumerate(noise):
        labels[index] = next_label + offset
    return labels


def number_of_clusters(labels, *, count_noise: bool = False) -> int:
    """Number of distinct clusters in a label vector.

    ``-1`` (noise) is excluded unless ``count_noise`` is set; this matches
    the ``K`` rows reported in the paper's tables, where DBSCAN sometimes
    produces 0 or 1 clusters.
    """
    labels = check_labels(labels)
    uniques = np.unique(labels)
    if not count_noise:
        uniques = uniques[uniques != -1]
    return int(uniques.size)
