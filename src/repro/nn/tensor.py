"""Reverse-mode automatic differentiation over numpy arrays.

The engine implements exactly the operations required by the deep clustering
models: dense matrix algebra, element-wise arithmetic, reductions,
non-linearities and a handful of shape operations.  Gradients flow through a
dynamically recorded computation graph; :meth:`Tensor.backward` performs a
topological traversal and accumulates ``grad`` on every leaf tensor created
with ``requires_grad=True``.

Broadcasting follows numpy semantics: gradients of broadcast operands are
summed back to the operand's original shape (see :func:`_unbroadcast`).
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable

import numpy as np

__all__ = ["Tensor", "no_grad"]

# Graph recording is toggled per *thread*: the experiment harness trains
# independent models on a thread pool, and a process-wide flag would let one
# worker's no_grad() inference silently disable another worker's training
# graph mid-construction.
_GRAD_STATE = threading.local()


def _grad_enabled() -> bool:
    return getattr(_GRAD_STATE, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph recording (cheaper inference).

    The toggle is thread-local, so concurrent training in other threads is
    unaffected.
    """
    previous = _grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over broadcast dimensions so it matches ``shape``."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dimensions that were expanded from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _as_array(value) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


class Tensor:
    """A numpy array with an attached gradient and backward function."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, *, requires_grad: bool = False,
                 parents: Iterable["Tensor"] = (),
                 backward: Callable[[np.ndarray], None] | None = None,
                 name: str | None = None) -> None:
        grad_enabled = _grad_enabled()
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and grad_enabled
        self.grad: np.ndarray | None = None
        self._parents: tuple[Tensor, ...] = tuple(parents) if grad_enabled else ()
        self._backward = backward if grad_enabled else None
        self.name = name

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of array dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    @property
    def T(self) -> "Tensor":
        """Transposed view (alias for :meth:`transpose`)."""
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """First element as a python float (for scalar losses)."""
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to ``None``."""
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _lift(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _needs_graph(self, *others: "Tensor") -> bool:
        if not _grad_enabled():
            return False
        return self.requires_grad or any(o.requires_grad for o in others)

    def _make(self, data: np.ndarray, parents: tuple["Tensor", ...],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        if not (_grad_enabled() and requires):
            return Tensor(data)
        out = Tensor(data, requires_grad=True, parents=parents, backward=backward)
        return out

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = self._lift(other)
        data = self.data + other.data

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.data.shape))

        return self._make(data, (self, other), _backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        data = -self.data

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return self._make(data, (self,), _backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._lift(other)
        data = self.data * other.data

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.data.shape))

        return self._make(data, (self, other), _backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._lift(other)
        data = self.data / other.data

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(
                    -grad * self.data / (other.data ** 2), other.data.shape))

        return self._make(data, (self, other), _backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._lift(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported")
        data = self.data ** exponent

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(data, (self,), _backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._lift(other)
        data = self.data @ other.data

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ grad)

        return self._make(data, (self, other), _backward)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        """Element-wise exponential."""
        data = np.exp(self.data)

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data)

        return self._make(data, (self,), _backward)

    def log(self, eps: float = 1e-12) -> "Tensor":
        """Element-wise natural log of ``max(x, eps)`` (safe at 0)."""
        clipped = np.maximum(self.data, eps)
        data = np.log(clipped)

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / clipped)

        return self._make(data, (self,), _backward)

    def sqrt(self) -> "Tensor":
        """Element-wise square root."""
        return self ** 0.5

    def abs(self) -> "Tensor":
        """Element-wise absolute value."""
        data = np.abs(self.data)

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return self._make(data, (self,), _backward)

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values into ``[low, high]`` (zero gradient outside)."""
        data = np.clip(self.data, low, high)

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                mask = (self.data >= low) & (self.data <= high)
                self._accumulate(grad * mask)

        return self._make(data, (self,), _backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (or all elements when ``axis`` is None)."""
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def _backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad_arr = np.asarray(grad)
            if axis is None:
                expanded = np.broadcast_to(grad_arr, self.data.shape)
            else:
                if not keepdims:
                    grad_arr = np.expand_dims(grad_arr, axis=axis)
                expanded = np.broadcast_to(grad_arr, self.data.shape)
            self._accumulate(expanded.copy())

        return self._make(data, (self,), _backward)

    def mean(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over ``axis`` (or all elements)."""
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def transpose(self) -> "Tensor":
        """Matrix transpose (2-D semantics: reverses the axes)."""
        data = self.data.T

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.T)

        return self._make(data, (self,), _backward)

    def reshape(self, *shape: int) -> "Tensor":
        """Reshape to ``shape`` (same number of elements)."""
        original = self.data.shape
        data = self.data.reshape(*shape)

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return self._make(data, (self,), _backward)

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Select rows by integer index (used for mini-batching)."""
        indices = np.asarray(indices, dtype=np.int64)
        data = self.data[indices]

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, indices, grad)
                self._accumulate(full)

        return self._make(data, (self,), _backward)

    # ------------------------------------------------------------------
    # Non-linearities (kept on the class for convenient chaining)
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        """Rectified linear unit: ``max(x, 0)`` element-wise."""
        data = np.maximum(self.data, 0.0)

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (self.data > 0))

        return self._make(data, (self,), _backward)

    def sigmoid(self) -> "Tensor":
        """Logistic sigmoid with input clamping for stability."""
        data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data * (1.0 - data))

        return self._make(data, (self,), _backward)

    def tanh(self) -> "Tensor":
        """Hyperbolic tangent."""
        data = np.tanh(self.data)

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - data ** 2))

        return self._make(data, (self,), _backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        """Numerically stable softmax along ``axis`` (rows sum to 1)."""
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        data = exp / exp.sum(axis=axis, keepdims=True)

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                dot = (grad * data).sum(axis=axis, keepdims=True)
                self._accumulate(data * (grad - dot))

        return self._make(data, (self,), _backward)

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not "
                               "require gradients")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        # Topological ordering of the graph rooted at ``self``.
        ordering: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                ordering.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(ordering):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)
