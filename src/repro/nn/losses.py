"""Loss functions used by the deep clustering models.

* :func:`mse_loss` — reconstruction loss :math:`L_r` (Equation 4).
* :func:`kl_divergence` — clustering loss :math:`L_c` between the soft
  assignment distribution Q and the target distribution P (SDCN / DEC-style
  self-supervision).
* :func:`cross_entropy` — used by SHGP's Att-HGNN module to fit the
  pseudo-labels produced by Att-LPA.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["mse_loss", "kl_divergence", "cross_entropy", "binary_cross_entropy"]

_EPS = 1e-12


def mse_loss(prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Mean squared error averaged over all elements."""
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target_t
    return (diff * diff).mean()


def kl_divergence(p: Tensor | np.ndarray, q: Tensor) -> Tensor:
    """KL(P || Q) averaged over samples.

    ``p`` is the (fixed) target distribution and ``q`` the model's soft
    assignment; only ``q`` receives gradients, matching the DEC/SDCN
    formulation where P is recomputed periodically and treated as constant.
    """
    p_arr = p.data if isinstance(p, Tensor) else np.asarray(p, dtype=np.float64)
    p_const = Tensor(np.clip(p_arr, _EPS, None))
    ratio = p_const / q.clip(_EPS, np.inf)
    per_sample = (p_const * ratio.log()).sum(axis=1)
    return per_sample.mean()


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Softmax cross-entropy with integer class labels."""
    labels = np.asarray(labels, dtype=np.int64)
    n_samples = logits.shape[0]
    log_probs = logits.softmax(axis=1).log()
    one_hot = np.zeros(logits.shape, dtype=np.float64)
    one_hot[np.arange(n_samples), labels] = 1.0
    picked = log_probs * Tensor(one_hot)
    return -(picked.sum() * (1.0 / n_samples))


def binary_cross_entropy(prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Element-wise binary cross entropy (targets in [0, 1])."""
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    pred = prediction.clip(_EPS, 1.0 - _EPS)
    loss = -(target_t * pred.log() + (1.0 - target_t) * (1.0 - pred).log())
    return loss.mean()
