"""Parameter initialisation schemes for the neural substrate."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "kaiming_uniform", "zeros", "normal"]


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a weight matrix."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier normal initialisation."""
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialisation (suited to ReLU networks)."""
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape: tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape, dtype=np.float64)


def normal(shape: tuple[int, ...], rng: np.random.Generator,
           std: float = 0.01) -> np.ndarray:
    """Small-variance Gaussian initialisation."""
    return rng.normal(0.0, std, size=shape)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[1:]))
    fan_out = shape[0]
    return fan_in, fan_out


INITIALIZERS = {
    "xavier_uniform": xavier_uniform,
    "xavier_normal": xavier_normal,
    "kaiming_uniform": kaiming_uniform,
    "zeros": zeros,
    "normal": normal,
}
