"""Minimal neural-network substrate built on numpy.

The deep clustering algorithms in :mod:`repro.dc` (SDCN, EDESC, SHGP and the
auto-encoder baselines) require joint gradient-based optimisation of
reconstruction and clustering losses.  The original implementations use
PyTorch; this package provides the pieces they actually need — a
reverse-mode autograd :class:`Tensor`, dense layers, standard activations,
losses and optimisers — as a small, dependency-free substrate.
:mod:`repro.nn.sparse` adds the :class:`CSRMatrix` sparse-matrix type and
the autograd-aware ``sparse @ dense`` product used for O(n * k) graph
propagation.
"""

from .tensor import Tensor, no_grad
from .sparse import CSRMatrix, sparse_matmul
from .layers import Linear, Sequential, Module, Parameter
from .activations import relu, sigmoid, tanh, softmax, log_softmax, leaky_relu
from .losses import mse_loss, kl_divergence, cross_entropy, binary_cross_entropy
from .optim import SGD, Adam, Optimizer
from .init import xavier_uniform, xavier_normal, kaiming_uniform, zeros, normal

__all__ = [
    "Tensor",
    "no_grad",
    "CSRMatrix",
    "sparse_matmul",
    "Linear",
    "Sequential",
    "Module",
    "Parameter",
    "relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "leaky_relu",
    "mse_loss",
    "kl_divergence",
    "cross_entropy",
    "binary_cross_entropy",
    "SGD",
    "Adam",
    "Optimizer",
    "xavier_uniform",
    "xavier_normal",
    "kaiming_uniform",
    "zeros",
    "normal",
]
