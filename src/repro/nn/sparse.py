"""CSR sparse matrices and autograd-aware sparse-dense products.

SDCN's GCN branch repeatedly multiplies a *fixed* normalised KNN adjacency
against dense activations.  With the dense code path that product — and the
adjacency itself — costs O(n^2) memory, which is the wall the scalability
study (Figure 4) hits first.  A KNN graph has only O(n * k) edges, so this
module provides the minimal sparse substrate the models need:

* :class:`CSRMatrix` — an immutable compressed-sparse-row matrix over
  ``float64`` numpy arrays (``data``/``indices``/``indptr``), supporting the
  graph operations the library uses: dense products, transposition,
  row/column scaling, sub-matrix extraction for mini-batching and row sums.
* :func:`sparse_matmul` — ``A @ X`` where ``A`` is a constant
  :class:`CSRMatrix` and ``X`` a :class:`~repro.nn.tensor.Tensor`; gradients
  flow to ``X`` through ``A^T @ grad`` so GCN layers train unchanged.

The matrix is deliberately *not* a :class:`~repro.nn.tensor.Tensor`: graph
adjacencies are constants during training (exactly as in SDCN), so only the
dense operand participates in autograd.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["CSRMatrix", "sparse_matmul"]

#: Upper bound on float64 elements per product slab in ``CSRMatrix @ dense``
#: (2**21 floats = 16 MiB), so wide dense operands (e.g. layer_size-1000
#: activations) cannot blow the product temporary up to O(nnz * features).
_MATMUL_SLAB_FLOATS = 2_097_152


class CSRMatrix:
    """Minimal immutable CSR sparse matrix (``float64``).

    Stores ``shape=(n_rows, n_cols)`` plus the classic three arrays:
    ``data`` (nnz values), ``indices`` (nnz column ids, row-major sorted)
    and ``indptr`` (``n_rows + 1`` row boundaries).  Peak memory is
    O(nnz), never O(n_rows * n_cols).
    """

    __slots__ = ("data", "indices", "indptr", "shape", "_transpose_cache")

    def __init__(self, data, indices, indptr,
                 shape: tuple[int, int]) -> None:
        """Build from raw CSR arrays (validated, not copied)."""
        self.data = np.asarray(data, dtype=np.float64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.shape = (int(shape[0]), int(shape[1]))
        self._transpose_cache: "CSRMatrix | None" = None
        if self.data.shape != self.indices.shape or self.data.ndim != 1:
            raise ValueError("data and indices must be 1-D arrays of equal length")
        if self.indptr.shape != (self.shape[0] + 1,):
            raise ValueError(
                f"indptr must have length n_rows + 1 = {self.shape[0] + 1}")
        if self.indptr[0] != 0 or self.indptr[-1] != self.data.size:
            raise ValueError("indptr must start at 0 and end at nnz")
        if self.data.size and (self.indices.min() < 0
                               or self.indices.max() >= self.shape[1]):
            raise ValueError("column indices out of range")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, rows, cols, values,
                 shape: tuple[int, int]) -> "CSRMatrix":
        """Build from coordinate triplets; duplicate entries are summed."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if not (rows.shape == cols.shape == values.shape) or rows.ndim != 1:
            raise ValueError("rows, cols and values must be equal-length 1-D")
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if rows.size and (rows.min() < 0 or rows.max() >= n_rows
                          or cols.min() < 0 or cols.max() >= n_cols):
            raise ValueError("coordinates out of range for shape")
        # Sort by (row, col) and merge duplicates.
        linear = rows * n_cols + cols
        order = np.argsort(linear, kind="stable")
        linear = linear[order]
        unique, first = np.unique(linear, return_index=True)
        summed = np.add.reduceat(values[order], first) if values.size else values
        out_rows = (unique // n_cols).astype(np.int64)
        out_cols = (unique % n_cols).astype(np.int64)
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        np.add.at(indptr, out_rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(summed, out_cols, indptr, (n_rows, n_cols))

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        """Compress a dense 2-D array (zeros are dropped)."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError("from_dense expects a 2-D array")
        rows, cols = np.nonzero(dense)
        return cls.from_coo(rows, cols, dense[rows, cols], dense.shape)

    @classmethod
    def identity(cls, n: int) -> "CSRMatrix":
        """The n x n identity matrix."""
        idx = np.arange(n, dtype=np.int64)
        return cls(np.ones(n), idx, np.arange(n + 1, dtype=np.int64), (n, n))

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored (non-zero) entries."""
        return int(self.data.size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"

    def row_nonzeros(self) -> np.ndarray:
        """Row index of every stored entry (length ``nnz``)."""
        return np.repeat(np.arange(self.shape[0], dtype=np.int64),
                         np.diff(self.indptr))

    def to_dense(self) -> np.ndarray:
        """Expand to a dense array (tests/small inputs only: O(n*m))."""
        out = np.zeros(self.shape, dtype=np.float64)
        out[self.row_nonzeros(), self.indices] = self.data
        return out

    def sum_rows(self) -> np.ndarray:
        """Per-row sum of the stored values (dense vector of length n_rows)."""
        return np.bincount(self.row_nonzeros(), weights=self.data,
                           minlength=self.shape[0])

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def __matmul__(self, other: np.ndarray) -> np.ndarray:
        """Sparse-dense product ``self @ other`` returning a dense array.

        Time is O(nnz * other.shape[1]); peak extra memory is bounded by
        ``_MATMUL_SLAB_FLOATS`` — row-aligned slabs of the expanded
        products are reduced one at a time, so neither the full n x n
        matrix nor an O(nnz * features) temporary is materialised.
        ``other`` may be 1-D (vector) or 2-D.
        """
        other = np.asarray(other, dtype=np.float64)
        vector = other.ndim == 1
        if vector:
            other = other[:, None]
        if other.shape[0] != self.shape[1]:
            raise ValueError(
                f"dimension mismatch: {self.shape} @ {other.shape}")
        n_rows, width = self.shape[0], other.shape[1]
        out = np.zeros((n_rows, width), dtype=np.float64)
        if self.nnz:
            target = max(1, _MATMUL_SLAB_FLOATS // max(1, width))
            row = 0
            while row < n_rows:
                # Largest row range whose entries fit the slab budget
                # (always at least one row, whatever its entry count).
                end = int(np.searchsorted(self.indptr,
                                          self.indptr[row] + target,
                                          side="right")) - 1
                end = min(max(end, row + 1), n_rows)
                lo, hi = int(self.indptr[row]), int(self.indptr[end])
                if hi > lo:
                    products = self.data[lo:hi, None] \
                        * other[self.indices[lo:hi]]
                    counts = np.diff(self.indptr[row:end + 1])
                    nonempty = np.flatnonzero(counts > 0)
                    out[row + nonempty] = np.add.reduceat(
                        products, self.indptr[row + nonempty] - lo, axis=0)
                row = end
        return out[:, 0] if vector else out

    def transpose(self) -> "CSRMatrix":
        """Return the transpose as a new CSR matrix (cached)."""
        if self._transpose_cache is None:
            rows = self.row_nonzeros()
            transposed = CSRMatrix.from_coo(
                self.indices, rows, self.data,
                (self.shape[1], self.shape[0]))
            transposed._transpose_cache = self
            self._transpose_cache = transposed
        return self._transpose_cache

    @property
    def T(self) -> "CSRMatrix":
        """Alias for :meth:`transpose`."""
        return self.transpose()

    def scale_rows(self, factors: np.ndarray) -> "CSRMatrix":
        """Return ``diag(factors) @ self`` (row scaling)."""
        factors = np.asarray(factors, dtype=np.float64)
        if factors.shape != (self.shape[0],):
            raise ValueError("factors must have one entry per row")
        return CSRMatrix(self.data * factors[self.row_nonzeros()],
                         self.indices, self.indptr, self.shape)

    def scale_columns(self, factors: np.ndarray) -> "CSRMatrix":
        """Return ``self @ diag(factors)`` (column scaling)."""
        factors = np.asarray(factors, dtype=np.float64)
        if factors.shape != (self.shape[1],):
            raise ValueError("factors must have one entry per column")
        return CSRMatrix(self.data * factors[self.indices],
                         self.indices, self.indptr, self.shape)

    def add_identity(self) -> "CSRMatrix":
        """Return ``self + I`` (square matrices; used for self-loops)."""
        if self.shape[0] != self.shape[1]:
            raise ValueError("add_identity requires a square matrix")
        n = self.shape[0]
        eye = np.arange(n, dtype=np.int64)
        return CSRMatrix.from_coo(
            np.concatenate([self.row_nonzeros(), eye]),
            np.concatenate([self.indices, eye]),
            np.concatenate([self.data, np.ones(n)]),
            self.shape)

    def submatrix(self, index: np.ndarray) -> "CSRMatrix":
        """Extract the square sub-matrix ``self[index][:, index]``.

        ``index`` is an array of unique row/column ids; the result is a
        ``len(index) x len(index)`` CSR matrix with columns remapped to the
        positions within ``index``.  Used to restrict a graph to one
        mini-batch of nodes.
        """
        index = np.asarray(index, dtype=np.int64)
        if index.ndim != 1:
            raise ValueError("index must be 1-D")
        b = index.size
        counts = np.diff(self.indptr)[index]
        total = int(counts.sum())
        # Flat positions of every stored entry in the selected rows.
        starts = self.indptr[index]
        offsets = np.arange(total) - np.repeat(
            np.concatenate([[0], np.cumsum(counts)[:-1]]), counts)
        positions = np.repeat(starts, counts) + offsets
        sub_rows = np.repeat(np.arange(b, dtype=np.int64), counts)
        sub_cols = self.indices[positions]
        values = self.data[positions]
        # Keep only columns inside the batch, remapped to batch positions.
        lookup = np.full(self.shape[1], -1, dtype=np.int64)
        lookup[index] = np.arange(b)
        keep = lookup[sub_cols] >= 0
        return CSRMatrix.from_coo(sub_rows[keep], lookup[sub_cols[keep]],
                                  values[keep], (b, b))


def sparse_matmul(matrix: CSRMatrix, x: Tensor) -> Tensor:
    """Autograd-aware product ``matrix @ x`` with a constant sparse matrix.

    The forward pass costs O(nnz * x.shape[1]); the backward pass routes
    ``matrix.T @ grad`` to ``x`` (the sparse matrix itself receives no
    gradient, matching GCN propagation over a fixed graph).
    """
    if not isinstance(matrix, CSRMatrix):
        raise TypeError("sparse_matmul expects a CSRMatrix on the left")
    if not isinstance(x, Tensor):
        x = Tensor(x)
    data = matrix @ x.data

    def _backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(matrix.transpose() @ grad)

    return x._make(data, (x,), _backward)
