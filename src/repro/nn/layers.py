"""Layer and module abstractions for the neural substrate.

Only the pieces the deep clustering models need are provided: trainable
:class:`Parameter`, a :class:`Module` base with parameter discovery, dense
:class:`Linear` layers and :class:`Sequential` composition.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from ..config import make_rng
from .init import xavier_uniform, zeros
from .tensor import Tensor

__all__ = ["Parameter", "Module", "Linear", "Sequential"]


class Parameter(Tensor):
    """A tensor that is always trainable."""

    def __init__(self, data, name: str | None = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class providing recursive parameter discovery."""

    def parameters(self) -> list[Parameter]:
        """Return all trainable parameters reachable from this module."""
        found: list[Parameter] = []
        seen: set[int] = set()
        self._collect(found, seen)
        return found

    def _collect(self, found: list[Parameter], seen: set[int]) -> None:
        for value in vars(self).values():
            self._collect_value(value, found, seen)

    def _collect_value(self, value, found: list[Parameter], seen: set[int]) -> None:
        if isinstance(value, Parameter):
            if id(value) not in seen:
                seen.add(id(value))
                found.append(value)
        elif isinstance(value, Module):
            value._collect(found, seen)
        elif isinstance(value, (list, tuple)):
            for item in value:
                self._collect_value(item, found, seen)
        elif isinstance(value, dict):
            for item in value.values():
                self._collect_value(item, found, seen)

    def zero_grad(self) -> None:
        """Reset the gradient of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return int(sum(p.data.size for p in self.parameters()))

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        """Compute the module's output (implemented by subclasses)."""
        raise NotImplementedError

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat mapping of parameter index to a copy of its value."""
        return {f"param_{i}": p.data.copy() for i, p in enumerate(self.parameters())}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load values saved by :meth:`state_dict` (same architecture)."""
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(
                f"state has {len(state)} entries, module has {len(params)} parameters")
        for i, param in enumerate(params):
            value = state[f"param_{i}"]
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for parameter {i}: "
                    f"{value.shape} vs {param.data.shape}")
            param.data = value.copy()


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, *,
                 bias: bool = True, seed: int | None = None,
                 init: Callable[[tuple[int, ...], np.random.Generator], np.ndarray]
                 = xavier_uniform) -> None:
        if in_features < 1 or out_features < 1:
            raise ValueError("Linear layer dimensions must be positive")
        rng = make_rng(seed)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init((out_features, in_features), rng),
                                name=f"linear_w_{in_features}x{out_features}")
        self.bias = (Parameter(zeros((out_features,)), name="linear_b")
                     if bias else None)

    def forward(self, x: Tensor) -> Tensor:
        """Affine transform of ``(n, in_features)`` to ``(n, out_features)``."""
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out


class Sequential(Module):
    """Apply a sequence of modules / callables in order."""

    def __init__(self, *stages) -> None:
        self.stages = list(stages)

    def forward(self, x: Tensor) -> Tensor:
        """Feed ``x`` through every stage in order."""
        for stage in self.stages:
            x = stage(x)
        return x

    def __iter__(self) -> Iterator:
        return iter(self.stages)

    def __len__(self) -> int:
        return len(self.stages)

    def append(self, stage) -> None:
        """Add a stage to the end of the pipeline."""
        self.stages.append(stage)
