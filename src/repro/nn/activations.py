"""Functional activation wrappers over :class:`repro.nn.tensor.Tensor`."""

from __future__ import annotations

from .tensor import Tensor

__all__ = ["relu", "sigmoid", "tanh", "softmax", "log_softmax", "leaky_relu", "identity"]


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return x.tanh()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis``."""
    return x.softmax(axis=axis)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    return x.softmax(axis=axis).log()


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """Leaky ReLU built from primitive ops (keeps autograd support)."""
    positive = x.relu()
    negative = (-x).relu() * (-negative_slope)
    return positive + negative


def identity(x: Tensor) -> Tensor:
    """No-op activation, useful as a configurable default."""
    return x


#: Mapping from activation names (as used in configuration files and the
#: paper's hyper-parameter descriptions) to callables.
ACTIVATIONS = {
    "relu": relu,
    "sigmoid": sigmoid,
    "tanh": tanh,
    "leaky_relu": leaky_relu,
    "identity": identity,
    "linear": identity,
}


def get_activation(name: str):
    """Look up an activation function by name."""
    try:
        return ACTIVATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown activation {name!r}; available: {sorted(ACTIVATIONS)}"
        ) from None
