"""Gradient-descent optimisers for the neural substrate."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimiser holding a parameter list."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters: Sequence[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Reset gradients of all managed parameters."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        """Apply one update to every parameter with a gradient."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-2,
                 momentum: float = 0.0) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """One (momentum) SGD update: ``p -= lr * grad`` per parameter."""
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum > 0:
                velocity *= self.momentum
                velocity -= self.lr * param.grad
                param.data = param.data + velocity
            else:
                param.data = param.data - self.lr * param.grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba), the default for all DC models."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        """One bias-corrected Adam update for every parameter."""
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad ** 2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
