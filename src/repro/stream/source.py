"""Replay a dataset as a stream of timed arrival batches, with optional drift.

The batch pipelines see a dataset as one static snapshot; production traffic
instead *arrives* — new tables are crawled, new records are ingested, new
columns appear as sources are onboarded.  :class:`StreamSource` turns any of
the :mod:`repro.data` containers into that shape: an initial portion to fit
on, followed by ``n_batches`` arrival batches (optionally spaced by a wall
clock interval), each carrying its items and their ground-truth labels.

Drift is injected through the same corruption functions the generators use
(:mod:`repro.data.corruption`): with ``drift`` set, a growing fraction of
each batch's text content is abbreviated, typo'd, case-mangled or dropped,
so later batches come from a measurably shifted distribution — exactly the
condition the :class:`~repro.stream.drift.DriftMonitor` exists to detect.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..config import make_rng
from ..data.corruption import abbreviate, drop_value, introduce_typo, vary_case
from ..data.table import (
    Column,
    ColumnClusteringDataset,
    Record,
    RecordClusteringDataset,
    Table,
    TableClusteringDataset,
)
from ..exceptions import StreamingError

__all__ = ["DRIFT_KINDS", "StreamBatch", "StreamSource"]

#: Drift flavours ``StreamSource`` can inject (``"none"`` replays verbatim).
DRIFT_KINDS = ("none", "abbreviate", "typo", "case", "drop")


@dataclass
class StreamBatch:
    """One arrival batch: a sub-dataset plus its stream position."""

    index: int
    dataset: object                     # same container type as the source
    labels: np.ndarray
    drifted: bool = False
    arrived_at: float = 0.0

    @property
    def n_items(self) -> int:
        """Number of items in this batch."""
        return int(self.labels.shape[0])


def _corrupt_text(value: object, kind: str,
                  rng: np.random.Generator) -> object:
    if kind == "abbreviate":
        return abbreviate(str(value), rng)
    if kind == "typo":
        return introduce_typo(str(value), rng)
    if kind == "case":
        return vary_case(str(value), rng)
    if kind == "drop":
        return drop_value(value, rng, probability=1.0)
    return value


def _drift_table(table: Table, kind: str, rate: float,
                 rng: np.random.Generator) -> Table:
    """Corrupt a table's headers (the schema-level embedding evidence).

    ``drop`` removes whole columns (always keeping at least one) — the
    schema-level analogue of a missing value.
    """
    columns = {}
    for header, values in table.columns.items():
        if rng.random() < rate:
            if kind == "drop":
                continue
            header = str(_corrupt_text(header, kind, rng))
        columns[header] = list(values)
    if not columns:  # never drop the whole schema
        header = next(iter(table.columns))
        columns[header] = list(table.columns[header])
    return Table(name=table.name, columns=columns,
                 metadata=dict(table.metadata))


def _drift_record(record: Record, kind: str, rate: float,
                  rng: np.random.Generator) -> Record:
    values = {}
    for attribute, value in record.values.items():
        if value is not None and rng.random() < rate:
            value = _corrupt_text(value, kind, rng)
        values[attribute] = value
    return Record(values=values, source=record.source,
                  identifier=record.identifier,
                  metadata=dict(record.metadata))


def _drift_column(column: Column, kind: str, rate: float,
                  rng: np.random.Generator) -> Column:
    values = [(_corrupt_text(value, kind, rng)
               if value is not None and rng.random() < rate else value)
              for value in column.values]
    header = column.header
    if rng.random() < rate:
        header = str(_corrupt_text(header, kind, rng) or header)
    return Column(header=header, values=values, table_name=column.table_name,
                  metadata=dict(column.metadata))


class StreamSource:
    """Split a clustering dataset into an initial fit set plus arrival batches.

    Parameters
    ----------
    dataset:
        Any container from :mod:`repro.data.table` (tables, records or
        columns with labels).
    n_batches:
        Number of arrival batches after the initial portion.
    initial_fraction:
        Share of the items reserved for the initial fit (default half).
    drift, drift_rate:
        Corruption flavour from :data:`DRIFT_KINDS` and the *final* per-item
        corruption probability; the rate ramps linearly from 0 over the
        batches, so early batches match the training distribution and late
        ones do not.
    interval:
        Seconds between batch arrivals (``0`` replays as fast as possible —
        what the tests and benchmarks use).
    seed:
        Controls the shuffle and every corruption draw.
    """

    def __init__(self, dataset, *, n_batches: int, initial_fraction: float = 0.5,
                 drift: str | None = None, drift_rate: float = 0.5,
                 interval: float = 0.0, seed: int | None = None) -> None:
        if n_batches < 1:
            raise StreamingError("n_batches must be >= 1")
        if not 0.0 < initial_fraction < 1.0:
            raise StreamingError("initial_fraction must be in (0, 1)")
        if drift is not None and drift not in DRIFT_KINDS:
            raise StreamingError(
                f"unknown drift kind {drift!r}; expected one of {DRIFT_KINDS}")
        if not 0.0 <= drift_rate <= 1.0:
            raise StreamingError("drift_rate must be in [0, 1]")
        if interval < 0:
            raise StreamingError("interval must be non-negative")
        self.dataset = dataset
        self.items, self._field = self._dataset_items(dataset)
        self.n_batches = int(n_batches)
        self.drift = None if drift in (None, "none") else drift
        self.drift_rate = float(drift_rate)
        self.interval = float(interval)
        self.seed = seed
        n_items = len(self.items)
        n_initial = int(round(n_items * initial_fraction))
        if n_initial < 1 or n_items - n_initial < n_batches:
            raise StreamingError(
                f"cannot split {n_items} items into an initial portion plus "
                f"{n_batches} non-empty batches at fraction {initial_fraction}")
        rng = make_rng(seed)
        self._order = rng.permutation(n_items)
        self._n_initial = n_initial
        self._rng = rng

    @staticmethod
    def _dataset_items(dataset) -> tuple[list, str]:
        for attr in ("tables", "records", "columns"):
            if hasattr(dataset, attr):
                return list(getattr(dataset, attr)), attr
        raise StreamingError(
            f"cannot stream object of type {type(dataset).__name__}; expected "
            "a table/record/column clustering dataset")

    # ------------------------------------------------------------------
    def _subset(self, indices: np.ndarray, name: str, items: list | None = None):
        """Package ``indices`` of the source as a same-typed sub-dataset."""
        chosen = (items if items is not None
                  else [self.items[i] for i in indices])
        labels = np.asarray(self.dataset.labels)[indices]
        cls = {"tables": TableClusteringDataset,
               "records": RecordClusteringDataset,
               "columns": ColumnClusteringDataset}[self._field]
        return cls(**{self._field: chosen}, labels=labels, name=name)

    def initial(self):
        """The initial fit portion as a sub-dataset of the source's type."""
        indices = self._order[:self._n_initial]
        return self._subset(indices, f"{self.dataset.name}")

    def _drift_items(self, items: list, rate: float) -> list:
        drifters = {"tables": _drift_table, "records": _drift_record,
                    "columns": _drift_column}
        drifter = drifters[self._field]
        return [drifter(item, self.drift, rate, self._rng) for item in items]

    def batches(self):
        """Yield the :class:`StreamBatch` arrivals in order.

        Each batch's drift rate ramps from ``0`` (first batch) to
        ``drift_rate`` (last batch); with ``interval`` set the generator
        sleeps between arrivals to emulate timed ingestion.
        """
        remaining = self._order[self._n_initial:]
        splits = np.array_split(remaining, self.n_batches)
        for index, indices in enumerate(splits):
            if self.interval > 0 and index > 0:
                time.sleep(self.interval)
            rate = 0.0
            drifted = False
            items = [self.items[i] for i in indices]
            if self.drift is not None and self.n_batches > 1:
                rate = self.drift_rate * index / (self.n_batches - 1)
            elif self.drift is not None:
                rate = self.drift_rate
            if rate > 0:
                items = self._drift_items(items, rate)
                drifted = True
            dataset = self._subset(indices,
                                   f"{self.dataset.name}#batch{index}",
                                   items=items)
            yield StreamBatch(index=index, dataset=dataset,
                              labels=dataset.labels, drifted=drifted,
                              arrived_at=time.monotonic())
