"""Incremental model updates: absorb a batch without refitting from scratch.

:func:`incremental_update` is the single entry point the streaming scenario,
the ``repro update`` CLI and the serving-side refresh path share.  It
dispatches on the fitted model's type:

* **KMeans / Birch / DBSCAN** — the estimator's own ``partial_fit``
  (mini-batch centroid updates, CF-tree insertion, core-point absorption);
* **AutoencoderClustering / SDCN / EDESC** — *warm-start fine-tuning*: the
  already-trained auto-encoder resumes from its current weights for a few
  reconstruction epochs on the new batch (through the mini-batch path), and
  the clustering head is refreshed incrementally — the AE baseline's inner
  clusterer and SDCN's fallback Birch via ``partial_fit``, SDCN's Student-t
  centres and EDESC's subspace bases kept (they keep assigning through the
  updated encoder);
* **SHGP** — rejected: its embeddings are a function of the whole
  heterogeneous graph, so there is no sound incremental step (callers
  should refit).

Every path is orders of magnitude cheaper than a full refit — the exact
margin is measured by ``benchmarks/bench_stream.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..clustering import DBSCAN, Birch, KMeans
from ..dc import EDESC, SDCN, AutoencoderClustering
from ..exceptions import StreamingError
from ..obs.metrics import get_registry, obs_enabled
from ..obs.trace import record_span
from ..utils.validation import check_matrix

__all__ = ["UpdateReport", "incremental_update", "supports_incremental_update"]

#: Default number of warm-start fine-tuning epochs for the deep models.
_FINE_TUNE_EPOCHS = 2
#: Default mini-batch size of the fine-tuning pass.
_FINE_TUNE_BATCH = 64


@dataclass
class UpdateReport:
    """What one incremental update did and what it cost."""

    strategy: str                    # "partial_fit" or "warm_start"
    model_class: str
    n_new: int
    seconds: float
    refit_recommended: bool = False
    details: dict = field(default_factory=dict)

    def as_row(self) -> dict[str, object]:
        """Flat dict for table/JSON rendering."""
        return {
            "strategy": self.strategy,
            "model": self.model_class,
            "n_new": self.n_new,
            "seconds": round(self.seconds, 4),
            "refit_recommended": self.refit_recommended,
            **{key: (round(value, 4) if isinstance(value, float) else value)
               for key, value in self.details.items()},
        }


def supports_incremental_update(model) -> bool:
    """Can :func:`incremental_update` absorb new data into ``model``?"""
    return isinstance(model, (KMeans, Birch, DBSCAN, AutoencoderClustering,
                              SDCN, EDESC))


def _fine_tune_autoencoder(model, X: np.ndarray, *, epochs: int,
                           batch_size: int, seed: int | None) -> list[float]:
    """Resume the model's AE from its trained weights on the new batch."""
    config = model.config
    learning_rate = config.learning_rate
    return model.autoencoder_.pretrain(
        X, epochs=epochs, lr=learning_rate,
        batch_size=min(batch_size, X.shape[0]), seed=seed)


def incremental_update(model, X, *, epochs: int = _FINE_TUNE_EPOCHS,
                       batch_size: int = _FINE_TUNE_BATCH,
                       seed: int | None = None) -> UpdateReport:
    """Absorb the batch ``X`` into the fitted ``model`` in place.

    Returns an :class:`UpdateReport` with the strategy used, the wall time,
    and — where the estimator exposes one — its refit-recommended signal.
    Raises :class:`~repro.exceptions.StreamingError` for models with no
    sound incremental step (SHGP, or anything unfitted/unknown).
    """
    if not getattr(model, "_fitted", False):
        raise StreamingError(
            f"incremental_update requires a fitted model; "
            f"{type(model).__name__} is not fitted")
    if not supports_incremental_update(model):
        raise StreamingError(
            f"{type(model).__name__} does not support incremental updates "
            "(its representation depends on the whole corpus); refit instead")
    X = check_matrix(X)
    started = time.perf_counter()
    details: dict = {}
    refit_recommended = False

    if isinstance(model, (KMeans, Birch, DBSCAN)):
        strategy = "partial_fit"
        model.partial_fit(X)
        if isinstance(model, DBSCAN):
            refit_recommended = model.refit_recommended_
            details["n_unabsorbed_cores"] = model.n_unabsorbed_cores_
        elif isinstance(model, KMeans):
            details["n_seen"] = model.n_seen_
        else:
            details["n_subclusters"] = int(model.subcluster_centers_.shape[0])
    else:
        strategy = "warm_start"
        losses = _fine_tune_autoencoder(model, X, epochs=epochs,
                                        batch_size=batch_size, seed=seed)
        details["fine_tune_loss"] = float(losses[-1]) if losses else 0.0
        details["epochs"] = epochs
        latent = model.autoencoder_.transform(X)
        if isinstance(model, AutoencoderClustering):
            # The inner clusterer lives in the latent space the encoder just
            # moved; feed it the new batch's updated codes.
            model.clusterer_.partial_fit(latent)
        elif isinstance(model, SDCN):
            if model.selected_branch_ == "autoencoder" and \
                    model.fallback_clusterer_ is not None:
                model.fallback_clusterer_.partial_fit(latent)
            # Student-t centres are kept: argmax Q keeps assigning through
            # the fine-tuned encoder.
        # EDESC: subspace bases are kept for the same reason.
        model.history_.setdefault("fine_tune_loss", []).extend(
            float(value) for value in losses)

    ended = time.perf_counter()
    if obs_enabled():
        registry = get_registry()
        registry.counter(
            "repro_stream_updates_total", "Incremental model updates",
            ("strategy",)).inc(strategy=strategy)
        registry.histogram(
            "repro_stream_update_seconds",
            "Incremental update wall time", ("strategy",)).observe(
                ended - started, strategy=strategy)
        record_span("stream.update", started, ended, strategy=strategy,
                    n_new=int(X.shape[0]))
    return UpdateReport(
        strategy=strategy,
        model_class=type(model).__name__,
        n_new=int(X.shape[0]),
        seconds=ended - started,
        refit_recommended=refit_recommended,
        details=details,
    )
