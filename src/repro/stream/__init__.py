"""Streaming ingestion and incremental (continuous) learning.

The batch pipelines fit once and freeze; this package makes the models
*live*.  It has three cooperating pieces:

* :class:`StreamSource` replays any :mod:`repro.data` dataset as timed
  arrival batches, optionally injecting distribution drift through the
  corruption functions of :mod:`repro.data.corruption`;
* :class:`DriftMonitor` watches each batch's embedding-distribution shift
  and silhouette decay and decides **update vs refit**;
* :func:`incremental_update` absorbs a batch into a fitted model in place —
  ``partial_fit`` on the SC clusterers, warm-start auto-encoder fine-tuning
  on the deep models — orders of magnitude cheaper than refitting.

Together with checkpoint rotation (:func:`repro.serialize.rotate_checkpoint`)
and the registry's hot reload (:meth:`repro.serve.ModelRegistry.reload_stale`)
this closes the loop: ingest -> update -> rotate -> hot-swap, while
``/models/{name}/predict`` keeps answering.  ``repro stream`` and
``repro update`` are the CLI entry points; the end-to-end scenario lives in
:func:`repro.experiments.streaming.run_stream_scenario`.
"""

from .drift import DriftDecision, DriftMonitor
from .source import DRIFT_KINDS, StreamBatch, StreamSource
from .update import UpdateReport, incremental_update, supports_incremental_update

__all__ = [
    "DRIFT_KINDS",
    "DriftDecision",
    "DriftMonitor",
    "StreamBatch",
    "StreamSource",
    "UpdateReport",
    "incremental_update",
    "supports_incremental_update",
]
