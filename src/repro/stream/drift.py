"""Decide between incremental update and full refit as batches arrive.

Incremental updates (:mod:`repro.stream.update`) are cheap but can only
*absorb* new data into existing structure; when the arriving distribution
has genuinely moved, continuing to absorb silently degrades the model.  The
:class:`DriftMonitor` watches two signals per batch, both computable without
ground-truth labels:

* **embedding-distribution shift** — the distance between the batch's mean
  embedding and the reference mean, normalised by the sampling noise a
  same-distribution batch of that size would show (``sigma * sqrt(d / n)``),
  so the statistic is ~1 for undrifted batches regardless of embedding
  dimension or batch size, and
* **silhouette decay** — how much worse the model's own cluster assignments
  separate the new batch compared to the reference data.

Either signal crossing its threshold — or the model raising its own
``refit_recommended_`` flag, as incremental DBSCAN does when dense regions
fall outside every known cluster — tips the decision to ``"refit"``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import StreamingError
from ..metrics.silhouette import silhouette_score

__all__ = ["DriftDecision", "DriftMonitor"]


@dataclass
class DriftDecision:
    """Outcome of assessing one batch: the action plus its evidence."""

    action: str                     # "update" or "refit"
    mean_shift: float               # normalised embedding-mean displacement
    silhouette: float               # silhouette of the batch assignments
    silhouette_decay: float         # reference silhouette minus batch one
    reasons: tuple[str, ...] = ()

    def as_row(self) -> dict[str, object]:
        """Flat dict for table/JSON rendering."""
        return {
            "action": self.action,
            "mean_shift": round(self.mean_shift, 4),
            "silhouette": round(self.silhouette, 4),
            "silhouette_decay": round(self.silhouette_decay, 4),
            "reasons": ";".join(self.reasons),
        }


class DriftMonitor:
    """Track a reference embedding distribution and score batches against it.

    Parameters
    ----------
    shift_threshold:
        Normalised mean-shift beyond which a batch counts as drifted.  The
        statistic is scaled by the expected sampling noise of an undrifted
        batch, so values hover around ``1`` without drift; the default of
        ``2`` is a two-sigma rule.
    silhouette_drop:
        Absolute silhouette decay (reference minus batch) beyond which the
        model's structure no longer fits the arrivals.
    """

    def __init__(self, *, shift_threshold: float = 2.0,
                 silhouette_drop: float = 0.25) -> None:
        if shift_threshold <= 0 or silhouette_drop <= 0:
            raise StreamingError(
                "shift_threshold and silhouette_drop must be positive")
        self.shift_threshold = float(shift_threshold)
        self.silhouette_drop = float(silhouette_drop)
        self._reference_mean: np.ndarray | None = None
        self._reference_scale: float | None = None
        self._reference_silhouette: float | None = None

    @property
    def has_reference(self) -> bool:
        """Has :meth:`observe_reference` been called?"""
        return self._reference_mean is not None

    def observe_reference(self, X, labels) -> None:
        """Record the training distribution and its assignment quality."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] < 2:
            raise StreamingError(
                "reference must be a 2-D matrix with at least 2 rows")
        self._reference_mean = X.mean(axis=0)
        # Mean per-feature dispersion: one scale for the whole space keeps
        # the shift statistic robust to near-constant features.
        scale = float(np.mean(X.std(axis=0)))
        self._reference_scale = scale if scale > 0 else 1.0
        self._reference_silhouette = silhouette_score(
            X, np.asarray(labels, dtype=np.int64))

    def assess(self, X, labels, *,
               model_refit_flag: bool = False) -> DriftDecision:
        """Score one arrival batch and decide ``update`` vs ``refit``.

        ``labels`` are the *model's* assignments for the batch (no ground
        truth is consulted).  ``model_refit_flag`` folds in an estimator's
        own signal (``DBSCAN.refit_recommended_``).
        """
        if not self.has_reference:
            raise StreamingError(
                "DriftMonitor.assess called before observe_reference")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self._reference_mean.shape[0]:
            raise StreamingError(
                f"batch has shape {X.shape}; reference dimension is "
                f"{self._reference_mean.shape[0]}")
        # Expected ||batch_mean - ref_mean|| for an undrifted batch of this
        # size is ~ sigma * sqrt(d / n); dividing by it makes the statistic
        # dimension- and batch-size-free (~1 under the null).
        null_scale = self._reference_scale * float(
            np.sqrt(X.shape[1] / max(1, X.shape[0])))
        shift = float(np.linalg.norm(X.mean(axis=0) - self._reference_mean)
                      / null_scale)
        batch_silhouette = silhouette_score(
            X, np.asarray(labels, dtype=np.int64))
        decay = self._reference_silhouette - batch_silhouette

        reasons = []
        if model_refit_flag:
            reasons.append("model_refit_flag")
        if shift > self.shift_threshold:
            reasons.append(f"mean_shift {shift:.3f} > {self.shift_threshold}")
        if decay > self.silhouette_drop:
            reasons.append(
                f"silhouette_decay {decay:.3f} > {self.silhouette_drop}")
        return DriftDecision(
            action="refit" if reasons else "update",
            mean_shift=shift,
            silhouette=batch_silhouette,
            silhouette_decay=decay,
            reasons=tuple(reasons),
        )
