"""FastText-substitute: character n-gram (subword) hashing embeddings.

Pre-trained FastText's defining property, from the perspective of the
paper's analyses, is that similarity follows *surface form*: words that
share character n-grams are close, regardless of meaning (``headphone out``
vs ``headphone outputs`` are close, ``lens`` vs ``optical zoom`` are not).
This encoder reproduces exactly that behaviour: every word is the mean of
deterministic hashed vectors of its character n-grams (plus the word
itself), and a sentence is the mean of its word vectors — the aggregation
scheme used for word-based embeddings in the paper.
"""

from __future__ import annotations

import numpy as np

from ..utils.text import char_ngrams, tokenize
from .base import TextEncoder, hashed_vector

__all__ = ["FastTextEncoder"]


class FastTextEncoder(TextEncoder):
    """Subword hashing word embeddings averaged into sentence vectors."""

    dim = 300

    def __init__(self, *, dim: int = 300, n_min: int = 3, n_max: int = 5) -> None:
        if n_min < 1 or n_max < n_min:
            raise ValueError("invalid character n-gram range")
        self.dim = dim
        self.n_min = n_min
        self.n_max = n_max
        self._word_cache: dict[str, np.ndarray] = {}

    def _word_vector(self, word: str) -> np.ndarray:
        cached = self._word_cache.get(word)
        if cached is not None:
            return cached
        grams = char_ngrams(word, self.n_min, self.n_max)
        if not grams:
            vector = np.zeros(self.dim)
        else:
            vector = np.mean([hashed_vector(gram, self.dim, salt="fasttext")
                              for gram in grams], axis=0)
        self._word_cache[word] = vector
        return vector

    def encode(self, text: object) -> np.ndarray:
        """Encode one text as the normalised mean of its word vectors."""
        tokens = tokenize(text)
        if not tokens:
            return np.zeros(self.dim)
        sentence = np.mean([self._word_vector(token) for token in tokens], axis=0)
        return self._normalize(sentence)
