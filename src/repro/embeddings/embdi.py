"""EmbDi: relational embeddings via tripartite graph random walks.

Reimplementation of the embedding method of Cappuzzo, Papotti &
Thirumuruganathan (SIGMOD 2020) used by the paper for entity resolution and
(in its schema-matching variant) for domain discovery:

* a **tripartite graph** is built with three node types — *row* nodes
  (``idx__`` prefix, one per tuple), *column* nodes (``cid__`` prefix, one
  per attribute) and *value* nodes (``tt__`` prefix, one per distinct cell
  token);
* each cell links its row node and its column node to its value nodes, so
  rows sharing values (and columns sharing value vocabularies) become close
  in the graph;
* random walks over the graph produce sentences, and skip-gram with
  negative sampling learns node embeddings;
* downstream tasks read off the embeddings of the relevant node type: row
  nodes (``idx__``) for entity resolution, column nodes (``cid__``) for
  domain discovery / schema matching.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import make_rng
from ..data.table import Column, Record
from ..exceptions import EmbeddingError
from ..utils.text import is_numeric_token, tokenize
from .skipgram import SkipGramModel, train_skipgram

__all__ = ["TripartiteGraph", "EmbDiEmbedder"]

ROW_PREFIX = "idx__"
COLUMN_PREFIX = "cid__"
VALUE_PREFIX = "tt__"


@dataclass
class TripartiteGraph:
    """Adjacency-list tripartite graph over row, column and value nodes."""

    neighbors: dict[str, list[str]] = field(default_factory=dict)

    def add_edge(self, a: str, b: str) -> None:
        self.neighbors.setdefault(a, []).append(b)
        self.neighbors.setdefault(b, []).append(a)

    @property
    def nodes(self) -> list[str]:
        return list(self.neighbors)

    def degree(self, node: str) -> int:
        return len(self.neighbors.get(node, []))

    # ------------------------------------------------------------------
    @staticmethod
    def _value_tokens(value: object, *, numeric_rounding: int = 0) -> list[str]:
        """Tokens representing one cell value.

        Numbers are rounded and kept as single tokens so that the same
        quantity written differently still shares a node (EmbDi's numeric
        handling); other values are word-tokenised.
        """
        tokens = tokenize(value)
        output: list[str] = []
        for token in tokens:
            if is_numeric_token(token):
                output.append(f"{round(float(token), numeric_rounding):g}")
            else:
                output.append(token)
        return output

    @classmethod
    def from_records(cls, records: list[Record]) -> "TripartiteGraph":
        """Build the graph for entity resolution (rows are first-class nodes)."""
        graph = cls()
        for row_index, record in enumerate(records):
            row_node = f"{ROW_PREFIX}{row_index}"
            graph.neighbors.setdefault(row_node, [])
            for attribute, value in record.values.items():
                column_node = f"{COLUMN_PREFIX}{attribute}"
                graph.neighbors.setdefault(column_node, [])
                for token in cls._value_tokens(value):
                    value_node = f"{VALUE_PREFIX}{token}"
                    graph.add_edge(row_node, value_node)
                    graph.add_edge(column_node, value_node)
        return graph

    @classmethod
    def from_columns(cls, columns: list[Column]) -> "TripartiteGraph":
        """Build the schema-matching graph (columns are first-class nodes)."""
        graph = cls()
        for column_index, column in enumerate(columns):
            column_node = f"{COLUMN_PREFIX}{column_index}"
            graph.neighbors.setdefault(column_node, [])
            header_tokens = cls._value_tokens(column.header)
            for token in header_tokens:
                graph.add_edge(column_node, f"{VALUE_PREFIX}{token}")
            for value in column.values:
                for token in cls._value_tokens(value):
                    graph.add_edge(column_node, f"{VALUE_PREFIX}{token}")
        return graph

    # ------------------------------------------------------------------
    def random_walks(self, *, walks_per_node: int = 5, walk_length: int = 20,
                     seed: int | None = None,
                     start_prefixes: tuple[str, ...] | None = None
                     ) -> list[list[str]]:
        """Uniform random walks starting from every (matching) node."""
        rng = make_rng(seed)
        sentences: list[list[str]] = []
        for node in self.nodes:
            if start_prefixes and not node.startswith(start_prefixes):
                continue
            if not self.neighbors.get(node):
                continue
            for _ in range(walks_per_node):
                walk = [node]
                current = node
                for _ in range(walk_length - 1):
                    candidates = self.neighbors.get(current)
                    if not candidates:
                        break
                    current = candidates[int(rng.integers(len(candidates)))]
                    walk.append(current)
                sentences.append(walk)
        if not sentences:
            raise EmbeddingError("the tripartite graph has no walkable nodes")
        return sentences


class EmbDiEmbedder:
    """End-to-end EmbDi pipeline producing row or column embeddings."""

    def __init__(self, *, dim: int = 64, walks_per_node: int = 5,
                 walk_length: int = 20, window: int = 3, epochs: int = 3,
                 seed: int | None = None) -> None:
        if dim < 2:
            raise EmbeddingError("embedding dimension must be >= 2")
        self.dim = dim
        self.walks_per_node = walks_per_node
        self.walk_length = walk_length
        self.window = window
        self.epochs = epochs
        self.seed = seed
        self.model_: SkipGramModel | None = None

    # ------------------------------------------------------------------
    def _train(self, graph: TripartiteGraph) -> SkipGramModel:
        sentences = graph.random_walks(
            walks_per_node=self.walks_per_node, walk_length=self.walk_length,
            seed=self.seed)
        self.model_ = train_skipgram(
            sentences, dim=self.dim, window=self.window, epochs=self.epochs,
            seed=self.seed)
        return self.model_

    def embed_records(self, records: list[Record]) -> np.ndarray:
        """Row embeddings (``idx__`` nodes) for entity resolution."""
        if not records:
            raise EmbeddingError("embed_records received no records")
        graph = TripartiteGraph.from_records(records)
        model = self._train(graph)
        tokens = [f"{ROW_PREFIX}{index}" for index in range(len(records))]
        return model.vectors_for(tokens)

    def embed_columns(self, columns: list[Column]) -> np.ndarray:
        """Column embeddings (``cid__`` nodes), the schema-matching variant."""
        if not columns:
            raise EmbeddingError("embed_columns received no columns")
        graph = TripartiteGraph.from_columns(columns)
        model = self._train(graph)
        tokens = [f"{COLUMN_PREFIX}{index}" for index in range(len(columns))]
        return model.vectors_for(tokens)
