"""Common text-encoder interface and hashing utilities."""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

import numpy as np

from ..exceptions import EmbeddingError

__all__ = ["TextEncoder", "hashed_vector"]


def hashed_vector(token: str, dim: int, *, salt: str = "") -> np.ndarray:
    """Deterministic pseudo-random unit vector for a token.

    The vector depends only on the token text (and an optional salt), so the
    same token maps to the same vector in every process without any trained
    state — the mechanism behind the library's hashing-based embeddings.
    """
    digest = hashlib.sha256(f"{salt}::{token}".encode("utf-8")).digest()
    seed = int.from_bytes(digest[:8], "little")
    rng = np.random.default_rng(seed)
    vector = rng.normal(size=dim)
    norm = np.linalg.norm(vector)
    return vector / norm if norm > 0 else vector


class TextEncoder:
    """Base class for sentence-level encoders (SBERT / FastText substitutes)."""

    #: Output dimensionality; subclasses override.
    dim: int = 0

    def encode(self, text: object) -> np.ndarray:
        """Encode one text into a vector of length :attr:`dim`."""
        raise NotImplementedError

    def encode_texts(self, texts: Sequence[object] | Iterable[object]) -> np.ndarray:
        """Encode a sequence of texts into an ``(n, dim)`` matrix."""
        vectors = [self.encode(text) for text in texts]
        if not vectors:
            raise EmbeddingError("encode_texts received no texts")
        return np.vstack(vectors)

    @staticmethod
    def _normalize(vector: np.ndarray) -> np.ndarray:
        norm = np.linalg.norm(vector)
        return vector / norm if norm > 0 else vector
