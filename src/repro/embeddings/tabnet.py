"""TabNet-style tabular encoder (schema + instance level).

TabNet (Arik & Pfister, 2021) processes tabular rows with *sequential
attention*: at each decision step a sparse feature mask selects the most
informative features, and the step outputs are aggregated into the final
representation.  For the schema-inference experiments the paper uses TabNet
as an *encoder*: each table becomes one embedding whose size depends on the
table's features, later normalised with linear interpolation (Section 5.1).

This substitute keeps the two distinguishing mechanisms at table scale:

* per-column feature summaries (hashed categorical distributions, moments
  for numeric columns) form the feature bank;
* a small number of decision steps compute softmax feature masks (from
  deterministic, seed-fixed projections standing in for the trained
  attentive transformer) and emit mask-weighted combinations of the feature
  bank;
* the concatenated step outputs plus the per-column summaries form the
  table embedding, whose length grows with the number of columns — exactly
  the property the dimension-normalisation step exists to handle.
"""

from __future__ import annotations

import numpy as np

from ..data.table import Table
from ..exceptions import EmbeddingError
from ..utils.text import is_numeric_token, normalize_text, tokenize
from .base import hashed_vector

__all__ = ["TabNetEncoder"]


def _column_summary(values: list[object], dim: int) -> np.ndarray:
    """Fixed-length summary of one column's values."""
    numeric: list[float] = []
    token_vector = np.zeros(dim)
    token_count = 0
    for value in values:
        text = normalize_text(value)
        if not text:
            continue
        for token in tokenize(text):
            if is_numeric_token(token):
                numeric.append(float(token))
            else:
                token_vector += hashed_vector(token, dim, salt="tabnet-value")
                token_count += 1
    if token_count:
        token_vector /= token_count
    if numeric:
        array = np.asarray(numeric)
        stats = np.array([array.mean(), array.std(), array.min(), array.max()])
        stats = np.tanh(stats / (np.abs(stats).max() + 1e-9))
    else:
        stats = np.zeros(4)
    return np.concatenate([token_vector, stats])


class TabNetEncoder:
    """Sequential-attention tabular encoder producing one vector per table."""

    def __init__(self, *, feature_dim: int = 12, n_steps: int = 3,
                 relaxation: float = 1.5, seed: int = 23) -> None:
        if feature_dim < 2 or n_steps < 1:
            raise EmbeddingError("feature_dim must be >= 2 and n_steps >= 1")
        self.feature_dim = feature_dim
        self.n_steps = n_steps
        self.relaxation = relaxation
        self.seed = seed

    # ------------------------------------------------------------------
    def _encode_table(self, table: Table) -> np.ndarray:
        if table.n_columns == 0:
            raise EmbeddingError(f"table {table.name!r} has no columns")
        summary_dim = self.feature_dim + 4
        summaries = []
        for header in table.column_names:
            header_vec = hashed_vector(normalize_text(header), self.feature_dim,
                                       salt="tabnet-header")
            value_summary = _column_summary(table.columns[header], self.feature_dim)
            summaries.append(np.concatenate([header_vec, value_summary]))
        feature_bank = np.vstack(summaries)          # (n_cols, 2*feature_dim + 4)

        rng = np.random.default_rng(self.seed)
        prior = np.ones(feature_bank.shape[0])
        step_outputs: list[np.ndarray] = []
        for step in range(self.n_steps):
            # Deterministic attentive-transformer stand-in: project the
            # feature bank onto a per-step direction and sparsify with prior.
            direction = rng.normal(size=feature_bank.shape[1])
            scores = feature_bank @ direction
            scores = scores - scores.max()
            mask = np.exp(scores) * prior
            mask_sum = mask.sum()
            mask = mask / mask_sum if mask_sum > 0 else np.full_like(mask,
                                                                     1.0 / len(mask))
            prior = prior * (self.relaxation - mask)
            step_outputs.append(mask @ feature_bank)   # (2*feature_dim + 4,)

        # Embedding size grows with the number of columns, as in the paper.
        per_column = feature_bank.reshape(-1)
        return np.concatenate([np.concatenate(step_outputs), per_column])

    def encode_tables(self, tables: list[Table]) -> list[np.ndarray]:
        """Encode each table into a variable-length embedding."""
        if not tables:
            raise EmbeddingError("encode_tables received no tables")
        return [self._encode_table(table) for table in tables]
