"""Embedding models that turn tables, rows and columns into dense vectors.

The paper compares several representation strategies (Figure 2, Sections
5-7):

* **SBERT** (sentence-based, semantic) — substituted here by
  :class:`SBERTEncoder`, an ontology-driven semantic sentence encoder.
* **FastText** (word-based, syntactic) — substituted by
  :class:`FastTextEncoder`, character n-gram hashing embeddings.
* **EmbDi** (relational graph embeddings) — :class:`EmbDiEmbedder`, a full
  reimplementation of the tripartite-graph random-walk + skip-gram method.
* **TabNet / TabTransformer** (tabular transformers for schema+instance
  level schema inference) — :class:`TabNetEncoder` and
  :class:`TabTransformerEncoder`, simplified attentive tabular encoders with
  the dimension-normalisation scheme of Section 5.1.
"""

from .base import TextEncoder
from .sbert import SBERTEncoder
from .fasttext import FastTextEncoder
from .skipgram import SkipGramModel, train_skipgram
from .embdi import EmbDiEmbedder, TripartiteGraph
from .tabnet import TabNetEncoder
from .tabtransformer import TabTransformerEncoder
from .dimension import normalize_dimensions
from .single import SERVABLE_EMBEDDINGS, embed_item, embed_items

__all__ = [
    "SERVABLE_EMBEDDINGS",
    "embed_item",
    "embed_items",
    "TextEncoder",
    "SBERTEncoder",
    "FastTextEncoder",
    "SkipGramModel",
    "train_skipgram",
    "EmbDiEmbedder",
    "TripartiteGraph",
    "TabNetEncoder",
    "TabTransformerEncoder",
    "normalize_dimensions",
]
