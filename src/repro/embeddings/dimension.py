"""Embedding-dimension normalisation for tabular encoders (Section 5.1).

TabNet- and TabTransformer-style encoders produce a different output size
per table because each table has a different number (and cardinality) of
categorical and continuous features.  To build one distance matrix the paper
selects the maximum observed feature size and linearly interpolates every
shorter vector up to it; for TabTransformer the interpolation of the last
column needs a preceding value, making the effective dimensionality
``max(d) - 1``.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import EmbeddingError

__all__ = ["normalize_dimensions", "interpolate_vector"]


def interpolate_vector(vector: np.ndarray, target_dim: int) -> np.ndarray:
    """Linearly interpolate ``vector`` to ``target_dim`` entries."""
    vector = np.asarray(vector, dtype=np.float64).ravel()
    if vector.size == 0:
        raise EmbeddingError("cannot interpolate an empty vector")
    if target_dim < 1:
        raise EmbeddingError("target_dim must be >= 1")
    if vector.size == target_dim:
        return vector.copy()
    if vector.size == 1:
        return np.full(target_dim, float(vector[0]))
    source_positions = np.linspace(0.0, 1.0, num=vector.size)
    target_positions = np.linspace(0.0, 1.0, num=target_dim)
    return np.interp(target_positions, source_positions, vector)


def normalize_dimensions(vectors: list[np.ndarray], *,
                         target_dim: int | None = None,
                         drop_last: bool = False) -> np.ndarray:
    """Interpolate variable-length vectors into a single matrix.

    Parameters
    ----------
    vectors:
        One embedding per table, possibly of different lengths.
    target_dim:
        Output dimensionality; defaults to the maximum observed length.
    drop_last:
        Reproduce the TabTransformer quirk of Section 5.1 where the final
        dimensionality is ``max(d) - 1`` because the last column of the
        distance matrix needs a preceding value to interpolate.
    """
    if not vectors:
        raise EmbeddingError("normalize_dimensions received no vectors")
    lengths = [np.asarray(v).ravel().size for v in vectors]
    if min(lengths) == 0:
        raise EmbeddingError("normalize_dimensions received an empty vector")
    dim = target_dim if target_dim is not None else max(lengths)
    if drop_last:
        dim = max(1, dim - 1)
    return np.vstack([interpolate_vector(np.asarray(v), dim) for v in vectors])
