"""TabTransformer-style tabular encoder (schema + instance level).

TabTransformer (Huang et al., 2020) embeds each categorical column and
passes the column embeddings through multi-head self-attention so that each
column's representation becomes contextual on the other columns; continuous
features are appended after normalisation.  As with TabNet, the paper uses
it as a table encoder whose output size varies per table and is normalised
by interpolation (with the ``max(d) - 1`` quirk, Section 5.1).

This substitute keeps the distinguishing mechanism — contextual column
embeddings via self-attention over the table's columns — with deterministic,
seed-fixed projection matrices standing in for trained weights.
"""

from __future__ import annotations

import numpy as np

from ..data.table import Table
from ..exceptions import EmbeddingError
from ..utils.text import is_numeric_token, normalize_text, tokenize
from .base import hashed_vector

__all__ = ["TabTransformerEncoder"]


class TabTransformerEncoder:
    """Self-attention tabular encoder producing one vector per table."""

    def __init__(self, *, column_dim: int = 16, n_heads: int = 2,
                 seed: int = 29) -> None:
        if column_dim < 2 or column_dim % n_heads != 0:
            raise EmbeddingError("column_dim must be >= 2 and divisible by n_heads")
        self.column_dim = column_dim
        self.n_heads = n_heads
        self.seed = seed
        rng = np.random.default_rng(seed)
        scale = 1.0 / np.sqrt(column_dim)
        self._w_query = rng.normal(size=(column_dim, column_dim)) * scale
        self._w_key = rng.normal(size=(column_dim, column_dim)) * scale
        self._w_value = rng.normal(size=(column_dim, column_dim)) * scale

    # ------------------------------------------------------------------
    def _column_embedding(self, header: str, values: list[object]) -> tuple[np.ndarray, list[float]]:
        """Initial (pre-attention) embedding of one column + its numeric cells."""
        vector = hashed_vector(normalize_text(header), self.column_dim,
                               salt="tabtr-header")
        numeric: list[float] = []
        token_total = np.zeros(self.column_dim)
        token_count = 0
        for value in values:
            for token in tokenize(value):
                if is_numeric_token(token):
                    numeric.append(float(token))
                else:
                    token_total += hashed_vector(token, self.column_dim,
                                                 salt="tabtr-value")
                    token_count += 1
        if token_count:
            vector = 0.5 * vector + 0.5 * (token_total / token_count)
        return vector, numeric

    def _self_attention(self, columns: np.ndarray) -> np.ndarray:
        """Single multi-head self-attention block over the column embeddings."""
        head_dim = self.column_dim // self.n_heads
        queries = columns @ self._w_query
        keys = columns @ self._w_key
        values = columns @ self._w_value
        outputs = np.zeros_like(columns)
        for head in range(self.n_heads):
            sl = slice(head * head_dim, (head + 1) * head_dim)
            scores = queries[:, sl] @ keys[:, sl].T / np.sqrt(head_dim)
            scores = scores - scores.max(axis=1, keepdims=True)
            attention = np.exp(scores)
            attention /= attention.sum(axis=1, keepdims=True)
            outputs[:, sl] = attention @ values[:, sl]
        # Residual connection, as in the transformer block.
        return columns + outputs

    def _encode_table(self, table: Table) -> np.ndarray:
        if table.n_columns == 0:
            raise EmbeddingError(f"table {table.name!r} has no columns")
        embeddings = []
        continuous: list[float] = []
        for header in table.column_names:
            vector, numeric = self._column_embedding(header, table.columns[header])
            embeddings.append(vector)
            if numeric:
                array = np.asarray(numeric)
                continuous.extend([float(np.tanh(array.mean() / 1e4)),
                                   float(np.tanh(array.std() / 1e4))])
        contextual = self._self_attention(np.vstack(embeddings))
        flat = contextual.reshape(-1)
        if continuous:
            flat = np.concatenate([flat, np.asarray(continuous)])
        return flat

    def encode_tables(self, tables: list[Table]) -> list[np.ndarray]:
        """Encode each table into a variable-length embedding."""
        if not tables:
            raise EmbeddingError("encode_tables received no tables")
        return [self._encode_table(table) for table in tables]
