"""SBERT-substitute: an ontology-driven semantic sentence encoder.

The experiments need a sentence encoder with SBERT's *behavioural*
signature: semantically equivalent surface forms (synonyms, abbreviations,
format variants) land near each other even when they share no characters,
while unrelated phrases land far apart.  Offline we cannot load the real
model, so this encoder derives that behaviour from the concept ontology
(:mod:`repro.data.ontology`):

* the text is scanned greedily for the longest phrases that match a known
  concept surface form; each match contributes the *concept's* latent
  vector (plus a small surface-form-specific perturbation), so ``Eng.`` and
  ``English`` are nearly identical;
* remaining tokens contribute deterministic hashed vectors at a lower
  weight, so out-of-ontology content still differentiates texts;
* numeric tokens contribute a magnitude-encoded vector (log scale) so that
  columns or records with similar value ranges look similar, which is the
  instance-level signal domain discovery benefits from;
* the mean token vector is projected to the standard SBERT dimensionality
  (768) with a fixed random projection and L2-normalised.
"""

from __future__ import annotations

import math

import numpy as np

from ..data.ontology import Ontology, default_ontology
from ..utils.text import is_numeric_token, tokenize
from .base import TextEncoder, hashed_vector

__all__ = ["SBERTEncoder"]

_SEMANTIC_DIM = 96


class SBERTEncoder(TextEncoder):
    """Semantic sentence encoder standing in for Sentence-BERT."""

    dim = 768

    def __init__(self, *, ontology: Ontology | None = None,
                 dim: int = 768, concept_weight: float = 1.0,
                 token_weight: float = 0.55, numeric_weight: float = 0.5,
                 max_phrase_length: int = 4, seed: int = 13) -> None:
        self.ontology = ontology or default_ontology()
        self.dim = dim
        self.concept_weight = concept_weight
        self.token_weight = token_weight
        self.numeric_weight = numeric_weight
        self.max_phrase_length = max_phrase_length
        rng = np.random.default_rng(seed)
        # Fixed projection from the internal semantic space to the SBERT
        # output dimensionality (shared by every encode call).
        self._projection = rng.normal(size=(_SEMANTIC_DIM, dim)) / math.sqrt(
            _SEMANTIC_DIM)

    # ------------------------------------------------------------------
    def _match_phrases(self, tokens: list[str]) -> list[tuple[str | None, str]]:
        """Greedy longest-match segmentation of the token stream.

        Returns a list of ``(concept_name_or_None, phrase_text)`` segments.
        """
        segments: list[tuple[str | None, str]] = []
        index = 0
        while index < len(tokens):
            matched = False
            for length in range(min(self.max_phrase_length, len(tokens) - index),
                                0, -1):
                phrase = " ".join(tokens[index:index + length])
                concept = self.ontology.lookup(phrase)
                if concept is not None:
                    segments.append((concept, phrase))
                    index += length
                    matched = True
                    break
            if not matched:
                segments.append((None, tokens[index]))
                index += 1
        return segments

    def _numeric_vector(self, token: str) -> np.ndarray:
        """Magnitude-encoded vector for a numeric token.

        The log10 magnitude is linearly interpolated between hashed anchor
        vectors at the neighbouring integer magnitudes, so numbers of
        similar scale (24 vs 27) map close together while numbers of very
        different scale (24 vs 2.4 million) map far apart — the property the
        instance-level domain discovery experiments rely on.
        """
        value = abs(float(token))
        magnitude = math.log10(value + 1.0)
        lower = math.floor(magnitude)
        fraction = magnitude - lower
        anchor_low = hashed_vector(f"mag_anchor::{lower}", _SEMANTIC_DIM,
                                   salt="sbert")
        anchor_high = hashed_vector(f"mag_anchor::{lower + 1}", _SEMANTIC_DIM,
                                    salt="sbert")
        return (1.0 - fraction) * anchor_low + fraction * anchor_high

    def _semantic_vector(self, text: object) -> np.ndarray:
        tokens = tokenize(text)
        if not tokens:
            return np.zeros(_SEMANTIC_DIM)
        accumulator = np.zeros(_SEMANTIC_DIM)
        total_weight = 0.0
        for concept, phrase in self._match_phrases(tokens):
            if concept is not None:
                vector = self.ontology.concept_vector(concept, _SEMANTIC_DIM)
                vector = vector + 0.05 * hashed_vector(phrase, _SEMANTIC_DIM,
                                                       salt="sbert-surface")
                weight = self.concept_weight
            elif is_numeric_token(phrase):
                vector = self._numeric_vector(phrase)
                weight = self.numeric_weight
            else:
                vector = hashed_vector(phrase, _SEMANTIC_DIM, salt="sbert-token")
                weight = self.token_weight
            accumulator += weight * vector
            total_weight += weight
        if total_weight > 0:
            accumulator /= total_weight
        return accumulator

    # ------------------------------------------------------------------
    def encode(self, text: object) -> np.ndarray:
        """Encode one text into a unit vector of length :attr:`dim`."""
        semantic = self._semantic_vector(text)
        projected = semantic @ self._projection
        return self._normalize(projected)
