"""Embed single tables, records or columns — the online-serving path.

The batch pipelines (:func:`repro.tasks.embed_tables` and friends) embed a
whole dataset at once; the serving layer instead receives *one* new item per
request (a new WebTables table, a new MusicBrainz record, a new column) and
must place it in the same embedding space the model was trained in.  That is
only possible for the *per-item stateless* encoders — SBERT and FastText
substitutes, whose output for an item depends on that item alone — so this
module supports exactly those methods and rejects the corpus-dependent ones
(EmbDi's tripartite graph, TabNet/TabTransformer's dataset-wide dimension
normalisation) with a clear :class:`~repro.exceptions.EmbeddingError`.

Items arrive as plain JSON-able dictionaries (the HTTP API's payload
format), are parsed into the :mod:`repro.data.table` containers, run through
the same preprocessing as the batch path, and encoded identically — so a
training-set item embedded here lands on the exact vector the model was
fitted on.  Vectors are memoised in the process-wide :mod:`repro.cache`
keyed by item content, which makes repeated requests for hot items
cache-hits instead of encoder work.
"""

from __future__ import annotations

import hashlib
import json
from functools import lru_cache

import numpy as np

from ..cache import get_cache
from ..data.table import Column, Record, Table
from ..exceptions import EmbeddingError
from .fasttext import FastTextEncoder
from .sbert import SBERTEncoder

__all__ = [
    "SERVABLE_EMBEDDINGS",
    "embed_item",
    "embed_items",
    "parse_column",
    "parse_record",
    "parse_table",
]

#: Per-task embedding methods usable for single-item (online) embedding.
#: Everything else is corpus-dependent and must go through the batch path.
SERVABLE_EMBEDDINGS: dict[str, tuple[str, ...]] = {
    "schema_inference": ("sbert", "fasttext"),
    "entity_resolution": ("sbert",),
    "domain_discovery": ("sbert", "fasttext", "sbert_instance"),
}


@lru_cache(maxsize=4)
def _encoder(kind: str):
    """Shared encoder instances (stateless per text, cheap to cache)."""
    return SBERTEncoder() if kind == "sbert" else FastTextEncoder()


def parse_table(item: dict) -> Table:
    """Build a :class:`Table` from a JSON-able payload.

    Accepts ``{"name", "columns": {header: [values, ...]}}`` or the
    headers-only shorthand ``{"headers": [...]}``.  Headers given without
    values receive a placeholder cell so the preprocessing step (which drops
    fully empty columns) keeps them — a client sending only headers means
    every header to count.
    """
    if not isinstance(item, dict):
        raise EmbeddingError(f"table item must be an object, got {type(item).__name__}")
    if "headers" in item:
        columns = {str(header): ["?"] for header in item["headers"]}
    elif "columns" in item and isinstance(item["columns"], dict):
        columns = {str(header): (list(values) if values else ["?"])
                   for header, values in item["columns"].items()}
    else:
        raise EmbeddingError(
            "table item must provide 'columns' (header -> values) or 'headers'")
    if not columns:
        raise EmbeddingError("table item has no columns")
    return Table(name=str(item.get("name", "item")), columns=columns)


def parse_record(item: dict) -> Record:
    """Build a :class:`Record` from ``{"values": {...}}`` or a flat mapping."""
    if not isinstance(item, dict):
        raise EmbeddingError(f"record item must be an object, got {type(item).__name__}")
    if isinstance(item.get("values"), dict):
        values = item["values"]
    else:
        # Flat mapping shorthand: every key except the provenance fields is
        # treated as an attribute.
        values = {key: value for key, value in item.items()
                  if key not in ("source", "identifier")}
    if not values:
        raise EmbeddingError("record item has no attribute values")
    return Record(values=dict(values), source=str(item.get("source", "")),
                  identifier=str(item.get("identifier", "")))


def parse_column(item: dict) -> Column:
    """Build a :class:`Column` from ``{"header", "values"?, "table_name"?}``."""
    if not isinstance(item, dict) or "header" not in item:
        raise EmbeddingError("column item must be an object with a 'header'")
    values = item.get("values") or []
    return Column(header=str(item["header"]), values=list(values),
                  table_name=str(item.get("table_name", "")))


def _embed_table(item: dict, method: str) -> np.ndarray:
    from ..tasks.preprocessing import preprocess_tables

    table = preprocess_tables([parse_table(item)])[0]
    return _encoder(method).encode(table.header_text())


def _embed_record(item: dict, method: str) -> np.ndarray:
    from ..tasks.preprocessing import preprocess_records

    record = preprocess_records([parse_record(item)])[0]
    return _encoder(method).encode(record.text())


def _embed_column(item: dict, method: str, *, max_values: int) -> np.ndarray:
    from ..tasks.preprocessing import preprocess_columns

    column = preprocess_columns([parse_column(item)])[0]
    if method == "sbert_instance":
        encoder = _encoder("sbert")
        header_vector = encoder.encode(column.header)
        value_vector = encoder.encode(
            " ".join(str(v) for v in column.values[:max_values]))
        # Section 7: the column embedding is the mean of the header and
        # value embeddings (matches repro.tasks.domain_discovery).
        return (header_vector + value_vector) / 2.0
    return _encoder(method).encode(column.header)


def embed_item(task: str, method: str, item: dict, *,
               max_values: int = 20) -> np.ndarray:
    """Embed one raw item for ``task`` with ``method``; returns ``(dim,)``.

    The result is bit-identical to the row the batch pipeline would produce
    for the same item, and is memoised in the process-wide artifact cache.
    """
    method = method.lower()
    supported = SERVABLE_EMBEDDINGS.get(task)
    if supported is None:
        raise EmbeddingError(
            f"unknown task {task!r}; expected one of {sorted(SERVABLE_EMBEDDINGS)}")
    if method not in supported:
        raise EmbeddingError(
            f"embedding {method!r} cannot embed single items for task "
            f"{task!r}: it needs the whole corpus (supported: {supported})")

    fingerprint = hashlib.sha256(
        json.dumps(item, sort_keys=True, default=str).encode("utf-8")).hexdigest()
    key = f"item/{task}/{method}/max_values={max_values}/{fingerprint}"

    def compute() -> np.ndarray:
        if task == "schema_inference":
            return _embed_table(item, method)
        if task == "entity_resolution":
            return _embed_record(item, method)
        return _embed_column(item, method, max_values=max_values)

    return get_cache().get_or_compute(key, compute)


def embed_items(task: str, method: str, items: list[dict], *,
                max_values: int = 20) -> np.ndarray:
    """Embed a batch of raw items; returns an ``(n, dim)`` matrix."""
    if not items:
        raise EmbeddingError("embed_items received no items")
    return np.vstack([embed_item(task, method, item, max_values=max_values)
                      for item in items])
