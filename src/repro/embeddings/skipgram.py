"""Skip-gram with negative sampling, implemented in numpy.

EmbDi learns node embeddings by running word2vec-style skip-gram over
sentences of graph random walks.  This is a compact but complete SGNS
implementation: input and output embedding tables, sliding-window positive
pairs, frequency^(3/4) negative sampling and vectorised SGD updates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import make_rng
from ..exceptions import EmbeddingError

__all__ = ["SkipGramModel", "train_skipgram"]


@dataclass
class SkipGramModel:
    """Trained skip-gram embeddings with a token index."""

    vocabulary: list[str]
    vectors: np.ndarray

    def __post_init__(self) -> None:
        if len(self.vocabulary) != self.vectors.shape[0]:
            raise EmbeddingError("vocabulary and vectors disagree in size")
        self._index = {token: i for i, token in enumerate(self.vocabulary)}

    def __contains__(self, token: str) -> bool:
        return token in self._index

    def vector(self, token: str) -> np.ndarray:
        """Return the embedding of ``token`` (raises KeyError if unknown)."""
        return self.vectors[self._index[token]]

    def vectors_for(self, tokens: list[str]) -> np.ndarray:
        """Stack embeddings for ``tokens``; unknown tokens map to zeros."""
        dim = self.vectors.shape[1]
        out = np.zeros((len(tokens), dim))
        for row, token in enumerate(tokens):
            index = self._index.get(token)
            if index is not None:
                out[row] = self.vectors[index]
        return out


def _build_vocabulary(sentences: list[list[str]]) -> tuple[list[str], np.ndarray]:
    counts: dict[str, int] = {}
    for sentence in sentences:
        for token in sentence:
            counts[token] = counts.get(token, 0) + 1
    vocabulary = sorted(counts)
    frequencies = np.array([counts[token] for token in vocabulary], dtype=np.float64)
    return vocabulary, frequencies


def _positive_pairs(sentences: list[list[str]], index: dict[str, int],
                    window: int) -> np.ndarray:
    pairs: list[tuple[int, int]] = []
    for sentence in sentences:
        ids = [index[token] for token in sentence]
        for position, center in enumerate(ids):
            start = max(0, position - window)
            stop = min(len(ids), position + window + 1)
            for context_position in range(start, stop):
                if context_position == position:
                    continue
                pairs.append((center, ids[context_position]))
    if not pairs:
        raise EmbeddingError("random walks produced no skip-gram pairs")
    return np.asarray(pairs, dtype=np.int64)


def _subsample_pairs(pairs: np.ndarray, frequencies: np.ndarray,
                     rng: np.random.Generator, threshold: float) -> np.ndarray:
    """Down-sample pairs whose *context* token is very frequent.

    Mirrors word2vec's frequent-word subsampling: hub nodes (common value
    tokens) would otherwise dominate the updates and wash out the signal of
    rare, discriminative tokens.
    """
    total = frequencies.sum()
    relative = frequencies / total
    # For tiny vocabularies every token is "frequent"; scale the threshold so
    # subsampling only bites when the vocabulary is large enough for hub
    # nodes to exist.
    threshold = max(threshold, 2.0 / len(frequencies))
    keep_probability = np.minimum(
        1.0, np.sqrt(threshold / np.maximum(relative, 1e-12)))
    keep = rng.random(len(pairs)) < keep_probability[pairs[:, 1]]
    kept = pairs[keep]
    return kept if len(kept) else pairs


def train_skipgram(sentences: list[list[str]], *, dim: int = 64,
                   window: int = 3, epochs: int = 3, negatives: int = 4,
                   lr: float = 0.025, seed: int | None = None,
                   batch_size: int = 2048,
                   subsample_threshold: float = 1e-3,
                   max_update: float = 1.0) -> SkipGramModel:
    """Train skip-gram with negative sampling over walk sentences.

    Updates are clipped to ``max_update`` per coordinate and the learning
    rate decays linearly across epochs, which keeps hub-node vectors from
    diverging (important because graph walks revisit high-degree nodes far
    more often than natural-language corpora revisit words).
    """
    if not sentences:
        raise EmbeddingError("train_skipgram received no sentences")
    rng = make_rng(seed)
    vocabulary, frequencies = _build_vocabulary(sentences)
    index = {token: i for i, token in enumerate(vocabulary)}
    n_tokens = len(vocabulary)

    pairs = _positive_pairs(sentences, index, window)
    pairs = _subsample_pairs(pairs, frequencies, rng, subsample_threshold)
    noise = frequencies ** 0.75
    noise /= noise.sum()

    input_vectors = (rng.random((n_tokens, dim)) - 0.5) / dim
    output_vectors = np.zeros((n_tokens, dim))

    for epoch in range(epochs):
        epoch_lr = lr * (1.0 - epoch / max(1, epochs)) + lr * 0.1
        order = rng.permutation(len(pairs))
        for start in range(0, len(order), batch_size):
            batch = pairs[order[start:start + batch_size]]
            centers, contexts = batch[:, 0], batch[:, 1]
            negatives_ids = rng.choice(n_tokens, size=(len(batch), negatives),
                                       p=noise)

            center_vecs = input_vectors[centers]                  # (b, d)
            context_vecs = output_vectors[contexts]               # (b, d)
            negative_vecs = output_vectors[negatives_ids]         # (b, neg, d)

            positive_logits = np.clip(
                np.sum(center_vecs * context_vecs, axis=1), -30.0, 30.0)
            negative_logits = np.clip(
                np.einsum("bd,bnd->bn", center_vecs, negative_vecs), -30.0, 30.0)
            positive_score = 1.0 / (1.0 + np.exp(-positive_logits))  # (b,)
            negative_score = 1.0 / (1.0 + np.exp(-negative_logits))

            # Gradients of the SGNS objective.
            positive_grad = (positive_score - 1.0)[:, None]        # (b, 1)

            center_update = positive_grad * context_vecs + \
                np.einsum("bnd,bn->bd", negative_vecs, negative_score)
            context_update = positive_grad * center_vecs
            center_update = np.clip(center_update, -max_update, max_update)
            context_update = np.clip(context_update, -max_update, max_update)
            np.add.at(input_vectors, centers, -epoch_lr * center_update)
            np.add.at(output_vectors, contexts, -epoch_lr * context_update)
            for negative_column in range(negatives):
                negative_update = np.clip(
                    negative_score[:, negative_column, None] * center_vecs,
                    -max_update, max_update)
                np.add.at(output_vectors, negatives_ids[:, negative_column],
                          -epoch_lr * negative_update)

    return SkipGramModel(vocabulary=vocabulary, vectors=input_vectors)
